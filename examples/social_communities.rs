//! Community detection in an uncertain social network (paper §VI-E).
//!
//! Runs the Karate-Club case study: the top-k MPDSs are compared against the
//! expected densest subgraph, the innermost probabilistic core and truss, and
//! the deterministic densest subgraph, using ground-truth faction purity.
//!
//! Run with: `cargo run --release --example social_communities`

use mpds::case_studies::karate_case_study;

fn main() {
    let study = karate_case_study(320, 10, 7);

    println!("Zachary's Karate Club as an uncertain graph (p = 1 - e^(-t/20)):\n");
    println!(
        "{:<8} {:>7} {:>7} {:>7}  node set",
        "method", "purity", "PD", "PCC"
    );
    for s in &study.scored {
        println!(
            "{:<8} {:>7.3} {:>7.3} {:>7.3}  {:?}",
            s.method,
            s.purity.unwrap_or(f64::NAN),
            s.pd,
            s.pcc,
            s.node_set
        );
    }

    println!("\nTop-10 MPDSs (all inside a single ground-truth faction):");
    for (rank, (set, tau)) in study.mpds_top_k.iter().enumerate() {
        println!("  #{:<2} tau_hat = {:.3}  {:?}", rank + 1, tau, set);
    }
    println!(
        "\nAverage purity of the top-10 MPDSs: {:.3} (paper Table X: 1.0 for all k).",
        study.mpds_avg_purity
    );
    println!("The EDS / core / truss / DDS subgraphs mix members of both factions and");
    println!("lean on low-probability edges — the paper's Figs. 6-7 observation.");
}
