//! Nucleus Densest Subgraphs on a large uncertain graph (paper §IV).
//!
//! On large graphs every node set's densest subgraph probability collapses,
//! so we rank node sets by *containment* probability instead, mining the
//! top-k closed nuclei via TFP — and use the paper's Theorems 2/3 to pick a
//! sample size with an end-to-end guarantee. The whole pipeline is one
//! `mpds::api::Query`, with a progress counter watching the sampling loop.
//!
//! Run with: `cargo run --release --example nucleus_exploration`

use densest::DensityNotion;
use mpds::api::{ProgressCounter, Query};
use mpds::theory;
use ugraph::datasets;

fn main() {
    let data = datasets::biomine_like(42);
    let g = &data.graph;
    println!(
        "Biomine-like uncertain graph: n = {}, m = {}",
        g.num_nodes(),
        g.num_edges()
    );

    // How many samples do we need? Suppose the top containment probabilities
    // are around 1.0 / 0.9 with the next candidates below 0.5: Theorem 3's
    // machinery says a few hundred samples give a > 99% guarantee.
    let theta = theory::theta_for_confidence(&[0.95, 0.9], 0.5, &[0.4, 0.3], 0.01)
        .expect("separable probabilities");
    println!("Theorem-3 sample size for 99% confidence: theta = {theta}");

    let (k, min_size) = (10, 4);
    let progress = ProgressCounter::new();
    let res = Query::nds(DensityNotion::Edge)
        .theta(theta.max(200))
        .k(k)
        .min_size(min_size)
        .seed(11)
        .progress(progress.clone())
        .run(g)
        .expect("valid query");

    println!("\nTop-{k} nuclei (closed node sets, size >= {min_size}):");
    for (rank, (set, gamma)) in res.top_k.iter().enumerate() {
        println!(
            "  #{:<2} gamma_hat = {:.3}  |U| = {:<3}  {:?}...",
            rank + 1,
            gamma,
            set.len(),
            &set[..set.len().min(10)]
        );
    }
    println!(
        "\n{} of {} sampled worlds had a densest subgraph ({} polled by the",
        res.stats.worlds_sampled - res.stats.empty_worlds,
        res.stats.worlds_sampled,
        progress.done()
    );
    println!("progress sink); the nuclei are the node sets most likely to sit inside");
    println!("one (paper Def. 5 / Algorithm 5).");
}
