//! Nucleus Densest Subgraphs on a large uncertain graph (paper §IV).
//!
//! On large graphs every node set's densest subgraph probability collapses,
//! so we rank node sets by *containment* probability instead, mining the
//! top-k closed nuclei via TFP — and use the paper's Theorems 2/3 to pick a
//! sample size with an end-to-end guarantee.
//!
//! Run with: `cargo run --release --example nucleus_exploration`

use densest::DensityNotion;
use mpds::nds::{top_k_nds, NdsConfig};
use mpds::theory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::datasets;

fn main() {
    let data = datasets::biomine_like(42);
    let g = &data.graph;
    println!(
        "Biomine-like uncertain graph: n = {}, m = {}",
        g.num_nodes(),
        g.num_edges()
    );

    // How many samples do we need? Suppose the top containment probabilities
    // are around 1.0 / 0.9 with the next candidates below 0.5: Theorem 3's
    // machinery says a few hundred samples give a > 99% guarantee.
    let theta = theory::theta_for_confidence(&[0.95, 0.9], 0.5, &[0.4, 0.3], 0.01)
        .expect("separable probabilities");
    println!("Theorem-3 sample size for 99% confidence: theta = {theta}");

    let cfg = NdsConfig::new(DensityNotion::Edge, theta.max(200), 10, 4);
    let mut mc = MonteCarlo::new(g, StdRng::seed_from_u64(11));
    let res = top_k_nds(g, &mut mc, &cfg);

    println!(
        "\nTop-{} nuclei (closed node sets, size >= {}):",
        cfg.k, cfg.min_size
    );
    for (rank, (set, gamma)) in res.top_k.iter().enumerate() {
        println!(
            "  #{:<2} gamma_hat = {:.3}  |U| = {:<3}  {:?}...",
            rank + 1,
            gamma,
            set.len(),
            &set[..set.len().min(10)]
        );
    }
    println!(
        "\n{} of {} sampled worlds had a densest subgraph; the nuclei are the",
        res.theta - res.empty_worlds,
        res.theta
    );
    println!("node sets most likely to sit inside one (paper Def. 5 / Algorithm 5).");
}
