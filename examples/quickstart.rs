//! Quickstart: build an uncertain graph, estimate its top-k most probable
//! densest subgraphs through the `mpds::api` builder, and compare with the
//! exact answer.
//!
//! Run with: `cargo run --release --example quickstart`

use densest::DensityNotion;
use mpds::api::Query;
use mpds::exact::exact_top_k_mpds;
use ugraph::UncertainGraph;

fn main() {
    // The paper's running example (Fig. 1): nodes A=0, B=1, C=2, D=3 with
    // edges (A,B): 0.4, (A,C): 0.4, (B,D): 0.7.
    let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    println!(
        "Uncertain graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // Algorithm 1 through the one typed entry point: sample theta possible
    // worlds, enumerate ALL densest subgraphs in each, rank node sets by how
    // often they were densest. Every knob is a builder method.
    let estimated = Query::mpds(DensityNotion::Edge)
        .theta(4000)
        .k(3)
        .seed(42)
        .run(&g)
        .expect("valid query");

    println!(
        "\nTop-3 MPDS estimates (theta = {}, {:.1} ms):",
        estimated.stats.worlds_sampled,
        estimated.stats.wall.as_secs_f64() * 1e3
    );
    for (rank, (set, tau)) in estimated.top_k.iter().enumerate() {
        println!("  #{} {:?}  tau_hat = {:.3}", rank + 1, set, tau);
    }

    // Ground truth by exhaustively enumerating all 2^m possible worlds
    // (feasible here because m = 3).
    let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 3);
    println!("\nExact top-3 (2^m sweep):");
    for (rank, (set, tau)) in exact.iter().enumerate() {
        println!("  #{} {:?}  tau = {:.3}", rank + 1, set, tau);
    }

    assert_eq!(estimated.top_k[0].0, exact[0].0);
    println!(
        "\nThe MPDS is {:?} — {{B,D}} in the paper's labels — even though the",
        exact[0].0
    );
    println!("whole graph has the highest EXPECTED density (paper Example 1).");
}
