//! Distinguishing autistic from typically-developed brains with 3-clique
//! MPDSs on uncertain brain networks (paper §VI-F, Figs. 8–15).
//!
//! The cohorts are simulated with the structural properties the paper's
//! ABIDE-derived case study measures (see DESIGN.md §4): the ASD group graph
//! has a strong, symmetric occipital core; the TD graph's strong connectivity
//! also reaches the temporal lobe and cerebellum.
//!
//! Run with: `cargo run --release --example brain_networks`

use mpds::case_studies::brain_case_study;
use ugraph::brain::Cohort;

fn main() {
    for cohort in [Cohort::TypicallyDeveloped, Cohort::Asd] {
        let label = match cohort {
            Cohort::TypicallyDeveloped => "Typically developed (TD)",
            Cohort::Asd => "Autism spectrum disorder (ASD)",
        };
        let study = brain_case_study(cohort, 160, 5);
        println!("=== {label} cohort ===");
        for s in &study.subgraphs {
            println!(
                "{:<6} | {:>3} ROIs | lobes {:?} | unpaired {} | symmetry {:.2}",
                s.method,
                s.node_set.len(),
                s.lobes,
                s.unpaired,
                s.symmetry
            );
            println!("       | {}", s.roi_names.join(" "));
        }
        println!();
    }
    println!("Consistent with the paper: the ASD MPDS is confined to the occipital");
    println!("lobe and is more hemispherically symmetric than the TD MPDS, while the");
    println!("EDS / core / truss baselines span many regions in both cohorts and");
    println!("cannot tell the groups apart.");
}
