//! Cross-crate integration tests: the full Algorithm 1 / Algorithm 5
//! pipelines against exact ground truth on small uncertain graphs, across
//! density notions, sampling strategies, and execution modes — all driven
//! through the `mpds::api` builder.

use densest::DensityNotion;
use mpds::api::{Exec, Query, SamplerKind};
use mpds::exact::{average_f1_across_ranks, exact_gamma, exact_top_k_mpds};
use ugraph::{datasets, Pattern, UncertainGraph};

fn ba7() -> UncertainGraph {
    datasets::synthetic_accuracy_graph("BA7", 42).graph
}

#[test]
fn estimator_matches_exact_top1_on_ba7_all_notions() {
    // Paper §VI-H: "for k = 1, in all cases, our method returns the same
    // result as the exact one".
    let g = ba7();
    let notions = [
        DensityNotion::Edge,
        DensityNotion::Clique(3),
        DensityNotion::Pattern(Pattern::diamond()),
        DensityNotion::Pattern(Pattern::two_star()),
    ];
    for notion in notions {
        let exact = exact_top_k_mpds(&g, &notion, 1);
        let approx = Query::mpds(notion.clone())
            .theta(3000)
            .k(1)
            .seed(7)
            .run(&g)
            .unwrap();
        assert_eq!(
            approx.top_k.first().map(|(s, _)| s.clone()),
            exact.first().map(|(s, _)| s.clone()),
            "notion {}",
            notion.label()
        );
    }
}

#[test]
fn estimator_f1_is_high_for_top5() {
    let g = ba7();
    let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 5);
    let approx = Query::mpds(DensityNotion::Edge)
        .theta(5000)
        .k(5)
        .seed(9)
        .run(&g)
        .unwrap();
    let f1 = average_f1_across_ranks(&approx.top_k, &exact);
    assert!(f1 > 0.7, "avg F1 {f1}");
}

#[test]
fn all_three_samplers_agree_on_the_mpds() {
    let g = ba7();
    let run = |kind: SamplerKind, seed: u64| {
        Query::mpds(DensityNotion::Edge)
            .theta(2500)
            .k(1)
            .sampler(kind)
            .seed(seed)
            .run(&g)
            .unwrap()
            .top_k[0]
            .0
            .clone()
    };
    let mc = run(SamplerKind::MonteCarlo, 1);
    let lp = run(SamplerKind::Lp, 2);
    let rss = run(SamplerKind::Rss, 3);
    assert_eq!(mc, lp);
    assert_eq!(mc, rss);
}

#[test]
fn parallel_execution_agrees_on_the_mpds() {
    // Exec::Threads draws different (per-worker) world streams but must
    // converge to the same top-1 as the serial run at this θ.
    let g = ba7();
    let serial = Query::mpds(DensityNotion::Edge)
        .theta(2500)
        .k(1)
        .seed(5)
        .run(&g)
        .unwrap();
    let parallel = Query::mpds(DensityNotion::Edge)
        .theta(2500)
        .k(1)
        .seed(5)
        .exec(Exec::Threads(4))
        .run(&g)
        .unwrap();
    assert_eq!(serial.top_k[0].0, parallel.top_k[0].0);
}

#[test]
fn nds_gamma_estimates_match_exact() {
    let g = ba7();
    let res = Query::nds(DensityNotion::Edge)
        .theta(4000)
        .k(5)
        .min_size(2)
        .seed(5)
        .run(&g)
        .unwrap();
    assert!(!res.top_k.is_empty());
    for (set, gamma_hat) in res.top_k.iter().take(3) {
        let gamma = exact_gamma(&g, &DensityNotion::Edge, set);
        assert!(
            (gamma_hat - gamma).abs() < 0.03,
            "{set:?}: {gamma_hat} vs exact {gamma}"
        );
    }
}

#[test]
fn tau_hat_is_unbiased_on_er7() {
    // Lemma 1: E[tau_hat] = tau. Check the top sets' estimates converge.
    let g = datasets::synthetic_accuracy_graph("ER7", 42).graph;
    let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 3);
    let approx = Query::mpds(DensityNotion::Edge)
        .theta(8000)
        .k(3)
        .seed(31)
        .run(&g)
        .unwrap();
    for (set, tau) in &exact {
        let hat = approx.score_of(set);
        assert!((hat - tau).abs() < 0.03, "{set:?}: {hat} vs {tau}");
    }
}

#[test]
fn heuristic_mpds_stays_close_on_karate() {
    // The §III-C heuristic must return an equally meaningful top-1 on a real
    // dataset. The two modes may settle on different dense clusters (both
    // factions contain one), so compare quality — ground-truth purity and a
    // non-trivial estimated probability — rather than set identity.
    let data = datasets::karate_club();
    let comms = data.communities.as_ref().unwrap();
    let base = Query::mpds(DensityNotion::Edge).theta(400).k(1).seed(7);
    let exact_mode = base.clone().run(&data.graph).unwrap();
    let heur_mode = base.heuristic(true).run(&data.graph).unwrap();
    for res in [&exact_mode, &heur_mode] {
        let (set, tau) = &res.top_k[0];
        assert!(set.len() >= 2, "trivial top-1 {set:?}");
        assert!(*tau > 0.01, "vanishing tau {tau} for {set:?}");
        assert_eq!(
            ugraph::metrics::purity(set, comms),
            1.0,
            "mixed-faction top-1 {set:?}"
        );
    }
}
