//! Cross-crate integration tests: the full Algorithm 1 / Algorithm 5
//! pipelines against exact ground truth on small uncertain graphs, across
//! density notions and sampling strategies.

use densest::DensityNotion;
use mpds::estimate::{top_k_mpds, MpdsConfig};
use mpds::exact::{average_f1_across_ranks, exact_gamma, exact_top_k_mpds};
use mpds::nds::{top_k_nds, NdsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{LazyPropagation, MonteCarlo, RecursiveStratified, WorldSampler};
use ugraph::{datasets, Pattern, UncertainGraph};

fn ba7() -> UncertainGraph {
    datasets::synthetic_accuracy_graph("BA7", 42).graph
}

#[test]
fn estimator_matches_exact_top1_on_ba7_all_notions() {
    // Paper §VI-H: "for k = 1, in all cases, our method returns the same
    // result as the exact one".
    let g = ba7();
    let notions = [
        DensityNotion::Edge,
        DensityNotion::Clique(3),
        DensityNotion::Pattern(Pattern::diamond()),
        DensityNotion::Pattern(Pattern::two_star()),
    ];
    for notion in notions {
        let exact = exact_top_k_mpds(&g, &notion, 1);
        let cfg = MpdsConfig::new(notion.clone(), 3000, 1);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(7));
        let approx = top_k_mpds(&g, &mut mc, &cfg);
        assert_eq!(
            approx.top_k.first().map(|(s, _)| s.clone()),
            exact.first().map(|(s, _)| s.clone()),
            "notion {}",
            notion.label()
        );
    }
}

#[test]
fn estimator_f1_is_high_for_top5() {
    let g = ba7();
    let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 5);
    let cfg = MpdsConfig::new(DensityNotion::Edge, 5000, 5);
    let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
    let approx = top_k_mpds(&g, &mut mc, &cfg);
    let f1 = average_f1_across_ranks(&approx.top_k, &exact);
    assert!(f1 > 0.7, "avg F1 {f1}");
}

#[test]
fn all_three_samplers_agree_on_the_mpds() {
    let g = ba7();
    let cfg = MpdsConfig::new(DensityNotion::Edge, 2500, 1);
    let run = |mut s: Box<dyn WorldSampler>| top_k_mpds(&g, &mut s, &cfg).top_k[0].0.clone();
    let mc = run(Box::new(MonteCarlo::new(&g, StdRng::seed_from_u64(1))));
    let lp = run(Box::new(LazyPropagation::new(&g, StdRng::seed_from_u64(2))));
    let rss = run(Box::new(RecursiveStratified::new(
        &g,
        3,
        StdRng::seed_from_u64(3),
    )));
    assert_eq!(mc, lp);
    assert_eq!(mc, rss);
}

#[test]
fn nds_gamma_estimates_match_exact() {
    let g = ba7();
    let cfg = NdsConfig::new(DensityNotion::Edge, 4000, 5, 2);
    let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
    let res = top_k_nds(&g, &mut mc, &cfg);
    assert!(!res.top_k.is_empty());
    for (set, gamma_hat) in res.top_k.iter().take(3) {
        let gamma = exact_gamma(&g, &DensityNotion::Edge, set);
        assert!(
            (gamma_hat - gamma).abs() < 0.03,
            "{set:?}: {gamma_hat} vs exact {gamma}"
        );
    }
}

#[test]
fn tau_hat_is_unbiased_on_er7() {
    // Lemma 1: E[tau_hat] = tau. Check the top sets' estimates converge.
    let g = datasets::synthetic_accuracy_graph("ER7", 42).graph;
    let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 3);
    let cfg = MpdsConfig::new(DensityNotion::Edge, 8000, 3);
    let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(31));
    let approx = top_k_mpds(&g, &mut mc, &cfg);
    for (set, tau) in &exact {
        let hat = approx.tau_hat(set);
        assert!((hat - tau).abs() < 0.03, "{set:?}: {hat} vs {tau}");
    }
}

#[test]
fn heuristic_mpds_stays_close_on_karate() {
    // The §III-C heuristic must return an equally meaningful top-1 on a real
    // dataset. The two modes may settle on different dense clusters (both
    // factions contain one), so compare quality — ground-truth purity and a
    // non-trivial estimated probability — rather than set identity.
    let data = datasets::karate_club();
    let comms = data.communities.as_ref().unwrap();
    let exact_cfg = MpdsConfig::new(DensityNotion::Edge, 400, 1);
    let mut mc = MonteCarlo::new(&data.graph, StdRng::seed_from_u64(7));
    let exact_mode = top_k_mpds(&data.graph, &mut mc, &exact_cfg);
    let mut heur_cfg = MpdsConfig::new(DensityNotion::Edge, 400, 1);
    heur_cfg.heuristic = true;
    let mut mc = MonteCarlo::new(&data.graph, StdRng::seed_from_u64(7));
    let heur_mode = top_k_mpds(&data.graph, &mut mc, &heur_cfg);
    for res in [&exact_mode, &heur_mode] {
        let (set, tau) = &res.top_k[0];
        assert!(set.len() >= 2, "trivial top-1 {set:?}");
        assert!(*tau > 0.01, "vanishing tau {tau} for {set:?}");
        assert_eq!(
            ugraph::metrics::purity(set, comms),
            1.0,
            "mixed-faction top-1 {set:?}"
        );
    }
}
