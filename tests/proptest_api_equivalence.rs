//! Property-based pins for the `mpds::api` determinism contract, now that
//! the legacy free functions (`top_k_mpds`, `top_k_nds`, …) are gone:
//!
//! * `.run()` at seed `s` is bit-identical to `.run_with_sampler` over an
//!   externally-constructed sampler seeded with `s` — the contract the
//!   legacy wrappers used to witness;
//! * `Exec::Threads(n)` is bit-identical to composing the per-worker
//!   sub-streams by hand (worker `w` draws from sub-stream `w`, partial
//!   results merged in worker order);
//! * a single-member [`mpds::QuerySet`] is bit-identical to the equivalent
//!   standalone [`Query`] run, for MPDS and NDS under all three samplers;
//! * recorded-baseline values (bit-exact `f64`s captured from the legacy
//!   implementation before its deletion) stay reproducible, so the suite
//!   guards the historical behaviour without calling the deleted code.

use densest::DensityNotion;
use mpds::api::{Exec, Query, RunDetails, SamplerKind};
use mpds::{MpdsResult, NdsResult, QuerySet, Stop, StopReason};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use std::collections::HashMap;
use ugraph::{Graph, NodeId, NodeSet, UncertainGraph};

/// Strategy: a random uncertain graph on up to 6 nodes with edge
/// probabilities in (0, 1].
fn arb_uncertain() -> impl Strategy<Value = UncertainGraph> {
    (3usize..=6).prop_flat_map(|n| {
        let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, len).prop_flat_map(move |mask| {
            let edges: Vec<(NodeId, NodeId)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(&e, _)| e)
                .collect();
            let g = Graph::from_edges(n, &edges);
            let m = g.num_edges();
            proptest::collection::vec(0.1f64..=1.0, m)
                .prop_map(move |probs| UncertainGraph::new(g.clone(), probs))
        })
    })
}

fn mpds_details(details: RunDetails) -> MpdsResult {
    match details {
        RunDetails::Mpds(r) => r,
        RunDetails::Nds(_) => unreachable!("MPDS query yields MPDS details"),
    }
}

fn nds_details(details: RunDetails) -> NdsResult {
    match details {
        RunDetails::Nds(r) => r,
        RunDetails::Mpds(_) => unreachable!("NDS query yields NDS details"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial MPDS: `.run()` at seed `s` ≡ `.run_with_sampler` over an
    /// equally-seeded MC sampler, across both the all-densest default and
    /// the §VI-D one-mode ablation.
    #[test]
    fn serial_mpds_run_equals_external_sampler(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..40,
        k in 0usize..4, // k = 0 is the legal degenerate "rank nothing" query
        all_mode in proptest::bool::ANY,
    ) {
        let query = || Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(k)
            .all_densest(all_mode);
        let mut mc = MonteCarlo::new(&ug, StdRng::seed_from_u64(seed));
        let external = mpds_details(query().run_with_sampler(&ug, &mut mc).unwrap().details);
        let run = query().seed(seed).run(&ug).unwrap();
        prop_assert_eq!(&run.top_k, &external.top_k);
        let details = mpds_details(run.details);
        prop_assert_eq!(details.candidates, external.candidates);
        prop_assert_eq!(details.densest_counts, external.densest_counts);
        prop_assert_eq!(details.empty_worlds, external.empty_worlds);
        prop_assert_eq!(details.truncated, external.truncated);
    }

    /// Threaded MPDS: `Exec::Threads(n)` ≡ composing the per-worker MC
    /// sub-streams by hand — worker `w` samples its quota from sub-stream
    /// `w`, candidate counts summed and densest counts concatenated in
    /// worker order, ranks re-derivable from the merged table.
    #[test]
    fn threads_mpds_equals_composed_worker_streams(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 3usize..40,
        workers in 1usize..4,
    ) {
        prop_assume!(theta >= workers);
        let per = theta / workers;
        let extra = theta % workers;
        let mut expected_candidates: HashMap<NodeSet, u32> = HashMap::new();
        let mut expected_counts: Vec<usize> = Vec::new();
        let mut expected_empty = 0usize;
        for w in 0..workers {
            // theta >= workers, so every quota is at least 1.
            let quota = per + usize::from(w < extra);
            let mut mc = MonteCarlo::with_stream(&ug, seed, w as u64);
            let r = mpds_details(
                Query::mpds(DensityNotion::Edge)
                    .theta(quota)
                    .k(3)
                    .run_with_sampler(&ug, &mut mc)
                    .unwrap()
                    .details,
            );
            for (set, count) in r.candidates {
                *expected_candidates.entry(set).or_insert(0) += count;
            }
            expected_counts.extend(r.densest_counts);
            expected_empty += r.empty_worlds;
        }
        let run = Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(3)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&ug)
            .unwrap();
        // Every ranked entry's tau must be the merged count over theta.
        for (set, tau) in &run.top_k {
            let count = *expected_candidates.get(set).unwrap_or(&0);
            prop_assert_eq!(*tau, count as f64 / theta as f64);
        }
        let details = mpds_details(run.details);
        prop_assert_eq!(details.candidates, expected_candidates);
        prop_assert_eq!(details.densest_counts, expected_counts);
        prop_assert_eq!(details.empty_worlds, expected_empty);
    }

    /// Serial NDS: `.run()` at seed `s` ≡ `.run_with_sampler` over an
    /// equally-seeded MC sampler.
    #[test]
    fn serial_nds_run_equals_external_sampler(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..40,
        min_size in 0usize..4, // 0 imposes no size floor
    ) {
        let query = || Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(4)
            .min_size(min_size);
        let mut mc = MonteCarlo::new(&ug, StdRng::seed_from_u64(seed));
        let external = nds_details(query().run_with_sampler(&ug, &mut mc).unwrap().details);
        let run = query().seed(seed).run(&ug).unwrap();
        prop_assert_eq!(&run.top_k, &external.top_k);
        let details = nds_details(run.details);
        prop_assert_eq!(details.transactions, external.transactions);
        prop_assert_eq!(details.empty_worlds, external.empty_worlds);
    }

    /// Threaded NDS: worker `w` must behave exactly like a serial run over
    /// MC sub-stream `w` with its quota, transactions concatenated in worker
    /// order and mined once.
    #[test]
    fn threads_nds_equals_composed_worker_streams(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 3usize..40,
        workers in 1usize..4,
    ) {
        prop_assume!(theta >= workers);
        let per = theta / workers;
        let extra = theta % workers;
        let mut expected_transactions: Vec<NodeSet> = Vec::new();
        let mut expected_empty = 0usize;
        for w in 0..workers {
            // theta >= workers, so every quota is at least 1.
            let quota = per + usize::from(w < extra);
            let mut mc = MonteCarlo::with_stream(&ug, seed, w as u64);
            let r = nds_details(
                Query::nds(DensityNotion::Edge)
                    .theta(quota)
                    .k(4)
                    .min_size(2)
                    .run_with_sampler(&ug, &mut mc)
                    .unwrap()
                    .details,
            );
            expected_transactions.extend(r.transactions);
            expected_empty += r.empty_worlds;
        }
        let (mined, _) = itemset::top_k_closed(&expected_transactions, 4, 2, 5_000_000);
        let expected_top_k: Vec<(NodeSet, f64)> = mined
            .into_iter()
            .map(|c| (c.items, c.support as f64 / theta as f64))
            .collect();
        let run = Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(4)
            .min_size(2)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&ug)
            .unwrap();
        prop_assert_eq!(&run.top_k, &expected_top_k);
        let details = nds_details(run.details);
        prop_assert_eq!(details.transactions, expected_transactions);
        prop_assert_eq!(details.empty_worlds, expected_empty);
    }

    /// The anytime contract, MPDS side: a `Stop::Stable` run that stops
    /// after `t` worlds is bit-identical to `Stop::FixedTheta` at
    /// `theta = t` with the same seed — early stopping truncates the world
    /// stream, it never changes what any prefix of the stream estimates.
    #[test]
    fn stable_stop_equals_fixed_theta_at_the_stop_point_mpds(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 4usize..40,
        window in 1usize..6,
    ) {
        let stable = Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(3)
            .seed(seed)
            .stop(Stop::Stable { window, min_theta: window, theta_cap: theta })
            .run(&ug)
            .unwrap();
        let t = stable.stats.worlds_sampled;
        prop_assert!(t >= 1 && t <= theta, "stop point {} outside 1..={}", t, theta);
        if stable.stats.stop_reason == StopReason::Stable {
            prop_assert!(t < theta || stable.stats.converged_at.is_some());
        } else {
            prop_assert_eq!(stable.stats.stop_reason, StopReason::Completed);
            prop_assert_eq!(t, theta);
        }
        let fixed = Query::mpds(DensityNotion::Edge)
            .theta(t)
            .k(3)
            .seed(seed)
            .run(&ug)
            .unwrap();
        let sb: Vec<(NodeSet, u64)> =
            stable.top_k.iter().map(|(s, v)| (s.clone(), v.to_bits())).collect();
        let fb: Vec<(NodeSet, u64)> =
            fixed.top_k.iter().map(|(s, v)| (s.clone(), v.to_bits())).collect();
        prop_assert_eq!(sb, fb);
        prop_assert_eq!(stable.stats.empty_worlds, fixed.stats.empty_worlds);
        let s = mpds_details(stable.details);
        let f = mpds_details(fixed.details);
        prop_assert_eq!(s.candidates, f.candidates);
        prop_assert_eq!(s.densest_counts, f.densest_counts);
    }

    /// The anytime contract, NDS side: same statement over the closed-set
    /// miner — transactions collected up to the stop point match a fixed-θ
    /// run of exactly that length.
    #[test]
    fn stable_stop_equals_fixed_theta_at_the_stop_point_nds(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 4usize..40,
        window in 1usize..6,
    ) {
        let stable = Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(3)
            .min_size(2)
            .seed(seed)
            .stop(Stop::Stable { window, min_theta: window, theta_cap: theta })
            .run(&ug)
            .unwrap();
        let t = stable.stats.worlds_sampled;
        prop_assert!(t >= 1 && t <= theta);
        let fixed = Query::nds(DensityNotion::Edge)
            .theta(t)
            .k(3)
            .min_size(2)
            .seed(seed)
            .run(&ug)
            .unwrap();
        let sb: Vec<(NodeSet, u64)> =
            stable.top_k.iter().map(|(s, v)| (s.clone(), v.to_bits())).collect();
        let fb: Vec<(NodeSet, u64)> =
            fixed.top_k.iter().map(|(s, v)| (s.clone(), v.to_bits())).collect();
        prop_assert_eq!(sb, fb);
        let s = nds_details(stable.details);
        let f = nds_details(fixed.details);
        prop_assert_eq!(s.transactions, f.transactions);
        prop_assert_eq!(s.empty_worlds, f.empty_worlds);
    }

    /// A single-member `QuerySet` is bit-identical to the equivalent
    /// standalone MPDS `Query` run under every sampler.
    #[test]
    fn single_member_queryset_equals_standalone_mpds(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..30,
        k in 0usize..4,
    ) {
        for kind in [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss] {
            let member = Query::mpds(DensityNotion::Edge).k(k);
            let standalone = member
                .clone()
                .sampler(kind)
                .theta(theta)
                .seed(seed)
                .run(&ug)
                .unwrap();
            let batch = QuerySet::new()
                .sampler(kind)
                .theta(theta)
                .seed(seed)
                .push(member)
                .run(&ug)
                .unwrap();
            prop_assert_eq!(batch.runs.len(), 1);
            prop_assert_eq!(batch.stats.worlds_sampled, theta);
            let run = &batch.runs[0];
            prop_assert_eq!(&run.top_k, &standalone.top_k);
            let b = mpds_details(run.details.clone());
            let s = mpds_details(standalone.details);
            prop_assert_eq!(b.candidates, s.candidates);
            prop_assert_eq!(b.densest_counts, s.densest_counts);
            prop_assert_eq!(b.empty_worlds, s.empty_worlds);
            prop_assert_eq!(b.truncated, s.truncated);
        }
    }

    /// A single-member `QuerySet` is bit-identical to the equivalent
    /// standalone NDS `Query` run under every sampler.
    #[test]
    fn single_member_queryset_equals_standalone_nds(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..30,
        min_size in 0usize..4,
    ) {
        for kind in [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss] {
            let member = Query::nds(DensityNotion::Edge).k(4).min_size(min_size);
            let standalone = member
                .clone()
                .sampler(kind)
                .theta(theta)
                .seed(seed)
                .run(&ug)
                .unwrap();
            let batch = QuerySet::new()
                .sampler(kind)
                .theta(theta)
                .seed(seed)
                .push(member)
                .run(&ug)
                .unwrap();
            prop_assert_eq!(batch.runs.len(), 1);
            let run = &batch.runs[0];
            prop_assert_eq!(&run.top_k, &standalone.top_k);
            let b = nds_details(run.details.clone());
            let s = nds_details(standalone.details);
            prop_assert_eq!(b.transactions, s.transactions);
            prop_assert_eq!(b.empty_worlds, s.empty_worlds);
        }
    }
}

/// Recorded baseline: bit-exact outputs of the Fig. 1 graph at a pinned
/// `(seed, theta)`, captured from the implementation while the legacy entry
/// points still existed (they were bit-identical to the builder, witnessed
/// by the pre-deletion version of this suite). Any drift in sampling order,
/// candidate aggregation, or tie-breaking shows up here as a bit mismatch.
#[test]
fn recorded_baseline_mpds_fig1() {
    let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    let run = Query::mpds(DensityNotion::Edge)
        .theta(400)
        .k(4)
        .seed(1234)
        .run(&g)
        .unwrap();
    let recorded: Vec<(NodeSet, u64)> = vec![
        (vec![1, 3], 0x3fdc000000000000),
        (vec![0, 1, 2, 3], 0x3fd0f5c28f5c28f6),
        (vec![0, 2], 0x3fceb851eb851eb8),
        (vec![0, 1, 3], 0x3fc47ae147ae147b),
    ];
    let got: Vec<(NodeSet, u64)> = run
        .top_k
        .iter()
        .map(|(set, tau)| (set.clone(), tau.to_bits()))
        .collect();
    assert_eq!(got, recorded);
    assert_eq!(run.stats.empty_worlds, 54);
}

/// Recorded baseline for the NDS path (same graph, seed, and θ — the world
/// stream is estimator-independent, so `empty_worlds` matches the MPDS run).
#[test]
fn recorded_baseline_nds_fig1() {
    let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    let run = Query::nds(DensityNotion::Edge)
        .theta(400)
        .k(4)
        .min_size(2)
        .seed(1234)
        .run(&g)
        .unwrap();
    let recorded: Vec<(NodeSet, u64)> = vec![
        (vec![1, 3], 0x3fe651eb851eb852),
        (vec![0, 1], 0x3fe08f5c28f5c28f),
        (vec![0, 1, 3], 0x3fdb333333333333),
        (vec![0, 2], 0x3fd7ae147ae147ae),
    ];
    let got: Vec<(NodeSet, u64)> = run
        .top_k
        .iter()
        .map(|(set, gamma)| (set.clone(), gamma.to_bits()))
        .collect();
    assert_eq!(got, recorded);
    assert_eq!(run.stats.empty_worlds, 54);
}
