//! Property-based equivalence: for random graphs and parameter draws, the
//! `mpds::api` builder produces **bit-identical** results to the legacy
//! free-function entry points at the same seed — MPDS and NDS, serial and
//! `Exec::Threads(n)`. This is the contract that makes the deprecated
//! wrappers safe to delete later.

#![allow(deprecated)] // the whole point is to compare against the legacy API

use densest::DensityNotion;
use mpds::api::{Exec, Query};
use mpds::estimate::{top_k_mpds, MpdsConfig};
use mpds::nds::{top_k_nds, NdsConfig};
use mpds::parallel::parallel_top_k_mpds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::{Graph, NodeId, NodeSet, UncertainGraph};

/// Strategy: a random uncertain graph on up to 6 nodes with edge
/// probabilities in (0, 1].
fn arb_uncertain() -> impl Strategy<Value = UncertainGraph> {
    (3usize..=6).prop_flat_map(|n| {
        let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, len).prop_flat_map(move |mask| {
            let edges: Vec<(NodeId, NodeId)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(&e, _)| e)
                .collect();
            let g = Graph::from_edges(n, &edges);
            let m = g.num_edges();
            proptest::collection::vec(0.1f64..=1.0, m)
                .prop_map(move |probs| UncertainGraph::new(g.clone(), probs))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial MPDS: builder ≡ `top_k_mpds` with an equally-seeded MC
    /// sampler, across both the all-densest default and the §VI-D one-mode
    /// ablation.
    #[test]
    fn builder_serial_mpds_equals_legacy(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..40,
        k in 0usize..4, // k = 0 is the legal degenerate "rank nothing" query
        all_mode in proptest::bool::ANY,
    ) {
        let mut cfg = MpdsConfig::new(DensityNotion::Edge, theta, k);
        cfg.all_densest = all_mode;
        let mut mc = MonteCarlo::new(&ug, StdRng::seed_from_u64(seed));
        let legacy = top_k_mpds(&ug, &mut mc, &cfg);
        let run = Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(k)
            .seed(seed)
            .all_densest(all_mode)
            .run(&ug)
            .unwrap();
        prop_assert_eq!(&run.top_k, &legacy.top_k);
        let details = match run.details {
            mpds::api::RunDetails::Mpds(r) => r,
            mpds::api::RunDetails::Nds(_) => unreachable!(),
        };
        prop_assert_eq!(details.candidates, legacy.candidates);
        prop_assert_eq!(details.densest_counts, legacy.densest_counts);
        prop_assert_eq!(details.empty_worlds, legacy.empty_worlds);
        prop_assert_eq!(details.truncated, legacy.truncated);
    }

    /// Threaded MPDS: builder ≡ `parallel_top_k_mpds` at the same
    /// `(seed, workers)` — including the worker-order densest-count
    /// concatenation.
    #[test]
    fn builder_threads_mpds_equals_legacy_parallel(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 3usize..40,
        workers in 1usize..4,
    ) {
        prop_assume!(theta >= workers);
        let cfg = MpdsConfig::new(DensityNotion::Edge, theta, 3);
        let legacy = parallel_top_k_mpds(&ug, &cfg, seed, workers);
        let run = Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(3)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&ug)
            .unwrap();
        prop_assert_eq!(&run.top_k, &legacy.top_k);
        let details = match run.details {
            mpds::api::RunDetails::Mpds(r) => r,
            mpds::api::RunDetails::Nds(_) => unreachable!(),
        };
        prop_assert_eq!(details.candidates, legacy.candidates);
        prop_assert_eq!(details.densest_counts, legacy.densest_counts);
    }

    /// Serial NDS: builder ≡ `top_k_nds` with an equally-seeded MC sampler.
    #[test]
    fn builder_serial_nds_equals_legacy(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 1usize..40,
        min_size in 0usize..4, // 0 imposes no size floor (legacy-legal)
    ) {
        let cfg = NdsConfig::new(DensityNotion::Edge, theta, 4, min_size);
        let mut mc = MonteCarlo::new(&ug, StdRng::seed_from_u64(seed));
        let legacy = top_k_nds(&ug, &mut mc, &cfg);
        let run = Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(4)
            .min_size(min_size)
            .seed(seed)
            .run(&ug)
            .unwrap();
        prop_assert_eq!(&run.top_k, &legacy.top_k);
        let details = match run.details {
            mpds::api::RunDetails::Nds(r) => r,
            mpds::api::RunDetails::Mpds(_) => unreachable!(),
        };
        prop_assert_eq!(details.transactions, legacy.transactions);
        prop_assert_eq!(details.empty_worlds, legacy.empty_worlds);
    }

    /// Threaded NDS (no legacy parallel NDS existed): worker `w` must behave
    /// exactly like a legacy serial run over MC sub-stream `w` with its
    /// quota, transactions concatenated in worker order and mined once.
    #[test]
    fn builder_threads_nds_equals_composed_legacy_streams(
        ug in arb_uncertain(),
        seed in 0u64..512,
        theta in 3usize..40,
        workers in 1usize..4,
    ) {
        prop_assume!(theta >= workers);
        let per = theta / workers;
        let extra = theta % workers;
        let mut expected_transactions: Vec<NodeSet> = Vec::new();
        let mut expected_empty = 0usize;
        for w in 0..workers {
            // theta >= workers, so every quota is at least 1.
            let quota = per + usize::from(w < extra);
            let cfg = NdsConfig::new(DensityNotion::Edge, quota, 4, 2);
            let mut mc = MonteCarlo::with_stream(&ug, seed, w as u64);
            let r = top_k_nds(&ug, &mut mc, &cfg);
            expected_transactions.extend(r.transactions);
            expected_empty += r.empty_worlds;
        }
        let (mined, _) = itemset::top_k_closed(&expected_transactions, 4, 2, 5_000_000);
        let expected_top_k: Vec<(NodeSet, f64)> = mined
            .into_iter()
            .map(|c| (c.items, c.support as f64 / theta as f64))
            .collect();
        let run = Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(4)
            .min_size(2)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&ug)
            .unwrap();
        prop_assert_eq!(&run.top_k, &expected_top_k);
        let details = match run.details {
            mpds::api::RunDetails::Nds(r) => r,
            mpds::api::RunDetails::Mpds(_) => unreachable!(),
        };
        prop_assert_eq!(details.transactions, expected_transactions);
        prop_assert_eq!(details.empty_worlds, expected_empty);
    }
}
