//! Property tests: any mutation sequence applied through `DeltaGraph` —
//! with or without (forced or automatic) compaction — yields exactly the
//! graph a from-scratch `GraphBuilder` rebuild produces.
//!
//! The reference model is a sorted `(u, v) → p` map mutated alongside the
//! `DeltaGraph`; after every operation the merged view (degrees, rows with
//! probabilities, canonical edge list) and a materialized snapshot must
//! equal `UncertainGraph::from_weighted_edges` (which assembles through
//! `GraphBuilder`) over the reference's edges.
//!
//! The mutation script is derived from a generated seed with a local
//! SplitMix64 PRNG: the vendored proptest supports numeric-range strategies
//! and plain-ident macro args, so the seed *is* the shrinkable input.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use ugraph::dynamic::{DeltaGraph, EdgeMutation, MutationBatch};
use ugraph::{NodeId, UncertainGraph};

/// Local deterministic PRNG for deriving scripts from one seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn prob(&mut self) -> f64 {
        // (0, 1] in coarse steps so equality checks are exact.
        (1 + self.below(20)) as f64 / 20.0
    }
}

/// Reference model: node count + canonical sorted edge map.
struct RefModel {
    n: usize,
    edges: BTreeMap<(NodeId, NodeId), f64>,
}

impl RefModel {
    /// From-scratch rebuild through `GraphBuilder`
    /// (`from_weighted_edges` → `Graph::from_edges` → `GraphBuilder`).
    fn rebuild(&self) -> UncertainGraph {
        let weighted: Vec<(NodeId, NodeId, f64)> =
            self.edges.iter().map(|(&(u, v), &p)| (u, v, p)).collect();
        UncertainGraph::from_weighted_edges(self.n, &weighted)
    }
}

fn assert_equivalent(d: &mut DeltaGraph, model: &RefModel) -> Result<(), String> {
    let rebuilt = model.rebuild();
    if d.num_nodes() != rebuilt.num_nodes() {
        return Err(format!(
            "node count {} != rebuilt {}",
            d.num_nodes(),
            rebuilt.num_nodes()
        ));
    }
    if d.num_edges() != rebuilt.num_edges() {
        return Err(format!(
            "edge count {} != rebuilt {}",
            d.num_edges(),
            rebuilt.num_edges()
        ));
    }
    // Merged-view iteration contract: rows and probabilities.
    for v in 0..d.num_nodes() as NodeId {
        let merged: Vec<(NodeId, f64)> = d.neighbors_with_probs(v).collect();
        let (nbrs, probs) = rebuilt.neighbors_with_probs(v);
        let expect: Vec<(NodeId, f64)> = nbrs.iter().copied().zip(probs.iter().copied()).collect();
        if merged != expect {
            return Err(format!("row {v}: merged {merged:?} != rebuilt {expect:?}"));
        }
        if d.degree(v) != rebuilt.graph().degree(v) {
            return Err(format!("degree mismatch at {v}"));
        }
    }
    // Snapshot: canonical edge list + probs + generation tag.
    let snap = d.snapshot();
    if snap.graph().graph().edges() != rebuilt.graph().edges() {
        return Err("snapshot edge list != rebuilt edge list".to_string());
    }
    if snap.graph().probs() != rebuilt.probs() {
        return Err("snapshot probs != rebuilt probs".to_string());
    }
    if snap.generation() != d.generation() {
        return Err("snapshot generation != delta generation".to_string());
    }
    Ok(())
}

/// Builds the base graph + model from the seed.
fn base_from_seed(n: usize, rng: &mut Mix) -> (DeltaGraph, RefModel) {
    let mut edges = BTreeMap::new();
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.below(3) == 0 {
                edges.insert((u, v), rng.prob());
            }
        }
    }
    let model = RefModel { n, edges };
    let delta = DeltaGraph::new(Arc::new(model.rebuild()));
    (delta, model)
}

/// Applies one scripted operation to both the delta and the model; returns
/// whether a mutation batch was actually applied (the delete arm skips on
/// an empty edge set).
fn step(d: &mut DeltaGraph, model: &mut RefModel, rng: &mut Mix) -> Result<bool, String> {
    let pick_pair = |model: &RefModel, rng: &mut Mix| {
        let n = model.n as NodeId;
        let u = rng.below(n as usize) as NodeId;
        let mut v = rng.below(n as usize) as NodeId;
        if u == v {
            v = (v + 1) % n;
        }
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    };
    match rng.below(5) {
        // Upsert (insert or re-weight).
        0 | 1 => {
            let (u, v) = pick_pair(model, rng);
            let p = rng.prob();
            d.upsert_edge(u, v, p).map_err(|e| e.to_string())?;
            model.edges.insert((u, v), p);
        }
        // Delete an existing edge (skip when empty); also verify that
        // deleting a missing edge is rejected *without* state change.
        2 => {
            if model.edges.is_empty() {
                return Ok(false);
            }
            let idx = rng.below(model.edges.len());
            let (&(u, v), _) = model.edges.iter().nth(idx).unwrap();
            d.delete_edge(u, v).map_err(|e| e.to_string())?;
            model.edges.remove(&(u, v));
        }
        // Add nodes.
        3 => {
            let count = 1 + rng.below(2);
            d.add_nodes(count).map_err(|e| e.to_string())?;
            model.n += count;
        }
        // Atomic multi-mutation batch (distinct keys by construction).
        _ => {
            let mut batch = MutationBatch::default();
            let mut keys = std::collections::HashSet::new();
            let mut staged: Vec<(NodeId, NodeId, Option<f64>)> = Vec::new();
            for _ in 0..(1 + rng.below(4)) {
                let (u, v) = pick_pair(model, rng);
                if !keys.insert((u, v)) {
                    continue;
                }
                if model.edges.contains_key(&(u, v)) && rng.below(2) == 0 {
                    batch.edges.push(EdgeMutation::Delete(u, v));
                    staged.push((u, v, None));
                } else {
                    let p = rng.prob();
                    batch.edges.push(EdgeMutation::Upsert(u, v, p));
                    staged.push((u, v, Some(p)));
                }
            }
            d.apply(&batch).map_err(|e| e.to_string())?;
            for (u, v, action) in staged {
                match action {
                    Some(p) => {
                        model.edges.insert((u, v), p);
                    }
                    None => {
                        model.edges.remove(&(u, v));
                    }
                }
            }
        }
    }
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No compaction (threshold pushed out of reach): pure overlay reads.
    #[test]
    fn overlay_view_equals_rebuild(seed in 0u64..1_000_000_000, n in 3usize..=14) {
        let mut rng = Mix(seed);
        let (d, mut model) = base_from_seed(n, &mut rng);
        let mut d = d.with_compact_fraction(1e12);
        for _ in 0..24 {
            if let Err(e) = step(&mut d, &mut model, &mut rng) {
                return Err(format!("mutation failed: {e}"));
            }
            assert_equivalent(&mut d, &model)?;
        }
        prop_assert_eq!(d.compactions(), 0);
    }

    /// Forced compaction after every mutation: the base is rebuilt through
    /// `GraphBuilder` each time and must stay equivalent.
    #[test]
    fn forced_compaction_equals_rebuild(seed in 0u64..1_000_000_000, n in 3usize..=14) {
        let mut rng = Mix(seed);
        let (mut d, mut model) = base_from_seed(n, &mut rng);
        for _ in 0..16 {
            if let Err(e) = step(&mut d, &mut model, &mut rng) {
                return Err(format!("mutation failed: {e}"));
            }
            d.compact();
            prop_assert_eq!(d.overlay_len(), 0);
            assert_equivalent(&mut d, &model)?;
        }
    }

    /// Default auto-compaction: equivalence holds across the threshold
    /// crossings, and the generation counts successful batches exactly.
    #[test]
    fn auto_compaction_equals_rebuild(seed in 0u64..1_000_000_000, n in 6usize..=14) {
        let mut rng = Mix(seed);
        let (d, mut model) = base_from_seed(n, &mut rng);
        let mut d = d.with_compact_fraction(0.1);
        let gen0 = d.generation();
        let mut batches = 0u64;
        for _ in 0..40 {
            match step(&mut d, &mut model, &mut rng) {
                Err(e) => return Err(format!("mutation failed: {e}")),
                Ok(applied) => batches += u64::from(applied),
            }
            assert_equivalent(&mut d, &model)?;
        }
        prop_assert_eq!(d.generation(), gen0 + batches);
    }
}
