//! Property-based tests (proptest) on the core invariants of the densest
//! subgraph machinery, run over randomly generated graphs.

use densest::{all_densest, heuristic, max_sized_densest, peeling, solve, Density, DensityNotion};
use proptest::prelude::*;
use ugraph::{Graph, NodeId, Pattern, UncertainGraph};

/// Strategy: a random simple graph on up to 9 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..=9).prop_flat_map(|n| {
        let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, len).prop_map(move |mask| {
            let edges: Vec<(NodeId, NodeId)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(&e, _)| e)
                .collect();
            Graph::from_edges(n, &edges)
        })
    })
}

/// Strategy: a random uncertain graph (graph + probabilities in (0, 1]).
fn arb_uncertain() -> impl Strategy<Value = UncertainGraph> {
    arb_graph().prop_flat_map(|g| {
        let m = g.num_edges();
        proptest::collection::vec(0.05f64..=1.0, m)
            .prop_map(move |probs| UncertainGraph::new(g.clone(), probs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every returned densest subgraph attains exactly rho*, and rho* upper-
    /// bounds the peeling estimate.
    #[test]
    fn all_densest_sets_attain_rho_star(g in arb_graph()) {
        let notion = DensityNotion::Edge;
        if let Some(r) = all_densest(&g, &notion, 100_000) {
            prop_assert!(!r.subgraphs.is_empty());
            let inst = solve::instances_of(&g, &notion);
            for set in &r.subgraphs {
                let cnt = inst.count_within(g.num_nodes(), set);
                prop_assert_eq!(Density::new(cnt, set.len() as u64), r.density);
            }
            // Peeling is a lower bound.
            let p = peeling::peel(g.num_nodes(), &inst);
            prop_assert!(p.best_density <= r.density);
            // No single node's degree-based bound exceeds it: density of the
            // whole graph is a lower bound too.
            let whole = Density::new(g.num_edges() as u64, g.num_nodes() as u64);
            prop_assert!(whole <= r.density);
        } else {
            prop_assert_eq!(g.num_edges(), 0);
        }
    }

    /// max_sized equals the union of all densest subgraphs and is itself
    /// densest.
    #[test]
    fn max_sized_is_union_and_densest(g in arb_graph()) {
        let notion = DensityNotion::Edge;
        if let Some(r) = all_densest(&g, &notion, 100_000) {
            prop_assert!(!r.truncated);
            let mut union: Vec<NodeId> = r.subgraphs.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(&r.max_sized, &union);
            // And the union attains rho* (footnote 5 / [59]).
            let inst = solve::instances_of(&g, &notion);
            let cnt = inst.count_within(g.num_nodes(), &union);
            prop_assert_eq!(Density::new(cnt, union.len() as u64), r.density);
            // The cheap path agrees.
            let (d2, ms2) = max_sized_densest(&g, &notion).unwrap();
            prop_assert_eq!(d2, r.density);
            prop_assert_eq!(ms2, union);
        }
    }

    /// Densest subgraphs are unique in the enumeration (paper Theorem 4:
    /// "exactly once").
    #[test]
    fn enumeration_has_no_duplicates(g in arb_graph()) {
        for notion in [DensityNotion::Edge, DensityNotion::Clique(3)] {
            if let Some(r) = all_densest(&g, &notion, 100_000) {
                let set: std::collections::HashSet<_> =
                    r.subgraphs.iter().cloned().collect();
                prop_assert_eq!(set.len(), r.subgraphs.len());
            }
        }
    }

    /// Clique-density results agree with pattern-density results for the
    /// triangle pattern (clique density is a special case of pattern density).
    #[test]
    fn clique_equals_triangle_pattern(g in arb_graph()) {
        let a = all_densest(&g, &DensityNotion::Clique(3), 100_000);
        let b = all_densest(&g, &DensityNotion::Pattern(Pattern::clique(3)), 100_000);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.density, y.density);
                let mut xs = x.subgraphs; xs.sort();
                let mut ys = y.subgraphs; ys.sort();
                prop_assert_eq!(xs, ys);
            }
            _ => prop_assert!(false, "clique/pattern disagree on existence"),
        }
    }

    /// The heuristic's best subgraph is within the 1/|V_psi| guarantee.
    #[test]
    fn heuristic_respects_guarantee(g in arb_graph()) {
        let notion = DensityNotion::Edge;
        match (heuristic::heuristic_dense_subgraphs(&g, &notion),
               densest::max_density(&g, &notion)) {
            (None, None) => {}
            (Some(h), Some(exact)) => {
                // arity 2: best >= rho*/2.
                prop_assert!(
                    Density::new(h.best_density.num * 2, h.best_density.den) >= exact
                );
            }
            _ => prop_assert!(false),
        }
    }

    /// World probabilities over all 2^m worlds sum to 1 and the expected
    /// edge density of V equals the probability-weighted mean density.
    #[test]
    fn possible_world_semantics(ug in arb_uncertain()) {
        prop_assume!(ug.num_edges() <= 10);
        let total: f64 = ug.iter_worlds().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let all: Vec<NodeId> = (0..ug.num_nodes() as NodeId).collect();
        let direct = ug.expected_edge_density(&all);
        let via_worlds: f64 = ug
            .iter_worlds()
            .map(|(mask, p)| p * ug.world_from_mask(&mask).edge_density())
            .sum();
        prop_assert!((direct - via_worlds).abs() < 1e-9);
    }

    /// tau values from the exact solver are valid probabilities and the
    /// MPDS's tau is the maximum.
    #[test]
    fn exact_taus_are_probabilities(ug in arb_uncertain()) {
        prop_assume!(ug.num_edges() <= 10);
        let taus = mpds::exact::exact_all_tau(&ug, &DensityNotion::Edge);
        let mut best = 0.0f64;
        for (_, &tau) in taus.iter() {
            prop_assert!(tau > 0.0 && tau <= 1.0 + 1e-12);
            best = best.max(tau);
        }
        if let Some(top) = mpds::exact::exact_top_k_mpds(&ug, &DensityNotion::Edge, 1).first() {
            prop_assert!((top.1 - best).abs() < 1e-12);
        }
    }
}
