//! Property tests: the CSR graph core is observationally identical to the
//! adjacency-list semantics it replaced.
//!
//! A minimal reference model (per-vertex sorted neighbor `Vec`s plus a
//! canonical edge set, built by insertion) is rebuilt for every generated
//! graph; degree sequences, neighbor rows, edge lists, membership tests, and
//! per-edge probabilities must agree exactly, and bitmap-materialized worlds
//! must round-trip through the same model.

use proptest::prelude::*;
use ugraph::{EdgeMask, Graph, NodeId, UncertainGraph};

/// Reference implementation: the old adjacency-list representation.
struct RefGraph {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl RefGraph {
    fn new(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        let mut canonical: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        canonical.sort_unstable();
        canonical.dedup();
        for &(u, v) in &canonical {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        RefGraph {
            n,
            adj,
            edges: canonical,
        }
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }
}

/// Strategy: node count plus a duplicate-free random pair list.
fn arb_edge_list() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..=24).prop_flat_map(|n| {
        let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|u| ((u + 1)..n as NodeId).map(move |v| (u, v)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(proptest::bool::ANY, len).prop_map(move |mask| {
            let edges: Vec<(NodeId, NodeId)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(&e, _)| e)
                .collect();
            (n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Degree sequence, neighbor rows, canonical edge list, and membership
    /// tests of the CSR graph equal the adjacency-list reference.
    #[test]
    fn csr_roundtrips_adjacency_semantics(input in arb_edge_list()) {
        let (n, edges) = (input.0, &input.1);
        let g = Graph::from_edges(n, edges);
        let r = RefGraph::new(n, edges);
        prop_assert_eq!(g.num_nodes(), r.n);
        prop_assert_eq!(g.num_edges(), r.edges.len());
        prop_assert_eq!(g.edges(), r.edges.as_slice());
        for v in 0..n as NodeId {
            prop_assert_eq!(g.degree(v), r.adj[v as usize].len());
            prop_assert_eq!(g.neighbors(v), r.adj[v as usize].as_slice());
        }
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v {
                    prop_assert_eq!(g.has_edge(u, v), r.has_edge(u, v));
                }
            }
        }
        // Arc ↔ edge-index mapping is self-consistent.
        for v in 0..n as NodeId {
            let (nbrs, eids) = g.neighbors_with_edge_ids(v);
            for (&w, &e) in nbrs.iter().zip(eids) {
                let (a, b) = g.edges()[e as usize];
                prop_assert_eq!((a, b), (v.min(w), v.max(w)));
                prop_assert_eq!(g.edge_index(v, w), Some(e as usize));
            }
        }
    }

    /// Edge probabilities survive the CSR construction: `edge_prob`, the
    /// canonical `probs()` array, and the per-arc slices all agree with the
    /// input weights.
    #[test]
    fn probabilities_align_with_csr(input in arb_edge_list()) {
        let (n, edges) = (input.0, &input.1);
        prop_assume!(!edges.is_empty());
        // Deterministic pseudo-probabilities derived from the endpoints.
        let weighted: Vec<(NodeId, NodeId, f64)> = edges
            .iter()
            .map(|&(u, v)| (u, v, 0.05 + 0.9 * ((u * 31 + v) % 17) as f64 / 17.0))
            .collect();
        let ug = UncertainGraph::from_weighted_edges(n, &weighted);
        for &(u, v, p) in &weighted {
            prop_assert_eq!(ug.edge_prob(u, v), Some(p));
            prop_assert_eq!(ug.edge_prob(v, u), Some(p));
        }
        for v in 0..n as NodeId {
            let (nbrs, probs) = ug.neighbors_with_probs(v);
            prop_assert_eq!(nbrs.len(), probs.len());
            for (&w, &p) in nbrs.iter().zip(probs) {
                prop_assert_eq!(ug.edge_prob(v, w), Some(p));
            }
        }
    }

    /// Bitmap-materialized worlds (with buffer recycling) equal the worlds
    /// the adjacency-list reference builds from the same mask.
    #[test]
    fn bitmap_worlds_match_reference(input in arb_edge_list()) {
        let (n, edges) = (input.0, &input.1);
        prop_assume!(!edges.is_empty());
        let weighted: Vec<(NodeId, NodeId, f64)> =
            edges.iter().map(|&(u, v)| (u, v, 0.5)).collect();
        let ug = UncertainGraph::from_weighted_edges(n, &weighted);
        let m = ug.num_edges();
        let mut recycle = Graph::default();
        // Deterministic mask schedule, including all-empty and all-full.
        for round in 0..6u32 {
            let bools: Vec<bool> = (0..m)
                .map(|i| match round {
                    0 => false,
                    1 => true,
                    r => (i as u32).wrapping_mul(2654435761).wrapping_add(r) % 3 == 0,
                })
                .collect();
            let mask = EdgeMask::from_bools(&bools);
            let world = ug.world_from_bitmap(&mask, recycle);
            let kept: Vec<(NodeId, NodeId)> = ug
                .graph()
                .edges()
                .iter()
                .zip(&bools)
                .filter(|(_, &b)| b)
                .map(|(&e, _)| e)
                .collect();
            let r = RefGraph::new(n, &kept);
            prop_assert_eq!(world.edges(), r.edges.as_slice());
            for v in 0..n as NodeId {
                prop_assert_eq!(world.neighbors(v), r.adj[v as usize].as_slice());
            }
            recycle = world;
        }
    }
}
