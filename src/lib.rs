//! Umbrella crate for the MPDS reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can depend on a single name. Library users should depend
//! on the individual crates (`mpds`, `ugraph`, `densest`, ...) directly.

pub use densest;
pub use itemset;
pub use maxflow;
pub use mpds;
pub use mpds_service;
pub use sampling;
pub use ugraph;
