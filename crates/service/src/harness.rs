//! Loopback load harness: drives a running server with concurrent clients
//! and emits a `BENCH_pr3.json`-style report.
//!
//! Two phases, mirroring the serving claim being benchmarked:
//!
//! 1. **cold** — every client issues queries with distinct seeds, so each
//!    request is a genuine estimator run (measures compute throughput under
//!    concurrency);
//! 2. **repeat** — every client issues the *same* query, so after one
//!    computation the cache and in-flight coalescing must serve the rest
//!    (measures cached latency, verifies bytewise-identical bodies, and
//!    reads the cache hit rate off `/metrics`).
//!
//! The **churn** harness ([`run_churn`], `mpds-load --churn`, emits
//! `BENCH_pr5.json`) interleaves `POST /update` mutation batches with that
//! read workload against a `serve --mutable` server: per round it applies
//! one batch (insert fresh edges, re-weight half of the previous round's,
//! delete the other half), asserts the canonical read is recomputed under
//! the new generation (`X-Cache: MISS` then `HIT`), and fires a concurrent
//! read burst. Its `--check` gate demands zero non-2xx anywhere and
//! strictly monotone generations across the update responses.
//!
//! The **anytime** harness ([`run_anytime`], `mpds-load --anytime`, emits
//! `BENCH_pr7.json`) exercises the stop-policy API end to end: a cold
//! fixed-θ phase, a cold `stop=stable` phase that must beat it at the
//! median, a tight-`budget_ms` phase where every response must be a 200
//! (zero 504s) with at least one genuinely budget-truncated body, and a
//! follow-up phase that polls each budget query until the background
//! refinement tier republishes a converged body under the same cache key.
//!
//! The **observability** harness ([`run_obs`], `mpds-load --obs`, emits
//! `BENCH_pr8.json`) closes the loop on the server's own latency
//! histograms: it scrapes the Prometheus `/metrics` exposition around a
//! cold and a repeat phase, reconstructs the per-phase server-side
//! latency distribution with [`mpds_obs::scrape::prom_histogram`], and
//! cross-checks the server-side p50/p99 against the client-side timings.
//! Its `--check` gate also exercises `?profile=1` cache-neutrality.
//!
//! The **kill-recover** harness ([`run_kill_recover`], `mpds-load
//! --kill-recover`, emits `BENCH_pr9.json`) proves the durability claim end
//! to end: it spawns `mpds-cli serve --mutable --data-dir` itself, applies
//! churn batches, SIGKILLs the server mid-stream (no flush, no graceful
//! shutdown), restarts it from the same `--data-dir`, and gates on exact
//! generation continuity, a byte-identical canonical read across the crash,
//! and further updates resuming at the very next generation.
//!
//! The **flight** harness ([`run_flight`], `mpds-load --flight`, emits
//! `BENCH_pr10.json`) is self-contained: it binds two in-process servers —
//! flight recorder enabled vs disabled — runs the identical cold/repeat
//! workload against both, and gates the enabled/disabled throughput ratio
//! at [`OVERHEAD_RATIO_FLOOR`]. Against the enabled server it also proves
//! the introspection loop end to end: `/debug/requests` observing its own
//! in-flight trace, a populated slow-query ring, and a Prometheus
//! histogram exemplar resolving through `/debug/trace/<id>` to a
//! per-stage breakdown.
//!
//! The harness is a plain blocking TCP client — no shared state with the
//! server beyond the socket — so it can drive an in-process loopback
//! server (tests) or an external `mpds-cli serve` (the CI smoke job)
//! identically. All response scraping (flat JSON counters, Prometheus
//! text) goes through the shared [`mpds_obs::scrape`] parser.

use mpds_obs::scrape;
use mpds_obs::HistogramSnapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client (split evenly between the two phases).
    pub requests_per_client: usize,
    /// Reported in the JSON (the harness cannot observe it remotely).
    pub server_threads: usize,
    /// Dataset queried.
    pub dataset: String,
    /// Worlds per query.
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            clients: 32,
            requests_per_client: 50,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 64,
            k: 3,
        }
    }
}

/// One HTTP exchange as seen by a harness client.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Wall-clock latency.
    pub latency: Duration,
    /// The `X-Cache` response header (`HIT` / `MISS` / `COALESCED`), when
    /// the server sent one.
    pub x_cache: Option<String>,
    /// The `X-Trace-Id` response header (16 lowercase hex digits), when the
    /// server sent one.
    pub trace_id: Option<String>,
}

/// Latency/throughput summary of one phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Requests issued.
    pub requests: usize,
    /// Responses with a non-2xx status.
    pub errors: usize,
    /// Requests per second over the phase wall clock.
    pub throughput_rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// Full harness outcome.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Configuration echo.
    pub config: HarnessConfig,
    /// Cold-phase (distinct seeds) stats.
    pub cold: PhaseStats,
    /// Repeat-phase (identical query) stats.
    pub repeat: PhaseStats,
    /// Cache hit rate over the repeat phase's lookups (hits / lookups,
    /// where coalesced joins count as hits — they did not recompute).
    pub repeat_cache_hit_rate: f64,
    /// Hard failures: non-2xx responses, divergent repeat bodies, low hit
    /// rate. Empty means the `--check` contract holds.
    pub violations: Vec<String>,
}

/// Issues one blocking request (the head and optional body are passed
/// pre-serialized) and reads the full response.
fn http_exchange(addr: SocketAddr, request: &[u8], timeout: Duration) -> std::io::Result<Exchange> {
    let start = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(request)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let latency = start.elapsed();
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let header = |name: &str| {
        head.lines().skip(1).find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.trim()
                .eq_ignore_ascii_case(name)
                .then(|| v.trim().to_string())
        })
    };
    let x_cache = header("x-cache");
    let trace_id = header("x-trace-id");
    Ok(Exchange {
        status,
        body: raw[header_end + 4..].to_vec(),
        latency,
        x_cache,
        trace_id,
    })
}

/// Issues one blocking HTTP/1.1 GET and reads the full response.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<Exchange> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n");
    http_exchange(addr, req.as_bytes(), timeout)
}

/// [`http_get`] with an explicit `Accept` header — the scraper half of the
/// `/metrics` content negotiation (`Accept: text/plain` selects Prometheus
/// text exposition).
pub fn http_get_accept(
    addr: SocketAddr,
    path: &str,
    accept: &str,
    timeout: Duration,
) -> std::io::Result<Exchange> {
    let req = format!(
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
    );
    http_exchange(addr, req.as_bytes(), timeout)
}

/// Issues one blocking HTTP/1.1 POST with `body` and reads the full
/// response (the client half of `POST /update`).
pub fn http_post(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<Exchange> {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    http_exchange(addr, &req, timeout)
}

/// Polls `/healthz` until the server answers (used by the CI smoke job to
/// wait out the server's startup).
pub fn wait_until_healthy(addr: SocketAddr, budget: Duration) -> Result<(), String> {
    let deadline = Instant::now() + budget;
    loop {
        match http_get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(e) if e.status == 200 => return Ok(()),
            _ if Instant::now() >= deadline => {
                return Err(format!("server at {addr} not healthy within {budget:?}"))
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Runs one phase: `clients` threads, each issuing `per_client` requests
/// produced by `path_of(client, i)`. Returns per-request exchanges plus the
/// phase wall clock.
fn run_phase(
    cfg: &HarnessConfig,
    per_client: usize,
    path_of: impl Fn(usize, usize) -> String + Sync,
) -> (Vec<Exchange>, Duration) {
    let all: Mutex<Vec<Exchange>> = Mutex::new(Vec::with_capacity(cfg.clients * per_client));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let all = &all;
            let errors = &errors;
            let path_of = &path_of;
            scope.spawn(move || {
                for i in 0..per_client {
                    match http_get(cfg.addr, &path_of(c, i), Duration::from_secs(120)) {
                        Ok(ex) => all.lock().unwrap().push(ex),
                        Err(e) => errors
                            .lock()
                            .unwrap()
                            .push(format!("client {c} request {i}: {e}")),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let mut all = all.into_inner().unwrap();
    // Transport-level failures surface as synthetic status-0 exchanges so
    // they are counted as errors rather than silently dropped.
    for e in errors.into_inner().unwrap() {
        all.push(Exchange {
            status: 0,
            body: e.into_bytes(),
            latency: elapsed,
            x_cache: None,
            trace_id: None,
        });
    }
    (all, elapsed)
}

fn phase_stats(exchanges: &[Exchange], elapsed: Duration) -> PhaseStats {
    // Transport failures (synthetic status 0) carry no meaningful latency;
    // they count as errors but must not poison the percentiles.
    let mut lat_ms: Vec<f64> = exchanges
        .iter()
        .filter(|e| e.status != 0)
        .map(|e| e.latency.as_secs_f64() * 1e3)
        .collect();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PhaseStats {
        requests: exchanges.len(),
        errors: exchanges
            .iter()
            .filter(|e| !(200..300).contains(&e.status))
            .count(),
        throughput_rps: exchanges.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
    }
}

/// Runs the full two-phase load harness against `cfg.addr`.
pub fn run(cfg: &HarnessConfig) -> HarnessReport {
    let mut violations = Vec::new();
    let per_phase = (cfg.requests_per_client / 2).max(1);
    let query_base = format!(
        "/query?dataset={}&theta={}&k={}",
        cfg.dataset, cfg.theta, cfg.k
    );

    // Phase 1 — cold: distinct seeds, every request computes.
    let (cold_ex, cold_elapsed) = run_phase(cfg, per_phase, |c, i| {
        format!("{query_base}&seed={}", 10_000 + (c * per_phase + i) as u64)
    });
    let cold = phase_stats(&cold_ex, cold_elapsed);

    // Snapshot cache counters between phases.
    let before = http_get(cfg.addr, "/metrics", Duration::from_secs(10)).ok();

    // Phase 2 — repeat: one identical query from every client.
    let (repeat_ex, repeat_elapsed) =
        run_phase(cfg, per_phase, |_, _| format!("{query_base}&seed=42"));
    let repeat = phase_stats(&repeat_ex, repeat_elapsed);

    let after = http_get(cfg.addr, "/metrics", Duration::from_secs(10)).ok();

    // Violation 1: any non-2xx anywhere (the harness never overloads an
    // adequately provisioned queue, so a 503 here is a real failure).
    for (phase, stats) in [("cold", &cold), ("repeat", &repeat)] {
        if stats.errors > 0 {
            violations.push(format!("{phase} phase: {} non-2xx responses", stats.errors));
        }
    }

    // Violation 2: repeat-phase bodies must be bytewise identical.
    let bodies: Vec<&Vec<u8>> = repeat_ex
        .iter()
        .filter(|e| (200..300).contains(&e.status))
        .map(|e| &e.body)
        .collect();
    if let Some(first) = bodies.first() {
        let divergent = bodies.iter().filter(|b| *b != first).count();
        if divergent > 0 {
            violations.push(format!(
                "repeat phase: {divergent} of {} bodies differ from the first",
                bodies.len()
            ));
        }
    } else {
        violations.push("repeat phase: no successful responses".to_string());
    }

    // Violation 3: cache hit rate over the repeat phase (from /metrics
    // deltas; coalesced joins count as hits — they did not recompute).
    let repeat_cache_hit_rate = match (&before, &after) {
        (Some(b), Some(a)) => {
            let bt = String::from_utf8_lossy(&b.body).into_owned();
            let at = String::from_utf8_lossy(&a.body).into_owned();
            let delta = |key: &str| -> u64 {
                scrape::json_uint(&at, key)
                    .unwrap_or(0)
                    .saturating_sub(scrape::json_uint(&bt, key).unwrap_or(0))
            };
            let (hits, misses, coalesced) = (delta("hits"), delta("misses"), delta("coalesced"));
            // Every request performs exactly one cache lookup (coalesced
            // requests miss first, then join), so lookups = requests and
            // requests served without recomputation = hits + coalesced.
            let lookups = hits + misses;
            if lookups == 0 {
                0.0
            } else {
                (hits + coalesced) as f64 / lookups as f64
            }
        }
        _ => {
            violations.push("could not read /metrics".to_string());
            0.0
        }
    };
    if repeat_cache_hit_rate <= 0.9 {
        violations.push(format!(
            "repeat-phase cache hit rate {repeat_cache_hit_rate:.3} not above 0.9"
        ));
    }

    HarnessReport {
        config: cfg.clone(),
        cold,
        repeat,
        repeat_cache_hit_rate,
        violations,
    }
}

/// Serializes a report in the `BENCH_pr3.json` schema.
pub fn render_report(r: &HarnessReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/load_harness/v1")
        .field_str(
            "note",
            "loopback load harness; latencies are machine-dependent, the checked \
             invariants are zero non-2xx, bytewise-identical repeat bodies, and \
             repeat cache hit rate > 0.9",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("clients", r.config.clients as u64)
        .field_uint("requests_per_client", r.config.requests_per_client as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .end_object()
        .key("phases")
        .begin_array();
    for (name, p) in [("cold", &r.cold), ("repeat", &r.repeat)] {
        w.begin_object()
            .field_str("name", name)
            .field_uint("requests", p.requests as u64)
            .field_uint("errors", p.errors as u64)
            .field_float("throughput_rps", round3(p.throughput_rps))
            .field_float("p50_ms", round3(p.p50_ms))
            .field_float("p99_ms", round3(p.p99_ms))
            .end_object();
    }
    w.end_array()
        .field_float("repeat_cache_hit_rate", round3(r.repeat_cache_hit_rate))
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Churn-harness parameters (see [`run_churn`]).
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Server address (must be a `serve --mutable` server).
    pub addr: SocketAddr,
    /// Concurrent reader threads per read burst.
    pub clients: usize,
    /// Update rounds.
    pub update_batches: usize,
    /// Edges inserted per round (each round also re-weights half of the
    /// previous round's insertions and deletes the other half).
    pub batch_edges: usize,
    /// Reads per client per round.
    pub reads_per_round: usize,
    /// Reported in the JSON (the harness cannot observe it remotely).
    pub server_threads: usize,
    /// Dataset updated and queried.
    pub dataset: String,
    /// Worlds per query.
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            clients: 8,
            update_batches: 8,
            batch_edges: 16,
            reads_per_round: 4,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 64,
            k: 3,
        }
    }
}

/// Full churn-harness outcome (`BENCH_pr5.json`).
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Configuration echo.
    pub config: ChurnConfig,
    /// All interleaved reads (bursts + the per-round recovery probes).
    pub reads: PhaseStats,
    /// Update batches applied.
    pub updates: usize,
    /// Update responses with a non-2xx status.
    pub update_errors: usize,
    /// Median update latency, milliseconds.
    pub update_p50_ms: f64,
    /// 99th-percentile update latency, milliseconds.
    pub update_p99_ms: f64,
    /// Generation reported by the first update response.
    pub first_generation: u64,
    /// Generation reported by the last update response.
    pub last_generation: u64,
    /// Whether the update-response generations were strictly increasing.
    pub generations_monotone: bool,
    /// Fraction of rounds whose canonical read was `X-Cache: MISS` right
    /// after the update and `HIT` on the immediate repeat — the cache
    /// recovering at the new generation.
    pub post_update_hit_recovery: f64,
    /// Hard failures: non-2xx anywhere or non-monotone generations. Empty
    /// means the `--check` contract holds.
    pub violations: Vec<String>,
}

/// The deterministic mutation batch of churn round `round`: inserts
/// `batch_edges` fresh label-pair edges, and from round 1 on re-weights the
/// first half of the previous round's pairs and deletes the second half —
/// all three mutation kinds per round, bounded graph growth, and entirely
/// dataset-agnostic (fresh labels start at 1 000 000).
pub fn churn_batch(round: usize, batch_edges: usize) -> String {
    let pair = |r: usize, j: usize| {
        let u = 1_000_000u64 + ((r * batch_edges + j) as u64) * 2;
        (u, u + 1)
    };
    let mut out = String::new();
    for j in 0..batch_edges {
        let (u, v) = pair(round, j);
        let p = 0.2 + 0.1 * (j % 6) as f64;
        out.push_str(&format!("{u} {v} {p:.1}\n"));
    }
    if round > 0 {
        for j in 0..batch_edges {
            let (u, v) = pair(round - 1, j);
            if j < batch_edges / 2 {
                out.push_str(&format!("{u} {v} 0.9\n"));
            } else {
                out.push_str(&format!("{u} {v} -\n"));
            }
        }
    }
    out
}

/// Runs the churn harness against `cfg.addr` (which must serve `/update`,
/// i.e. `mpds-cli serve --mutable`).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let mut violations = Vec::new();
    let query_path = format!(
        "/query?dataset={}&theta={}&k={}&seed=42",
        cfg.dataset, cfg.theta, cfg.k
    );
    let timeout = Duration::from_secs(120);

    // Warm the cache at the starting generation so round 0's MISS is
    // attributable to the generation bump, not to a cold cache.
    let mut all_reads: Vec<Exchange> = Vec::new();
    let mut read_elapsed = Duration::ZERO;
    match http_get(cfg.addr, &query_path, timeout) {
        Ok(e) => {
            read_elapsed += e.latency;
            all_reads.push(e);
        }
        Err(e) => violations.push(format!("warm read failed: {e}")),
    }

    let mut update_latencies_ms: Vec<f64> = Vec::new();
    let mut update_errors = 0usize;
    let mut generations: Vec<u64> = Vec::new();
    let mut recovered_rounds = 0usize;

    for round in 0..cfg.update_batches {
        // 1. Apply the round's mutation batch.
        let batch = churn_batch(round, cfg.batch_edges);
        let path = format!("/update?dataset={}", cfg.dataset);
        match http_post(cfg.addr, &path, batch.as_bytes(), timeout) {
            Ok(e) => {
                update_latencies_ms.push(e.latency.as_secs_f64() * 1e3);
                if (200..300).contains(&e.status) {
                    let body = String::from_utf8_lossy(&e.body).into_owned();
                    match scrape::json_uint(&body, "generation") {
                        Some(g) => generations.push(g),
                        None => violations
                            .push(format!("round {round}: no generation in update response")),
                    }
                } else {
                    update_errors += 1;
                    violations.push(format!(
                        "round {round}: update answered {}: {}",
                        e.status,
                        String::from_utf8_lossy(&e.body)
                    ));
                }
            }
            Err(e) => {
                update_errors += 1;
                violations.push(format!("round {round}: update failed: {e}"));
            }
        }

        // 2. Recovery probe: the canonical read must recompute under the
        //    new generation (MISS), then serve from cache (HIT).
        let mut probe =
            |label: &str, reads: &mut Vec<Exchange>, elapsed: &mut Duration| match http_get(
                cfg.addr,
                &query_path,
                timeout,
            ) {
                Ok(e) => {
                    *elapsed += e.latency;
                    let x = e.x_cache.clone();
                    reads.push(e);
                    x
                }
                Err(err) => {
                    violations.push(format!("round {round}: {label} probe failed: {err}"));
                    None
                }
            };
        let first = probe("post-update", &mut all_reads, &mut read_elapsed);
        let second = probe("repeat", &mut all_reads, &mut read_elapsed);
        if first.as_deref() == Some("MISS") && second.as_deref() == Some("HIT") {
            recovered_rounds += 1;
        }

        // 3. Concurrent read burst at the new generation.
        let burst_cfg = HarnessConfig {
            addr: cfg.addr,
            clients: cfg.clients,
            requests_per_client: cfg.reads_per_round,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: cfg.theta,
            k: cfg.k,
        };
        let (burst, burst_elapsed) =
            run_phase(&burst_cfg, cfg.reads_per_round, |_, _| query_path.clone());
        read_elapsed += burst_elapsed;
        all_reads.extend(burst);
    }

    let reads = phase_stats(&all_reads, read_elapsed);
    if reads.errors > 0 {
        violations.push(format!("reads: {} non-2xx responses", reads.errors));
    }
    let generations_monotone = generations.windows(2).all(|w| w[0] < w[1]);
    if !generations_monotone {
        violations.push(format!("generations not monotone: {generations:?}"));
    }
    if generations.len() != cfg.update_batches {
        violations.push(format!(
            "expected {} update generations, observed {}",
            cfg.update_batches,
            generations.len()
        ));
    }
    update_latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ChurnReport {
        config: cfg.clone(),
        reads,
        updates: cfg.update_batches,
        update_errors,
        update_p50_ms: percentile(&update_latencies_ms, 0.50),
        update_p99_ms: percentile(&update_latencies_ms, 0.99),
        first_generation: generations.first().copied().unwrap_or(0),
        last_generation: generations.last().copied().unwrap_or(0),
        generations_monotone,
        post_update_hit_recovery: if cfg.update_batches == 0 {
            1.0
        } else {
            recovered_rounds as f64 / cfg.update_batches as f64
        },
        violations,
    }
}

/// Serializes a churn report in the `BENCH_pr5.json` schema.
pub fn render_churn_report(r: &ChurnReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/churn_harness/v1")
        .field_str(
            "note",
            "update/read churn harness; latencies are machine-dependent, the checked \
             invariants are zero non-2xx anywhere and strictly monotone generations \
             across update responses",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("clients", r.config.clients as u64)
        .field_uint("update_batches", r.config.update_batches as u64)
        .field_uint("batch_edges", r.config.batch_edges as u64)
        .field_uint("reads_per_round", r.config.reads_per_round as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .end_object()
        .key("reads")
        .begin_object()
        .field_uint("requests", r.reads.requests as u64)
        .field_uint("errors", r.reads.errors as u64)
        .field_float("throughput_rps", round3(r.reads.throughput_rps))
        .field_float("p50_ms", round3(r.reads.p50_ms))
        .field_float("p99_ms", round3(r.reads.p99_ms))
        .end_object()
        .key("updates")
        .begin_object()
        .field_uint("applied", r.updates as u64)
        .field_uint("errors", r.update_errors as u64)
        .field_float("p50_ms", round3(r.update_p50_ms))
        .field_float("p99_ms", round3(r.update_p99_ms))
        .field_uint("first_generation", r.first_generation)
        .field_uint("last_generation", r.last_generation)
        .field_bool("generations_monotone", r.generations_monotone)
        .end_object()
        .field_float(
            "post_update_hit_recovery",
            round3(r.post_update_hit_recovery),
        )
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

/// Batch-harness parameters (see [`run_batch`]).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Members per batch (distinct `(algo, k)` combinations).
    pub members: usize,
    /// Measurement rounds (each round uses fresh seeds on both sides).
    pub rounds: usize,
    /// Reported in the JSON (the harness cannot observe it remotely).
    pub server_threads: usize,
    /// Dataset queried.
    pub dataset: String,
    /// Worlds per world stream.
    pub theta: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            members: 8,
            rounds: 4,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 256,
        }
    }
}

/// Full batch-harness outcome (`BENCH_pr6.json`).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Configuration echo.
    pub config: BatchConfig,
    /// The sequential per-member `/query` side.
    pub standalone: PhaseStats,
    /// The `POST /batch` side (one request per round).
    pub batch: PhaseStats,
    /// Worlds materialized per member answer, standalone side (θ each).
    pub standalone_worlds_per_member: f64,
    /// Worlds materialized per member answer, batch side (θ / members).
    pub batch_worlds_per_member: f64,
    /// `standalone_worlds_per_member / batch_worlds_per_member` — the
    /// amortization factor of the shared world stream.
    pub amortization_ratio: f64,
    /// Fraction of post-batch point queries answered `X-Cache: HIT` with
    /// bytes embedded verbatim in the batch envelope.
    pub followup_hit_rate: f64,
    /// Hard failures: non-2xx anywhere, ratio below 2, follow-up misses,
    /// or unexpected `computed` counts. Empty means `--check` holds.
    pub violations: Vec<String>,
}

/// The `(algo, k)` of batch member `j`: k climbs from 2, every fourth
/// member is NDS — distinct cache keys throughout, both estimators fed by
/// the one stream.
pub fn batch_member_spec(j: usize) -> (&'static str, usize) {
    (if j % 4 == 3 { "nds" } else { "mpds" }, j + 2)
}

/// Renders the `POST /batch` body for one harness round.
pub fn batch_body(cfg: &BatchConfig, seed: u64) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", &cfg.dataset)
        .field_uint("theta", cfg.theta as u64)
        .field_uint("seed", seed)
        .key("members")
        .begin_array();
    for j in 0..cfg.members {
        let (algo, k) = batch_member_spec(j);
        w.begin_object()
            .field_str("algo", algo)
            .field_uint("k", k as u64)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// Runs the batch-amortization harness against `cfg.addr`.
///
/// Per round: (1) issue every member as a sequential standalone `/query`
/// under one fresh seed and read the `worlds_sampled` delta off `/metrics`
/// — that is the unamortized cost, θ worlds per member; (2) issue the same
/// member set as one `POST /batch` under a different fresh seed — the
/// shared stream must materialize θ worlds total; (3) re-issue every
/// member as a point `/query` at the batch seed, which must be served
/// `X-Cache: HIT` with bytes the batch envelope embeds verbatim.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    let mut violations = Vec::new();
    let timeout = Duration::from_secs(120);
    let worlds_now = |violations: &mut Vec<String>| -> u64 {
        match http_get(cfg.addr, "/metrics", Duration::from_secs(10)) {
            Ok(e) => scrape::json_uint(&String::from_utf8_lossy(&e.body), "worlds_sampled")
                .unwrap_or_else(|| {
                    violations.push("no worlds_sampled in /metrics".to_string());
                    0
                }),
            Err(e) => {
                violations.push(format!("could not read /metrics: {e}"));
                0
            }
        }
    };
    let member_path = |j: usize, seed: u64| {
        let (algo, k) = batch_member_spec(j);
        format!(
            "/query?dataset={}&theta={}&algo={algo}&k={k}&seed={seed}",
            cfg.dataset, cfg.theta
        )
    };

    let mut standalone_ex: Vec<Exchange> = Vec::new();
    let mut batch_ex: Vec<Exchange> = Vec::new();
    let mut standalone_elapsed = Duration::ZERO;
    let mut batch_elapsed = Duration::ZERO;
    let mut standalone_worlds = 0u64;
    let mut batch_worlds = 0u64;
    let mut followups = 0usize;
    let mut followup_hits = 0usize;

    for round in 0..cfg.rounds {
        // Side 1 — standalone: every member its own full estimator run.
        let seed = 30_000 + round as u64;
        let w0 = worlds_now(&mut violations);
        for j in 0..cfg.members {
            match http_get(cfg.addr, &member_path(j, seed), timeout) {
                Ok(e) => {
                    standalone_elapsed += e.latency;
                    standalone_ex.push(e);
                }
                Err(e) => violations.push(format!("round {round} member {j} standalone: {e}")),
            }
        }
        let w1 = worlds_now(&mut violations);
        standalone_worlds += w1.saturating_sub(w0);

        // Side 2 — batch: the same member set over one shared stream.
        let seed = 60_000 + round as u64;
        let body = batch_body(cfg, seed);
        let envelope = match http_post(cfg.addr, "/batch", body.as_bytes(), timeout) {
            Ok(e) => {
                batch_elapsed += e.latency;
                batch_ex.push(e.clone());
                if !(200..300).contains(&e.status) {
                    violations.push(format!(
                        "round {round}: batch answered {}: {}",
                        e.status,
                        String::from_utf8_lossy(&e.body)
                    ));
                    continue;
                }
                String::from_utf8_lossy(&e.body).into_owned()
            }
            Err(e) => {
                violations.push(format!("round {round}: batch failed: {e}"));
                continue;
            }
        };
        let w2 = worlds_now(&mut violations);
        batch_worlds += w2.saturating_sub(w1);
        if scrape::json_uint(&envelope, "computed") != Some(cfg.members as u64) {
            violations.push(format!(
                "round {round}: batch at a fresh seed should compute all {} members",
                cfg.members
            ));
        }

        // Side 3 — follow-up point queries must hit the batch-filled cache
        // and return exactly the bytes the envelope embeds.
        for j in 0..cfg.members {
            match http_get(cfg.addr, &member_path(j, seed), timeout) {
                Ok(e) => {
                    followups += 1;
                    let body = String::from_utf8_lossy(&e.body).into_owned();
                    if e.x_cache.as_deref() == Some("HIT") && envelope.contains(&body) {
                        followup_hits += 1;
                    } else {
                        violations.push(format!(
                            "round {round} member {j}: follow-up was {:?}, embedded={}",
                            e.x_cache,
                            envelope.contains(&body)
                        ));
                    }
                }
                Err(e) => violations.push(format!("round {round} member {j} follow-up: {e}")),
            }
        }
    }

    let standalone = phase_stats(&standalone_ex, standalone_elapsed);
    let batch = phase_stats(&batch_ex, batch_elapsed);
    for (side, stats) in [("standalone", &standalone), ("batch", &batch)] {
        if stats.errors > 0 {
            violations.push(format!("{side}: {} non-2xx responses", stats.errors));
        }
    }

    let answers = (cfg.rounds * cfg.members).max(1) as f64;
    let standalone_worlds_per_member = standalone_worlds as f64 / answers;
    let batch_worlds_per_member = batch_worlds as f64 / answers;
    let amortization_ratio = if batch_worlds_per_member > 0.0 {
        standalone_worlds_per_member / batch_worlds_per_member
    } else {
        0.0
    };
    if amortization_ratio < 2.0 {
        violations.push(format!(
            "amortization ratio {amortization_ratio:.3} below 2 \
             ({standalone_worlds_per_member:.1} vs {batch_worlds_per_member:.1} worlds/member)"
        ));
    }
    let followup_hit_rate = if followups == 0 {
        violations.push("no follow-up point queries completed".to_string());
        0.0
    } else {
        followup_hits as f64 / followups as f64
    };

    BatchReport {
        config: cfg.clone(),
        standalone,
        batch,
        standalone_worlds_per_member,
        batch_worlds_per_member,
        amortization_ratio,
        followup_hit_rate,
        violations,
    }
}

/// Serializes a batch report in the `BENCH_pr6.json` schema.
pub fn render_batch_report(r: &BatchReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/batch_harness/v1")
        .field_str(
            "note",
            "batch amortization harness; latencies are machine-dependent, the checked \
             invariants are zero non-2xx, worlds-per-member amortization ratio >= 2, \
             and every post-batch point query a cache HIT embedded verbatim in the \
             batch envelope",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("members", r.config.members as u64)
        .field_uint("rounds", r.config.rounds as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .end_object()
        .key("sides")
        .begin_array();
    for (name, p) in [("standalone", &r.standalone), ("batch", &r.batch)] {
        w.begin_object()
            .field_str("name", name)
            .field_uint("requests", p.requests as u64)
            .field_uint("errors", p.errors as u64)
            .field_float("p50_ms", round3(p.p50_ms))
            .field_float("p99_ms", round3(p.p99_ms))
            .end_object();
    }
    w.end_array()
        .field_float(
            "standalone_worlds_per_member",
            round3(r.standalone_worlds_per_member),
        )
        .field_float("batch_worlds_per_member", round3(r.batch_worlds_per_member))
        .field_float("amortization_ratio", round3(r.amortization_ratio))
        .field_float("followup_hit_rate", round3(r.followup_hit_rate))
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

/// Anytime-harness parameters (see [`run_anytime`]).
#[derive(Debug, Clone)]
pub struct AnytimeConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Cold queries per client per phase (distinct seeds throughout).
    pub queries_per_client: usize,
    /// Reported in the JSON (the harness cannot observe it remotely).
    pub server_threads: usize,
    /// Dataset queried.
    pub dataset: String,
    /// Worlds per query (`Stop::Stable`'s `theta_cap`, so also the fixed
    /// phase's full cost — the two phases answer the same question).
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
    /// `stop=stable` window for the stable phase.
    pub window: u32,
    /// Budget for the tight-budget phase, milliseconds (deliberately far
    /// below the cold compute time, so truncation actually happens).
    pub budget_ms: u64,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            clients: 8,
            queries_per_client: 4,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 1024,
            k: 3,
            window: 64,
            budget_ms: 10,
        }
    }
}

/// Full anytime-harness outcome (`BENCH_pr7.json`).
#[derive(Debug, Clone)]
pub struct AnytimeReport {
    /// Configuration echo.
    pub config: AnytimeConfig,
    /// Phase 1 — cold fixed-θ queries (distinct seeds).
    pub fixed: PhaseStats,
    /// Phase 2 — cold `stop=stable` queries (fresh seeds, same θ cap).
    pub stable: PhaseStats,
    /// Phase 3 — cold `budget_ms` queries (fresh seeds again).
    pub budget: PhaseStats,
    /// `fixed.p50_ms / stable.p50_ms` — the early-stop speedup on the cold
    /// path (must exceed 1).
    pub stable_speedup: f64,
    /// Budget-phase bodies that actually reported `stop_reason: "budget"`.
    pub budget_truncated: usize,
    /// Budget-phase responses with status 504 (must be zero — the whole
    /// point of graceful budgets).
    pub budget_504s: usize,
    /// Unique budget-phase queries re-issued afterwards.
    pub refined_followups: usize,
    /// Of those, how many were eventually served `X-Cache: HIT` with a
    /// non-budget `stop_reason` — the background tier republished a
    /// converged answer under the same key.
    pub refined_hits: usize,
    /// Median wall time until a follow-up observed the refined body, ms.
    pub refined_wait_p50_ms: f64,
    /// Hard failures: any non-2xx anywhere (504s in the budget phase
    /// especially), stable not faster than fixed, no actual truncation, or
    /// follow-ups that never saw a refined answer. Empty means `--check`
    /// holds.
    pub violations: Vec<String>,
}

/// Runs the anytime harness against `cfg.addr`.
///
/// Four phases:
///
/// 1. **fixed** — cold fixed-θ queries at distinct seeds: the PR 3-style
///    baseline cost of a full estimator run;
/// 2. **stable** — the same shape with `stop=stable&window=W`: must be
///    faster at the median, since the top-k stabilizes well before θ on
///    real graphs;
/// 3. **budget** — fresh seeds with a deliberately tiny `budget_ms`: every
///    response must be a 200 carrying best-so-far results (zero 504s), and
///    at least one must be genuinely budget-truncated;
/// 4. **refined follow-up** — re-issue each budget-phase query and poll:
///    because `budget_ms` is not part of the cache key, the background
///    refinement tier must eventually republish a converged body under the
///    same key, observable as `X-Cache: HIT` with a non-budget
///    `stop_reason`.
pub fn run_anytime(cfg: &AnytimeConfig) -> AnytimeReport {
    let mut violations = Vec::new();
    let per_client = cfg.queries_per_client.max(1);
    let base = format!(
        "/query?dataset={}&theta={}&k={}",
        cfg.dataset, cfg.theta, cfg.k
    );
    let phase_cfg = HarnessConfig {
        addr: cfg.addr,
        clients: cfg.clients,
        requests_per_client: per_client,
        server_threads: cfg.server_threads,
        dataset: cfg.dataset.clone(),
        theta: cfg.theta,
        k: cfg.k,
    };
    let seed_of = |block: u64, c: usize, i: usize| block + (c * per_client + i) as u64;

    // Phase 1 — fixed-θ cold baseline.
    let (fixed_ex, fixed_elapsed) = run_phase(&phase_cfg, per_client, |c, i| {
        format!("{base}&seed={}", seed_of(40_000, c, i))
    });
    let fixed = phase_stats(&fixed_ex, fixed_elapsed);

    // Phase 2 — stable early-stop, fresh seeds so every request computes.
    let (stable_ex, stable_elapsed) = run_phase(&phase_cfg, per_client, |c, i| {
        format!(
            "{base}&seed={}&stop=stable&window={}",
            seed_of(50_000, c, i),
            cfg.window
        )
    });
    let stable = phase_stats(&stable_ex, stable_elapsed);

    // Phase 3 — tight budget, fresh seeds again.
    let budget_path = |c: usize, i: usize| {
        format!(
            "{base}&seed={}&budget_ms={}",
            seed_of(70_000, c, i),
            cfg.budget_ms
        )
    };
    let (budget_ex, budget_elapsed) = run_phase(&phase_cfg, per_client, budget_path);
    let budget = phase_stats(&budget_ex, budget_elapsed);
    let budget_truncated = budget_ex
        .iter()
        .filter(|e| {
            (200..300).contains(&e.status)
                && String::from_utf8_lossy(&e.body).contains("\"stop_reason\":\"budget\"")
        })
        .count();
    let budget_504s = budget_ex.iter().filter(|e| e.status == 504).count();

    for (phase, stats) in [("fixed", &fixed), ("stable", &stable), ("budget", &budget)] {
        if stats.errors > 0 {
            violations.push(format!("{phase} phase: {} non-2xx responses", stats.errors));
        }
    }
    if budget_504s > 0 {
        violations.push(format!(
            "budget phase: {budget_504s} responses were 504 — budgeted serving must degrade, not fail"
        ));
    }
    if budget_truncated == 0 {
        violations.push(format!(
            "budget phase: no response was budget-truncated at budget_ms={} — the gate proved nothing",
            cfg.budget_ms
        ));
    }
    let stable_speedup = if stable.p50_ms > 0.0 {
        fixed.p50_ms / stable.p50_ms
    } else {
        0.0
    };
    if stable_speedup <= 1.0 {
        violations.push(format!(
            "stable p50 {:.3} ms not below fixed p50 {:.3} ms — early stop bought nothing",
            stable.p50_ms, fixed.p50_ms
        ));
    }

    // Phase 4 — follow-up: each budget query must eventually HIT a refined
    // (non-budget) body under the same cache key. Re-issuing the identical
    // URL is deliberate: budget_ms is excluded from the key, so until the
    // refinement tier republishes, polls HIT the truncated body. The
    // deadline is generous because the server refines serially (one worker,
    // so refinement cannot starve serving) — the whole backlog is
    // one-full-run times the number of unique budget queries.
    let refine_deadline = Instant::now() + Duration::from_secs(120);
    let mut refined_hits = 0usize;
    let mut refined_followups = 0usize;
    let mut waits_ms: Vec<f64> = Vec::new();
    'outer: for c in 0..cfg.clients {
        for i in 0..per_client {
            let path = budget_path(c, i);
            refined_followups += 1;
            let started = Instant::now();
            loop {
                match http_get(cfg.addr, &path, Duration::from_secs(30)) {
                    Ok(e) if (200..300).contains(&e.status) => {
                        let body = String::from_utf8_lossy(&e.body);
                        if e.x_cache.as_deref() == Some("HIT")
                            && !body.contains("\"stop_reason\":\"budget\"")
                        {
                            refined_hits += 1;
                            waits_ms.push(started.elapsed().as_secs_f64() * 1e3);
                            break;
                        }
                    }
                    Ok(e) => {
                        violations.push(format!(
                            "follow-up {path}: status {} while polling for refinement",
                            e.status
                        ));
                        break;
                    }
                    Err(e) => {
                        violations.push(format!("follow-up {path}: {e}"));
                        break;
                    }
                }
                if Instant::now() >= refine_deadline {
                    violations.push(format!(
                        "follow-up {path}: no refined body within the 120 s deadline"
                    ));
                    break 'outer;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    if refined_hits < refined_followups {
        violations.push(format!(
            "only {refined_hits} of {refined_followups} budget queries were refined to convergence"
        ));
    }
    waits_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    AnytimeReport {
        config: cfg.clone(),
        fixed,
        stable,
        budget,
        stable_speedup,
        budget_truncated,
        budget_504s,
        refined_followups,
        refined_hits,
        refined_wait_p50_ms: percentile(&waits_ms, 0.50),
        violations,
    }
}

/// Serializes an anytime report in the `BENCH_pr7.json` schema.
pub fn render_anytime_report(r: &AnytimeReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/anytime_harness/v1")
        .field_str(
            "note",
            "anytime-query harness; latencies are machine-dependent, the checked \
             invariants are zero non-2xx (and zero 504s under budget_ms), stable \
             cold p50 below fixed cold p50 at the same theta cap, at least one \
             genuinely budget-truncated 200, and every budget query later served \
             a refined (non-budget) body from cache under the same key",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("clients", r.config.clients as u64)
        .field_uint("queries_per_client", r.config.queries_per_client as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .field_uint("window", r.config.window as u64)
        .field_uint("budget_ms", r.config.budget_ms)
        .end_object()
        .key("phases")
        .begin_array();
    for (name, p) in [
        ("fixed", &r.fixed),
        ("stable", &r.stable),
        ("budget", &r.budget),
    ] {
        w.begin_object()
            .field_str("name", name)
            .field_uint("requests", p.requests as u64)
            .field_uint("errors", p.errors as u64)
            .field_float("throughput_rps", round3(p.throughput_rps))
            .field_float("p50_ms", round3(p.p50_ms))
            .field_float("p99_ms", round3(p.p99_ms))
            .end_object();
    }
    w.end_array()
        .field_float("stable_speedup", round3(r.stable_speedup))
        .field_uint("budget_truncated", r.budget_truncated as u64)
        .field_uint("budget_504s", r.budget_504s as u64)
        .key("refined")
        .begin_object()
        .field_uint("followups", r.refined_followups as u64)
        .field_uint("hits", r.refined_hits as u64)
        .field_float("wait_p50_ms", round3(r.refined_wait_p50_ms))
        .end_object()
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

/// Observability-harness knobs (`mpds-load --obs`, `BENCH_pr8.json`).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Queries per client per phase.
    pub queries_per_client: usize,
    /// Reported in the JSON (the harness cannot observe it remotely).
    pub server_threads: usize,
    /// Dataset queried.
    pub dataset: String,
    /// Worlds per query.
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            clients: 8,
            queries_per_client: 4,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 64,
            k: 3,
        }
    }
}

/// Server-side latency figures reconstructed from one scraped histogram
/// window.
#[derive(Debug, Clone, Copy)]
pub struct ServerSide {
    /// Observations recorded by the server inside the window.
    pub requests: u64,
    /// Server-side median, milliseconds (log2-bucket interpolated).
    pub p50_ms: f64,
    /// Server-side p99, milliseconds (log2-bucket interpolated).
    pub p99_ms: f64,
}

/// Full observability-harness outcome (`BENCH_pr8.json`).
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Configuration echo.
    pub config: ObsConfig,
    /// Phase 1 — cold queries at distinct seeds (client-side timings).
    pub cold: PhaseStats,
    /// Phase 2 — one query repeated from every client (client-side timings).
    pub repeat: PhaseStats,
    /// Server-side view of the cold phase, from the scraped
    /// `mpds_http_request_duration_microseconds{endpoint="query"}` window.
    pub server_cold: ServerSide,
    /// Server-side view of the repeat phase, same source.
    pub server_repeat: ServerSide,
    /// Whether the `?profile=1` probe returned a stage breakdown without
    /// perturbing the cached body.
    pub profile_ok: bool,
    /// Hard failures: non-2xx responses, scrape failures, server-side
    /// request counts that disagree with what the harness sent, server and
    /// client percentiles outside the log2-quantization tolerance band, or
    /// a broken `?profile=1` probe. Empty means `--check` holds.
    pub violations: Vec<String>,
}

/// Scrapes `/metrics` in Prometheus text format and reconstructs the
/// cumulative 2xx `/query` latency histogram. Returns an empty snapshot
/// (recording the failure in `violations`) when the scrape or the parse
/// fails, and an empty snapshot silently when the family simply has no
/// samples yet (no `/query` traffic has been served).
fn scrape_query_hist(addr: SocketAddr, violations: &mut Vec<String>) -> HistogramSnapshot {
    match http_get_accept(addr, "/metrics", "text/plain", Duration::from_secs(10)) {
        Ok(e) if (200..300).contains(&e.status) => {
            let text = String::from_utf8_lossy(&e.body);
            if !text.contains("# TYPE mpds_http_request_duration_microseconds histogram") {
                violations.push(
                    "/metrics with Accept: text/plain did not return Prometheus text".to_string(),
                );
                return HistogramSnapshot::default();
            }
            scrape::prom_histogram(
                &text,
                "mpds_http_request_duration_microseconds",
                &[("endpoint", "query"), ("status", "2xx")],
            )
            .unwrap_or_default()
        }
        Ok(e) => {
            violations.push(format!("/metrics scrape: status {}", e.status));
            HistogramSnapshot::default()
        }
        Err(e) => {
            violations.push(format!("/metrics scrape: {e}"));
            HistogramSnapshot::default()
        }
    }
}

/// Converts one scraped histogram window (microsecond observations) to
/// millisecond percentiles.
fn server_side(win: &HistogramSnapshot) -> ServerSide {
    ServerSide {
        requests: win.count(),
        p50_ms: win.quantile(0.50) / 1e3,
        p99_ms: win.quantile(0.99) / 1e3,
    }
}

/// Runs the observability harness against `cfg.addr`.
///
/// The harness drives the same cold/repeat shape as the PR 3 load harness
/// but reads latency back from **both sides**: client-side wall times as
/// before, plus server-side percentiles reconstructed from Prometheus
/// `/metrics` scrapes bracketing each phase (the scrapes themselves land in
/// the `endpoint="metrics"` series, so they never pollute the `/query`
/// window). Checks:
///
/// * zero non-2xx responses in either phase;
/// * the server-side cold window counts exactly the requests the harness
///   sent (nothing lost, nothing double-counted);
/// * server-side p50 within a `[0.25×, 4×]` band of client-side p50 plus a
///   1 ms absolute slack — wide enough for log2 bucket quantization and
///   connection overhead, tight enough to catch unit errors (µs read as ms
///   is 1000× out);
/// * a `?profile=1` probe of the repeat query returns a stage breakdown,
///   and an unprofiled re-issue still serves the original cached bytes.
pub fn run_obs(cfg: &ObsConfig) -> ObsReport {
    let mut violations = Vec::new();
    let per_client = cfg.queries_per_client.max(1);
    let base = format!(
        "/query?dataset={}&theta={}&k={}",
        cfg.dataset, cfg.theta, cfg.k
    );
    let phase_cfg = HarnessConfig {
        addr: cfg.addr,
        clients: cfg.clients,
        requests_per_client: per_client,
        server_threads: cfg.server_threads,
        dataset: cfg.dataset.clone(),
        theta: cfg.theta,
        k: cfg.k,
    };

    // Bracketing scrapes turn the cumulative histogram into per-phase
    // windows.
    let s0 = scrape_query_hist(cfg.addr, &mut violations);

    // Phase 1 — cold queries, distinct seeds.
    let (cold_ex, cold_elapsed) = run_phase(&phase_cfg, per_client, |c, i| {
        format!("{base}&seed={}", 80_000 + (c * per_client + i) as u64)
    });
    let cold = phase_stats(&cold_ex, cold_elapsed);

    let s1 = scrape_query_hist(cfg.addr, &mut violations);

    // Phase 2 — every client repeats one query (cache hits after the first).
    let repeat_path = format!("{base}&seed=4242");
    let (repeat_ex, repeat_elapsed) = run_phase(&phase_cfg, per_client, |_, _| repeat_path.clone());
    let repeat = phase_stats(&repeat_ex, repeat_elapsed);

    let s2 = scrape_query_hist(cfg.addr, &mut violations);

    let cold_win = s1.since(&s0);
    let repeat_win = s2.since(&s1);
    let server_cold = server_side(&cold_win);
    let server_repeat = server_side(&repeat_win);

    for (phase, stats) in [("cold", &cold), ("repeat", &repeat)] {
        if stats.errors > 0 {
            violations.push(format!("{phase} phase: {} non-2xx responses", stats.errors));
        }
    }
    let sent = (cfg.clients * per_client) as u64;
    if server_cold.requests != sent {
        violations.push(format!(
            "server-side cold window counted {} requests, harness sent {sent}",
            server_cold.requests
        ));
    }
    if server_repeat.requests != sent {
        violations.push(format!(
            "server-side repeat window counted {} requests, harness sent {sent}",
            server_repeat.requests
        ));
    }
    for (phase, client, server) in [
        ("cold", &cold, &server_cold),
        ("repeat", &repeat, &server_repeat),
    ] {
        // Server time is a subset of client time (no connect/read overhead)
        // and log2-quantized; a generous multiplicative band plus 1 ms of
        // absolute slack still catches unit errors outright.
        let hi = client.p50_ms * 4.0 + 1.0;
        let lo = (client.p50_ms * 0.25 - 1.0).max(0.0);
        if server.p50_ms > hi || server.p50_ms < lo {
            violations.push(format!(
                "{phase} phase: server-side p50 {:.3} ms outside [{:.3}, {:.3}] band \
                 around client-side p50 {:.3} ms",
                server.p50_ms, lo, hi, client.p50_ms
            ));
        }
    }

    // Profile probe: the repeat query is cached by now, so `?profile=1`
    // must splice a stage breakdown into a fresh body while the cached
    // bytes stay untouched.
    let mut profile_ok = false;
    let profiled_path = format!("{repeat_path}&profile=1");
    match http_get(cfg.addr, &profiled_path, Duration::from_secs(30)) {
        Ok(e) if (200..300).contains(&e.status) => {
            let body = String::from_utf8_lossy(&e.body).into_owned();
            if !body.contains("\"profile\":{") || !body.contains("\"stages\":{") {
                violations.push("profile=1 response carries no stage breakdown".to_string());
            } else {
                match http_get(cfg.addr, &repeat_path, Duration::from_secs(30)) {
                    Ok(after) if (200..300).contains(&after.status) => {
                        let plain = String::from_utf8_lossy(&after.body).into_owned();
                        if plain.contains("\"profile\":") {
                            violations.push(
                                "profile block leaked into the cached unprofiled body".to_string(),
                            );
                        } else {
                            profile_ok = true;
                        }
                    }
                    Ok(after) => {
                        violations.push(format!("unprofiled re-issue: status {}", after.status))
                    }
                    Err(e) => violations.push(format!("unprofiled re-issue: {e}")),
                }
            }
        }
        Ok(e) => violations.push(format!("profile=1 probe: status {}", e.status)),
        Err(e) => violations.push(format!("profile=1 probe: {e}")),
    }

    ObsReport {
        config: cfg.clone(),
        cold,
        repeat,
        server_cold,
        server_repeat,
        profile_ok,
        violations,
    }
}

/// Serializes an observability report in the `BENCH_pr8.json` schema.
pub fn render_obs_report(r: &ObsReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/obs_harness/v1")
        .field_str(
            "note",
            "observability harness; latencies are machine-dependent, the checked \
             invariants are zero non-2xx, server-side histogram windows counting \
             exactly the requests sent, server-side p50 within a 4x/1ms band of \
             client-side p50 (log2 bucket quantization tolerated, unit errors \
             caught), and a profile=1 probe that returns stage timings without \
             perturbing the cached body",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("clients", r.config.clients as u64)
        .field_uint("queries_per_client", r.config.queries_per_client as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .end_object()
        .key("phases")
        .begin_array();
    for (name, p, s) in [
        ("cold", &r.cold, &r.server_cold),
        ("repeat", &r.repeat, &r.server_repeat),
    ] {
        w.begin_object()
            .field_str("name", name)
            .field_uint("requests", p.requests as u64)
            .field_uint("errors", p.errors as u64)
            .field_float("throughput_rps", round3(p.throughput_rps))
            .key("client")
            .begin_object()
            .field_float("p50_ms", round3(p.p50_ms))
            .field_float("p99_ms", round3(p.p99_ms))
            .end_object()
            .key("server")
            .begin_object()
            .field_uint("requests", s.requests)
            .field_float("p50_ms", round3(s.p50_ms))
            .field_float("p99_ms", round3(s.p99_ms))
            .end_object()
            .end_object();
    }
    w.end_array()
        .field_bool("profile_ok", r.profile_ok)
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

/// Flight-recorder harness knobs (`mpds-load --flight`, `BENCH_pr10.json`).
/// This harness is self-contained: it binds two in-process servers on
/// ephemeral loopback ports — one with the flight recorder enabled, one
/// with it disabled — and drives the identical workload against both, so
/// the enabled/disabled throughput ratio is a same-run, same-machine
/// measurement.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Queries per client per phase (cold and repeat each issue this many).
    pub queries_per_client: usize,
    /// Worker threads per server.
    pub server_threads: usize,
    /// Dataset queried.
    pub dataset: String,
    /// Worlds per query.
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            clients: 8,
            queries_per_client: 16,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 64,
            k: 3,
        }
    }
}

/// One server's half of the flight harness (enabled or disabled recorder).
#[derive(Debug, Clone)]
pub struct FlightSide {
    /// Cold phase — distinct seeds, every request computes.
    pub cold: PhaseStats,
    /// Repeat phase — one identical query, served from cache after the
    /// first computation.
    pub repeat: PhaseStats,
    /// Total requests over total wall clock across both phases.
    pub overall_rps: f64,
}

/// Full flight-recorder harness outcome (`BENCH_pr10.json`).
#[derive(Debug, Clone)]
pub struct FlightReport {
    /// Configuration echo.
    pub config: FlightConfig,
    /// The flight-recorder-enabled server's phases.
    pub enabled: FlightSide,
    /// The flight-recorder-disabled server's phases.
    pub disabled: FlightSide,
    /// `enabled.overall_rps / disabled.overall_rps` — the overhead gate.
    /// `--check` demands at least [`OVERHEAD_RATIO_FLOOR`].
    pub overhead_ratio: f64,
    /// Whether `GET /debug/requests` showed its own trace id in flight (the
    /// debug request registers before it routes, so it must observe itself).
    pub debug_requests_ok: bool,
    /// Records retained in the slow-query ring after the load (the harness
    /// runs the enabled server with a zero slow threshold, so every query
    /// must have been promoted).
    pub debug_slow_len: u64,
    /// The histogram exemplar trace id (16 hex digits) that resolved via
    /// `GET /debug/trace/<id>`; empty when none resolved.
    pub exemplar_trace: String,
    /// Whether an exemplar from the highest occupied `/metrics` latency
    /// bucket resolved to a full per-stage breakdown.
    pub exemplar_resolved: bool,
    /// Hard failures: non-2xx responses, a debug endpoint not honoring its
    /// contract, an unresolvable exemplar, or overhead past the gate. Empty
    /// means `--check` holds.
    pub violations: Vec<String>,
}

/// Minimum allowed `enabled/disabled` throughput ratio: the flight recorder
/// may cost at most 5% under the harness workload.
pub const OVERHEAD_RATIO_FLOOR: f64 = 0.95;

/// Binds one in-process server over the builtin datasets for the flight
/// harness. `slow_ms = 0` on both sides keeps the workload symmetric (the
/// stderr slow echo fires identically) while guaranteeing the enabled
/// side's slow ring actually exercises promotion.
fn bind_flight_server(cfg: &FlightConfig, flight: bool) -> std::io::Result<crate::Server> {
    let engine = Arc::new(crate::QueryEngine::new(
        crate::GraphRegistry::with_builtins(),
        &crate::EngineConfig::default(),
    ));
    let server_cfg = crate::ServerConfig {
        threads: cfg.server_threads,
        slow_ms: Some(0),
        flight,
        ..crate::ServerConfig::default()
    };
    crate::Server::bind("127.0.0.1:0", engine, &server_cfg)
}

/// Runs both measured phases against `addr` and returns the side summary.
fn run_flight_side(cfg: &FlightConfig, addr: SocketAddr) -> FlightSide {
    let per_client = cfg.queries_per_client.max(1);
    let base = format!(
        "/query?dataset={}&theta={}&k={}",
        cfg.dataset, cfg.theta, cfg.k
    );
    let phase_cfg = HarnessConfig {
        addr,
        clients: cfg.clients,
        requests_per_client: per_client,
        server_threads: cfg.server_threads,
        dataset: cfg.dataset.clone(),
        theta: cfg.theta,
        k: cfg.k,
    };
    // Untimed warmup so neither side pays one-time costs (lazy estimator
    // paths, allocator growth) inside its measured window.
    let _ = run_phase(&phase_cfg, 1, |c, _| format!("{base}&seed={}", 900_000 + c));
    let (cold_ex, cold_elapsed) = run_phase(&phase_cfg, per_client, |c, i| {
        format!("{base}&seed={}", 100_000 + (c * per_client + i) as u64)
    });
    let (repeat_ex, repeat_elapsed) =
        run_phase(&phase_cfg, per_client, |_, _| format!("{base}&seed=7777"));
    let total = (cold_ex.len() + repeat_ex.len()) as f64;
    let elapsed = (cold_elapsed + repeat_elapsed).as_secs_f64().max(1e-9);
    FlightSide {
        cold: phase_stats(&cold_ex, cold_elapsed),
        repeat: phase_stats(&repeat_ex, repeat_elapsed),
        overall_rps: total / elapsed,
    }
}

/// Runs the flight-recorder harness: two in-process servers (recorder
/// enabled vs disabled), the same cold/repeat workload against both, and
/// three end-to-end introspection checks against the enabled one:
///
/// * `GET /debug/requests` must list its own trace id as in flight (the
///   request registers with the flight recorder before routing, so the
///   snapshot it renders always contains itself — a deterministic "live
///   requests are visible" probe);
/// * `GET /debug/slow` must be non-empty — the harness runs with a zero
///   slow threshold, so every query is promoted into the slow ring;
/// * an exemplar trace id scraped off the highest occupied bucket of the
///   Prometheus `/query` latency histogram must resolve through
///   `GET /debug/trace/<id>` to a completed record with a non-empty
///   per-stage breakdown.
///
/// The `--check` gate additionally demands zero non-2xx responses on both
/// sides and an enabled/disabled overall-throughput ratio of at least
/// [`OVERHEAD_RATIO_FLOOR`].
pub fn run_flight(cfg: &FlightConfig) -> FlightReport {
    let mut violations = Vec::new();

    let mut enabled_server = match bind_flight_server(cfg, true) {
        Ok(s) => s,
        Err(e) => {
            return flight_failure(cfg, format!("bind flight-enabled server: {e}"));
        }
    };
    let enabled_addr = enabled_server.local_addr();
    let enabled = run_flight_side(cfg, enabled_addr);

    // Introspection probes run against the enabled server while its rings
    // still hold the measured workload (the repeat phase is the newest
    // traffic, so its records cannot have been evicted yet).
    let timeout = Duration::from_secs(30);
    let mut debug_requests_ok = false;
    match http_get(enabled_addr, "/debug/requests", timeout) {
        Ok(e) if e.status == 200 => match &e.trace_id {
            Some(id) if String::from_utf8_lossy(&e.body).contains(id.as_str()) => {
                debug_requests_ok = true;
            }
            Some(id) => violations.push(format!(
                "/debug/requests did not list its own in-flight trace {id}"
            )),
            None => violations.push("/debug/requests response carried no X-Trace-Id".to_string()),
        },
        Ok(e) => violations.push(format!("/debug/requests: status {}", e.status)),
        Err(e) => violations.push(format!("/debug/requests: {e}")),
    }

    let mut debug_slow_len = 0u64;
    match http_get(enabled_addr, "/debug/slow", timeout) {
        Ok(e) if e.status == 200 => {
            debug_slow_len = String::from_utf8_lossy(&e.body)
                .matches("\"trace_id\"")
                .count() as u64;
            if debug_slow_len == 0 {
                violations
                    .push("/debug/slow is empty although the slow threshold was zero".to_string());
            }
        }
        Ok(e) => violations.push(format!("/debug/slow: status {}", e.status)),
        Err(e) => violations.push(format!("/debug/slow: {e}")),
    }

    let (exemplar_trace, exemplar_resolved) =
        resolve_exemplar(enabled_addr, timeout, &mut violations);

    enabled_server.shutdown();
    drop(enabled_server);

    let mut disabled_server = match bind_flight_server(cfg, false) {
        Ok(s) => s,
        Err(e) => {
            return flight_failure(cfg, format!("bind flight-disabled server: {e}"));
        }
    };
    let disabled = run_flight_side(cfg, disabled_server.local_addr());
    disabled_server.shutdown();

    for (side, stats) in [("enabled", &enabled), ("disabled", &disabled)] {
        for (phase, p) in [("cold", &stats.cold), ("repeat", &stats.repeat)] {
            if p.errors > 0 {
                violations.push(format!(
                    "{side} {phase} phase: {} non-2xx responses",
                    p.errors
                ));
            }
        }
    }
    let overhead_ratio = enabled.overall_rps / disabled.overall_rps.max(1e-9);
    if overhead_ratio < OVERHEAD_RATIO_FLOOR {
        violations.push(format!(
            "flight-enabled throughput is {overhead_ratio:.3}x the disabled server's \
             (floor {OVERHEAD_RATIO_FLOOR})"
        ));
    }

    FlightReport {
        config: cfg.clone(),
        enabled,
        disabled,
        overhead_ratio,
        debug_requests_ok,
        debug_slow_len,
        exemplar_trace,
        exemplar_resolved,
        violations,
    }
}

/// Scrapes the enabled server's Prometheus text, walks the `/query` 2xx
/// latency exemplars from the highest occupied bucket downward, and returns
/// the first trace id that `GET /debug/trace/<id>` resolves to a record
/// with a non-empty stage breakdown. Higher buckets first: the slowest
/// requests are exactly the ones the flight recorder exists to explain.
fn resolve_exemplar(
    addr: SocketAddr,
    timeout: Duration,
    violations: &mut Vec<String>,
) -> (String, bool) {
    let text = match http_get_accept(addr, "/metrics", "text/plain", timeout) {
        Ok(e) if (200..300).contains(&e.status) => String::from_utf8_lossy(&e.body).into_owned(),
        Ok(e) => {
            violations.push(format!("/metrics scrape: status {}", e.status));
            return (String::new(), false);
        }
        Err(e) => {
            violations.push(format!("/metrics scrape: {e}"));
            return (String::new(), false);
        }
    };
    let mut exemplars = scrape::prom_exemplars(
        &text,
        "mpds_http_request_duration_microseconds",
        &[("endpoint", "query"), ("status", "2xx")],
    );
    if exemplars.is_empty() {
        violations.push("no exemplars on the /query latency histogram".to_string());
        return (String::new(), false);
    }
    exemplars.sort_by_key(|(bucket, _)| std::cmp::Reverse(*bucket));
    for (_, ex) in &exemplars {
        let Some(id) = ex.trace_id() else { continue };
        let hex = mpds_obs::flight::format_trace_id(id);
        match http_get(addr, &format!("/debug/trace/{hex}"), timeout) {
            Ok(e) if e.status == 200 => {
                let body = String::from_utf8_lossy(&e.body);
                if body.contains("\"stages\":{\"") {
                    return (hex, true);
                }
            }
            _ => {}
        }
    }
    violations.push(format!(
        "none of the {} histogram exemplars resolved via /debug/trace/<id> to a \
         stage breakdown",
        exemplars.len()
    ));
    (String::new(), false)
}

/// A report for a harness run that could not even start (bind failure):
/// zeroed stats plus the one fatal violation, so `--check` still fails
/// loudly with a written report.
fn flight_failure(cfg: &FlightConfig, violation: String) -> FlightReport {
    let empty = PhaseStats {
        requests: 0,
        errors: 0,
        throughput_rps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    let side = FlightSide {
        cold: empty.clone(),
        repeat: empty,
        overall_rps: 0.0,
    };
    FlightReport {
        config: cfg.clone(),
        enabled: side.clone(),
        disabled: side,
        overhead_ratio: 0.0,
        debug_requests_ok: false,
        debug_slow_len: 0,
        exemplar_trace: String::new(),
        exemplar_resolved: false,
        violations: vec![violation],
    }
}

/// Serializes a flight report in the `BENCH_pr10.json` schema.
pub fn render_flight_report(r: &FlightReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/flight_harness/v1")
        .field_str(
            "note",
            "flight-recorder harness; two in-process servers run the same \
             workload with the recorder enabled and disabled, so the checked \
             invariants are same-run: zero non-2xx on both sides, an \
             enabled/disabled throughput ratio of at least 0.95, \
             /debug/requests observing its own in-flight trace, a populated \
             slow-query ring under a zero threshold, and a /metrics histogram \
             exemplar resolving through /debug/trace/<id> to a per-stage \
             breakdown",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("clients", r.config.clients as u64)
        .field_uint("queries_per_client", r.config.queries_per_client as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .end_object()
        .key("servers")
        .begin_array();
    for (name, side) in [("enabled", &r.enabled), ("disabled", &r.disabled)] {
        w.begin_object()
            .field_str("flight", name)
            .field_float("overall_rps", round3(side.overall_rps))
            .key("phases")
            .begin_array();
        for (phase, p) in [("cold", &side.cold), ("repeat", &side.repeat)] {
            w.begin_object()
                .field_str("name", phase)
                .field_uint("requests", p.requests as u64)
                .field_uint("errors", p.errors as u64)
                .field_float("throughput_rps", round3(p.throughput_rps))
                .field_float("p50_ms", round3(p.p50_ms))
                .field_float("p99_ms", round3(p.p99_ms))
                .end_object();
        }
        w.end_array().end_object();
    }
    w.end_array()
        .field_float("overhead_ratio", round3(r.overhead_ratio))
        .field_bool("debug_requests_ok", r.debug_requests_ok)
        .field_uint("debug_slow_len", r.debug_slow_len)
        .field_str("exemplar_trace", &r.exemplar_trace)
        .field_bool("exemplar_resolved", r.exemplar_resolved)
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

/// Kill-recover harness knobs (`mpds-load --kill-recover`,
/// `BENCH_pr9.json`). Unlike the other harnesses this one owns the server
/// process: it spawns `server_bin serve --mutable --data-dir data_dir`,
/// SIGKILLs it mid-churn, and restarts it from the same directory.
#[derive(Debug, Clone)]
pub struct KillRecoverConfig {
    /// Path to the `mpds-cli` binary to spawn.
    pub server_bin: String,
    /// `--data-dir` shared by both server runs (the durability surface).
    pub data_dir: String,
    /// Listen address for both runs (also where the harness connects).
    pub bind: String,
    /// Resolved form of `bind`.
    pub addr: SocketAddr,
    /// Churn rounds applied before the SIGKILL.
    pub rounds_before_kill: usize,
    /// Churn rounds applied after the restart (generation continuity).
    pub rounds_after_restart: usize,
    /// Edges inserted per round (see [`churn_batch`]).
    pub batch_edges: usize,
    /// Worker threads passed to the spawned server.
    pub server_threads: usize,
    /// Dataset updated and queried (must be a builtin of the spawned CLI).
    pub dataset: String,
    /// Worlds per query.
    pub theta: usize,
    /// Result count per query.
    pub k: usize,
}

impl Default for KillRecoverConfig {
    fn default() -> Self {
        KillRecoverConfig {
            server_bin: "target/release/mpds-cli".to_string(),
            data_dir: "target/mpds-data".to_string(),
            bind: "127.0.0.1:7878".to_string(),
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            rounds_before_kill: 6,
            rounds_after_restart: 4,
            batch_edges: 16,
            server_threads: 4,
            dataset: "karate".to_string(),
            theta: 64,
            k: 3,
        }
    }
}

/// Full kill-recover outcome (`BENCH_pr9.json`).
#[derive(Debug, Clone)]
pub struct KillRecoverReport {
    /// Configuration echo.
    pub config: KillRecoverConfig,
    /// Update batches applied before the SIGKILL.
    pub updates_before: usize,
    /// Update batches applied after the restart.
    pub updates_after: usize,
    /// Update responses with a non-2xx status, both runs.
    pub update_errors: usize,
    /// Median update latency across both runs, milliseconds.
    pub update_p50_ms: f64,
    /// Median canonical-read latency across both runs, milliseconds.
    pub read_p50_ms: f64,
    /// Generation acknowledged by the last pre-kill update.
    pub pre_kill_generation: u64,
    /// Generation the restarted server reported for the dataset.
    pub recovered_generation: u64,
    /// Wall time from respawn to a healthy `/healthz`, milliseconds
    /// (includes checkpoint load + WAL replay).
    pub recovery_wall_ms: f64,
    /// WAL records the server reported replaying (`/datasets`).
    pub replayed_records: u64,
    /// Server-side recovery time for the dataset (`/datasets`), ms.
    pub server_recovery_ms: u64,
    /// Whether the canonical read after recovery returned bytes identical
    /// to the read taken at the same generation before the kill.
    pub reads_identical: bool,
    /// Whether post-restart update generations continued exactly from the
    /// pre-kill generation (first ack = pre_kill + 1, strictly monotone).
    pub generations_continuous: bool,
    /// Hard failures. Empty means the `--check` contract holds.
    pub violations: Vec<String>,
}

/// Spawns `server_bin serve --mutable --data-dir ...` with output discarded.
fn spawn_kill_recover_server(cfg: &KillRecoverConfig) -> std::io::Result<std::process::Child> {
    std::process::Command::new(&cfg.server_bin)
        .args([
            "serve",
            "--bind",
            &cfg.bind,
            "--threads",
            &cfg.server_threads.to_string(),
            "--mutable",
            "--data-dir",
            &cfg.data_dir,
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
}

/// Reads the dataset's row out of `/datasets` (generation, replayed
/// records, server-side recovery time). Zeros on any scrape failure, with
/// the failure recorded in `violations`.
fn scrape_dataset_row(
    addr: SocketAddr,
    dataset: &str,
    violations: &mut Vec<String>,
) -> (u64, u64, u64) {
    let listing = match http_get(addr, "/datasets", Duration::from_secs(10)) {
        Ok(e) if (200..300).contains(&e.status) => String::from_utf8_lossy(&e.body).into_owned(),
        Ok(e) => {
            violations.push(format!("/datasets scrape: status {}", e.status));
            return (0, 0, 0);
        }
        Err(e) => {
            violations.push(format!("/datasets scrape: {e}"));
            return (0, 0, 0);
        }
    };
    let doc = match crate::json::JsonValue::parse(&listing) {
        Ok(d) => d,
        Err(e) => {
            violations.push(format!("/datasets parse: {e}"));
            return (0, 0, 0);
        }
    };
    let rows = doc
        .get("datasets")
        .ok()
        .flatten()
        .and_then(|v| v.as_array("datasets").ok());
    let Some(rows) = rows else {
        violations.push("/datasets has no datasets array".to_string());
        return (0, 0, 0);
    };
    for row in rows {
        let name = row
            .get("name")
            .ok()
            .flatten()
            .and_then(|v| v.as_str("name").ok());
        if name != Some(dataset) {
            continue;
        }
        let uint = |key: &str| {
            row.get(key)
                .ok()
                .flatten()
                .and_then(|v| v.as_usize(key).ok())
                .unwrap_or(0) as u64
        };
        return (
            uint("generation"),
            uint("replayed_records"),
            uint("recovery_ms"),
        );
    }
    violations.push(format!("/datasets has no row for dataset {dataset:?}"));
    (0, 0, 0)
}

/// Runs the kill-recover harness: spawn → churn → SIGKILL → restart from
/// the same `--data-dir` → verify generation continuity and byte-identical
/// reads → churn on.
pub fn run_kill_recover(cfg: &KillRecoverConfig) -> KillRecoverReport {
    let mut violations = Vec::new();
    let timeout = Duration::from_secs(120);
    let query_path = format!(
        "/query?dataset={}&theta={}&k={}&seed=42",
        cfg.dataset, cfg.theta, cfg.k
    );
    let update_path = format!("/update?dataset={}", cfg.dataset);
    let mut update_latencies_ms: Vec<f64> = Vec::new();
    let mut read_latencies_ms: Vec<f64> = Vec::new();
    let mut update_errors = 0usize;
    let mut generations: Vec<u64> = Vec::new();

    let empty_report = |violations: Vec<String>| KillRecoverReport {
        config: cfg.clone(),
        updates_before: 0,
        updates_after: 0,
        update_errors: 0,
        update_p50_ms: 0.0,
        read_p50_ms: 0.0,
        pre_kill_generation: 0,
        recovered_generation: 0,
        recovery_wall_ms: 0.0,
        replayed_records: 0,
        server_recovery_ms: 0,
        reads_identical: false,
        generations_continuous: false,
        violations,
    };

    // Run 1 — spawn the server fresh on an empty (or reused) data dir.
    let mut child = match spawn_kill_recover_server(cfg) {
        Ok(c) => c,
        Err(e) => {
            violations.push(format!("spawn {}: {e}", cfg.server_bin));
            return empty_report(violations);
        }
    };
    if let Err(e) = wait_until_healthy(cfg.addr, Duration::from_secs(30)) {
        violations.push(format!("run 1: {e}"));
        let _ = child.kill();
        let _ = child.wait();
        return empty_report(violations);
    }

    let apply_round = |round: usize,
                       update_latencies_ms: &mut Vec<f64>,
                       update_errors: &mut usize,
                       generations: &mut Vec<u64>,
                       violations: &mut Vec<String>| {
        let batch = churn_batch(round, cfg.batch_edges);
        match http_post(cfg.addr, &update_path, batch.as_bytes(), timeout) {
            Ok(e) => {
                update_latencies_ms.push(e.latency.as_secs_f64() * 1e3);
                if (200..300).contains(&e.status) {
                    let body = String::from_utf8_lossy(&e.body).into_owned();
                    match scrape::json_uint(&body, "generation") {
                        Some(g) => generations.push(g),
                        None => violations
                            .push(format!("round {round}: no generation in update response")),
                    }
                } else {
                    *update_errors += 1;
                    violations.push(format!(
                        "round {round}: update answered {}: {}",
                        e.status,
                        String::from_utf8_lossy(&e.body)
                    ));
                }
            }
            Err(e) => {
                *update_errors += 1;
                violations.push(format!("round {round}: update failed: {e}"));
            }
        }
    };

    for round in 0..cfg.rounds_before_kill {
        apply_round(
            round,
            &mut update_latencies_ms,
            &mut update_errors,
            &mut generations,
            &mut violations,
        );
    }
    let pre_kill_generation = generations.last().copied().unwrap_or(0);

    // Canonical read at the pre-crash generation — the byte-identity
    // baseline the recovered server must reproduce.
    let pre_kill_body = match http_get(cfg.addr, &query_path, timeout) {
        Ok(e) if (200..300).contains(&e.status) => {
            read_latencies_ms.push(e.latency.as_secs_f64() * 1e3);
            Some(e.body)
        }
        Ok(e) => {
            violations.push(format!("pre-kill read: status {}", e.status));
            None
        }
        Err(e) => {
            violations.push(format!("pre-kill read: {e}"));
            None
        }
    };

    // SIGKILL — no flush, no graceful shutdown. Every acknowledged batch
    // must already be durable.
    let _ = child.kill();
    let _ = child.wait();

    // Run 2 — restart from the same data dir; recovery wall time is
    // respawn → healthy (checkpoint load + WAL replay happen before bind).
    let restart_started = Instant::now();
    let mut child = match spawn_kill_recover_server(cfg) {
        Ok(c) => c,
        Err(e) => {
            violations.push(format!("respawn {}: {e}", cfg.server_bin));
            return empty_report(violations);
        }
    };
    if let Err(e) = wait_until_healthy(cfg.addr, Duration::from_secs(60)) {
        violations.push(format!("run 2: {e}"));
        let _ = child.kill();
        let _ = child.wait();
        return empty_report(violations);
    }
    let recovery_wall_ms = restart_started.elapsed().as_secs_f64() * 1e3;

    let (recovered_generation, replayed_records, server_recovery_ms) =
        scrape_dataset_row(cfg.addr, &cfg.dataset, &mut violations);
    if recovered_generation != pre_kill_generation {
        violations.push(format!(
            "recovered generation {recovered_generation} != pre-kill generation {pre_kill_generation}"
        ));
    }

    // The canonical read must be byte-identical across the crash: same
    // generation, same graph, same deterministic estimator output.
    let reads_identical = match (&pre_kill_body, http_get(cfg.addr, &query_path, timeout)) {
        (Some(before), Ok(e)) if (200..300).contains(&e.status) => {
            read_latencies_ms.push(e.latency.as_secs_f64() * 1e3);
            if &e.body == before {
                true
            } else {
                violations.push(format!(
                    "post-recovery read differs from pre-kill read ({} vs {} bytes)",
                    e.body.len(),
                    before.len()
                ));
                false
            }
        }
        (_, Ok(e)) => {
            violations.push(format!("post-recovery read: status {}", e.status));
            false
        }
        (_, Err(e)) => {
            violations.push(format!("post-recovery read: {e}"));
            false
        }
    };

    // Run 2 churn: generations must continue exactly where run 1 stopped.
    for round in cfg.rounds_before_kill..cfg.rounds_before_kill + cfg.rounds_after_restart {
        apply_round(
            round,
            &mut update_latencies_ms,
            &mut update_errors,
            &mut generations,
            &mut violations,
        );
    }
    let _ = child.kill();
    let _ = child.wait();

    let expected: Vec<u64> =
        (1..=(cfg.rounds_before_kill + cfg.rounds_after_restart) as u64).collect();
    let generations_continuous = generations == expected;
    if !generations_continuous {
        violations.push(format!(
            "generations not continuous across the crash: {generations:?} (expected {expected:?})"
        ));
    }

    update_latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    read_latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    KillRecoverReport {
        config: cfg.clone(),
        updates_before: cfg.rounds_before_kill,
        updates_after: cfg.rounds_after_restart,
        update_errors,
        update_p50_ms: percentile(&update_latencies_ms, 0.50),
        read_p50_ms: percentile(&read_latencies_ms, 0.50),
        pre_kill_generation,
        recovered_generation,
        recovery_wall_ms,
        replayed_records,
        server_recovery_ms,
        reads_identical,
        generations_continuous,
        violations,
    }
}

/// Serializes a kill-recover report in the `BENCH_pr9.json` schema.
pub fn render_kill_recover_report(r: &KillRecoverReport) -> String {
    use crate::json::JsonWriter;
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("schema", "mpds-service/kill_recover_harness/v1")
        .field_str(
            "note",
            "kill-recover durability harness; latencies are machine-dependent, the \
             checked invariants are zero non-2xx, the restarted server recovering \
             the exact pre-SIGKILL generation, a byte-identical canonical read \
             across the crash, and post-restart generations continuing without a \
             gap",
        )
        .key("config")
        .begin_object()
        .field_str("dataset", &r.config.dataset)
        .field_uint("rounds_before_kill", r.config.rounds_before_kill as u64)
        .field_uint("rounds_after_restart", r.config.rounds_after_restart as u64)
        .field_uint("batch_edges", r.config.batch_edges as u64)
        .field_uint("server_threads", r.config.server_threads as u64)
        .field_uint("theta", r.config.theta as u64)
        .field_uint("k", r.config.k as u64)
        .end_object()
        .key("updates")
        .begin_object()
        .field_uint("before_kill", r.updates_before as u64)
        .field_uint("after_restart", r.updates_after as u64)
        .field_uint("errors", r.update_errors as u64)
        .field_float("p50_ms", round3(r.update_p50_ms))
        .end_object()
        .field_float("read_p50_ms", round3(r.read_p50_ms))
        .key("recovery")
        .begin_object()
        .field_uint("pre_kill_generation", r.pre_kill_generation)
        .field_uint("recovered_generation", r.recovered_generation)
        .field_float("wall_ms", round3(r.recovery_wall_ms))
        .field_uint("replayed_records", r.replayed_records)
        .field_uint("server_recovery_ms", r.server_recovery_ms)
        .end_object()
        .field_bool("reads_identical", r.reads_identical)
        .field_bool("generations_continuous", r.generations_continuous)
        .key("violations")
        .begin_array();
    for v in &r.violations {
        w.string(v);
    }
    w.end_array().end_object();
    let mut s = w.finish();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_recover_report_renders_with_schema() {
        let r = KillRecoverReport {
            config: KillRecoverConfig::default(),
            updates_before: 6,
            updates_after: 4,
            update_errors: 0,
            update_p50_ms: 2.5,
            read_p50_ms: 1.25,
            pre_kill_generation: 6,
            recovered_generation: 6,
            recovery_wall_ms: 321.5,
            replayed_records: 6,
            server_recovery_ms: 12,
            reads_identical: true,
            generations_continuous: true,
            violations: vec![],
        };
        let s = render_kill_recover_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/kill_recover_harness/v1\""));
        assert!(s.contains("\"pre_kill_generation\":6"));
        assert!(s.contains("\"recovered_generation\":6"));
        assert!(s.contains("\"replayed_records\":6"));
        assert!(s.contains("\"reads_identical\":true"));
        assert!(s.contains("\"generations_continuous\":true"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn anytime_report_renders_with_schema() {
        let stats = PhaseStats {
            requests: 32,
            errors: 0,
            throughput_rps: 10.0,
            p50_ms: 100.0,
            p99_ms: 200.0,
        };
        let r = AnytimeReport {
            config: AnytimeConfig::default(),
            fixed: stats.clone(),
            stable: PhaseStats {
                p50_ms: 25.0,
                ..stats.clone()
            },
            budget: stats,
            stable_speedup: 4.0,
            budget_truncated: 30,
            budget_504s: 0,
            refined_followups: 32,
            refined_hits: 32,
            refined_wait_p50_ms: 180.5,
            violations: vec![],
        };
        let s = render_anytime_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/anytime_harness/v1\""));
        assert!(s.contains("\"stable_speedup\":4.0"));
        assert!(s.contains("\"budget_504s\":0"));
        assert!(s.contains("\"refined\":{\"followups\":32,\"hits\":32"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn obs_report_renders_with_schema() {
        let stats = PhaseStats {
            requests: 32,
            errors: 0,
            throughput_rps: 10.0,
            p50_ms: 1.5,
            p99_ms: 9.25,
        };
        let server = ServerSide {
            requests: 32,
            p50_ms: 1.25,
            p99_ms: 8.0,
        };
        let r = ObsReport {
            config: ObsConfig::default(),
            cold: stats.clone(),
            repeat: stats,
            server_cold: server,
            server_repeat: server,
            profile_ok: true,
            violations: vec![],
        };
        let s = render_obs_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/obs_harness/v1\""));
        assert!(s.contains("\"client\":{\"p50_ms\":1.5,\"p99_ms\":9.25}"));
        assert!(s.contains("\"server\":{\"requests\":32,\"p50_ms\":1.25,\"p99_ms\":8.0}"));
        assert!(s.contains("\"profile_ok\":true"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn flight_report_renders_with_schema() {
        let stats = PhaseStats {
            requests: 128,
            errors: 0,
            throughput_rps: 200.0,
            p50_ms: 1.5,
            p99_ms: 9.25,
        };
        let side = FlightSide {
            cold: stats.clone(),
            repeat: stats,
            overall_rps: 250.125,
        };
        let r = FlightReport {
            config: FlightConfig::default(),
            enabled: side.clone(),
            disabled: side,
            overhead_ratio: 0.987,
            debug_requests_ok: true,
            debug_slow_len: 64,
            exemplar_trace: "00000000000000ab".to_string(),
            exemplar_resolved: true,
            violations: vec![],
        };
        let s = render_flight_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/flight_harness/v1\""));
        assert!(s.contains("\"flight\":\"enabled\""));
        assert!(s.contains("\"flight\":\"disabled\""));
        assert!(s.contains("\"overall_rps\":250.125"));
        assert!(s.contains("\"overhead_ratio\":0.987"));
        assert!(s.contains("\"debug_requests_ok\":true"));
        assert!(s.contains("\"debug_slow_len\":64"));
        assert!(s.contains("\"exemplar_trace\":\"00000000000000ab\""));
        assert!(s.contains("\"exemplar_resolved\":true"));
        assert!(s.ends_with("}\n"));
        crate::json::JsonValue::parse(&s).expect("flight report parses");
    }

    #[test]
    fn counter_scan_and_percentiles() {
        // The counter scans now ride the shared mpds-obs parser; pin the
        // harness-visible behavior here too.
        let body = "{\"cache\":{\"hits\":12,\"misses\":3},\"coalesced\":4}";
        assert_eq!(scrape::json_uint(body, "hits"), Some(12));
        assert_eq!(scrape::json_uint(body, "misses"), Some(3));
        assert_eq!(scrape::json_uint(body, "coalesced"), Some(4));
        assert_eq!(scrape::json_uint(body, "absent"), None);

        let ms = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&ms, 0.5), 3.0);
        assert_eq!(percentile(&ms, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn churn_batches_are_deterministic_and_disjoint() {
        let b0 = churn_batch(0, 4);
        assert_eq!(b0, churn_batch(0, 4));
        // Round 0: inserts only.
        assert_eq!(b0.lines().count(), 4);
        assert!(!b0.contains(" -"));
        // Round 1: 4 inserts + 2 re-weights + 2 deletes of round 0's pairs.
        let b1 = churn_batch(1, 4);
        assert_eq!(b1.lines().count(), 8);
        assert_eq!(b1.matches(" -").count(), 2);
        assert_eq!(b1.matches(" 0.9").count(), 2);
        // No line may repeat an edge key within one batch (the server
        // rejects duplicates): all first-two-token pairs distinct.
        let keys: Vec<&str> = b1.lines().map(|l| l.rsplit_once(' ').unwrap().0).collect();
        let unique: std::collections::HashSet<&&str> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{b1}");
    }

    #[test]
    fn churn_report_renders_with_schema() {
        let r = ChurnReport {
            config: ChurnConfig::default(),
            reads: PhaseStats {
                requests: 10,
                errors: 0,
                throughput_rps: 50.0,
                p50_ms: 1.0,
                p99_ms: 2.0,
            },
            updates: 8,
            update_errors: 0,
            update_p50_ms: 3.5,
            update_p99_ms: 4.25,
            first_generation: 1,
            last_generation: 8,
            generations_monotone: true,
            post_update_hit_recovery: 1.0,
            violations: vec![],
        };
        let s = render_churn_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/churn_harness/v1\""));
        assert!(s.contains("\"generations_monotone\":true"));
        assert!(s.contains("\"post_update_hit_recovery\":1.0"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn batch_member_specs_are_distinct_cache_keys() {
        let specs: Vec<(&str, usize)> = (0..8).map(batch_member_spec).collect();
        let unique: std::collections::HashSet<&(&str, usize)> = specs.iter().collect();
        assert_eq!(unique.len(), specs.len(), "{specs:?}");
        assert!(specs.iter().any(|(a, _)| *a == "nds"));
        assert!(specs.iter().any(|(a, _)| *a == "mpds"));
    }

    #[test]
    fn batch_body_is_deterministic_and_parseable() {
        let cfg = BatchConfig {
            members: 3,
            ..Default::default()
        };
        let body = batch_body(&cfg, 7);
        assert_eq!(body, batch_body(&cfg, 7));
        assert!(body.starts_with("{\"dataset\":\"karate\",\"theta\":256,\"seed\":7,"));
        // The body must round-trip through the server's own parser.
        let doc = crate::json::JsonValue::parse(&body).unwrap();
        assert_eq!(
            doc.get("members")
                .unwrap()
                .unwrap()
                .as_array("m")
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn batch_report_renders_with_schema() {
        let stats = PhaseStats {
            requests: 32,
            errors: 0,
            throughput_rps: 10.0,
            p50_ms: 1.0,
            p99_ms: 2.0,
        };
        let r = BatchReport {
            config: BatchConfig::default(),
            standalone: stats.clone(),
            batch: stats,
            standalone_worlds_per_member: 256.0,
            batch_worlds_per_member: 32.0,
            amortization_ratio: 8.0,
            followup_hit_rate: 1.0,
            violations: vec![],
        };
        let s = render_batch_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/batch_harness/v1\""));
        assert!(s.contains("\"amortization_ratio\":8.0"));
        assert!(s.contains("\"followup_hit_rate\":1.0"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn report_renders_with_schema() {
        let cfg = HarnessConfig::default();
        let stats = PhaseStats {
            requests: 10,
            errors: 0,
            throughput_rps: 123.4567,
            p50_ms: 1.5,
            p99_ms: 9.25,
        };
        let r = HarnessReport {
            config: cfg,
            cold: stats.clone(),
            repeat: stats,
            repeat_cache_hit_rate: 0.99,
            violations: vec![],
        };
        let s = render_report(&r);
        assert!(s.contains("\"schema\":\"mpds-service/load_harness/v1\""));
        assert!(s.contains("\"throughput_rps\":123.457"));
        assert!(s.contains("\"repeat_cache_hit_rate\":0.99"));
        assert!(s.ends_with("}\n"));
    }
}
