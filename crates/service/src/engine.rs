//! Query engine: typed requests, deterministic responses, result caching,
//! and in-flight coalescing over the [`GraphRegistry`].
//!
//! The contract that makes serving these estimators worthwhile is
//! **determinism**: a query is fully described by
//! `(dataset, generation, algo, notion, θ, k, l_m, seed, heuristic,
//! threads)`, and two evaluations of the same key produce bytewise-identical
//! JSON. The engine exploits that twice — a sharded LRU keyed on the tuple
//! serves repeats from memory, and an in-flight table coalesces concurrent
//! identical queries so N simultaneous arrivals cost one computation, all N
//! receiving the same `Arc`'d bytes.
//!
//! The dataset **generation** entered the key with the dynamic-graph
//! subsystem: each request resolves the dataset's current snapshot first and
//! computes against exactly that snapshot, so an update never invalidates
//! anything — responses for old generations simply stop being requested and
//! age out of the LRU naturally, while in-flight queries keyed to an old
//! generation finish against the snapshot they resolved.

use crate::cache::{CacheStats, ShardedLru};
use crate::json::JsonWriter;
use crate::registry::{GraphRegistry, LoadedGraph};
use densest::DensityNotion;
use mpds::api::queryset::QuerySet;
use mpds::api::{ApiError, Exec, ProgressCounter, ProgressSink, Query, Run, Stop};
use mpds::control::{InterruptReason, RunControl};
use mpds::recompute::Recompute;
use mpds_obs::{Counter, Gauge, Histogram, Recorder, Stage, StageTotals};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ugraph::Pattern;

/// Which estimator a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Top-k most probable densest subgraphs (Algorithm 1).
    Mpds,
    /// Top-k nucleus densest subgraphs (Algorithm 5).
    Nds,
}

impl Algo {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Algo::Mpds => "mpds",
            Algo::Nds => "nds",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "mpds" => Ok(Algo::Mpds),
            "nds" => Ok(Algo::Nds),
            other => Err(format!("unknown algo {other:?} (expected mpds|nds)")),
        }
    }
}

/// Parses a density-notion name (`edge`, `Nclique`, `2star`, `3star`,
/// `c3star`, `diamond`) — the one grammar shared by the CLI `--density`
/// flag and the HTTP `notion` parameter.
pub fn parse_notion(s: &str) -> Result<DensityNotion, String> {
    match s {
        "edge" => Ok(DensityNotion::Edge),
        "2star" => Ok(DensityNotion::Pattern(Pattern::two_star())),
        "3star" => Ok(DensityNotion::Pattern(Pattern::three_star())),
        "c3star" => Ok(DensityNotion::Pattern(Pattern::c3_star())),
        "diamond" => Ok(DensityNotion::Pattern(Pattern::diamond())),
        other => {
            if let Some(h) = other.strip_suffix("clique") {
                let h: usize = h
                    .parse()
                    .map_err(|_| format!("bad clique size in {other:?}"))?;
                if !(2..=8).contains(&h) {
                    return Err(format!("clique size {h} outside 2..=8"));
                }
                Ok(DensityNotion::Clique(h))
            } else {
                Err(format!("unknown density {other:?}"))
            }
        }
    }
}

/// Stable-stop window used when a request says `stop=stable` without its
/// own `window`: wide enough that agreement is unlikely to be luck, small
/// enough to actually stop early on settled datasets.
pub const DEFAULT_STABLE_WINDOW: u32 = 32;

/// How a query decides it has sampled enough worlds — the service
/// transport of [`mpds::Stop`]. Response-affecting (a stable stop samples a
/// different world count), so it is part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StopSpec {
    /// Sample exactly θ worlds (the historical behavior, and the default).
    #[default]
    Fixed,
    /// Stop early once the top-k has been unchanged for `window`
    /// consecutive worlds, with θ as the hard cap (maps onto
    /// [`mpds::Stop::Stable`]). Serial only.
    Stable {
        /// Consecutive unchanged-top-k worlds required before stopping.
        window: u32,
    },
}

/// A fully-parameterized query. Everything that affects the response bytes
/// is in here (and in the dataset's content, which is fixed per name);
/// `timeout_ms` and `budget_ms` only affect *whether / how far* the query
/// runs this time, so they are not part of the cache key — which is what
/// lets background refinement republish a converged answer under the same
/// key a budget-truncated response was cached under.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Registry dataset name.
    pub dataset: String,
    /// Estimator to run.
    pub algo: Algo,
    /// Density notion name (see [`parse_notion`]).
    pub notion: String,
    /// Number of sampled possible worlds θ.
    pub theta: usize,
    /// Result count.
    pub k: usize,
    /// Minimum NDS size `l_m` (ignored by MPDS).
    pub lm: usize,
    /// Sampler seed — equal seeds mean equal worlds mean equal bytes.
    pub seed: u64,
    /// Use the §III-C heuristic per world.
    pub heuristic: bool,
    /// Worker threads for this query's sampling loop (1 = serial, the
    /// default). Parallel runs draw per-worker sub-streams of `seed`, so
    /// the thread count is response-affecting and part of the cache key.
    pub threads: usize,
    /// Stop policy (see [`StopSpec`]).
    pub stop: StopSpec,
    /// Per-request *hard* deadline, if any: exceeding it aborts the query
    /// (HTTP 504).
    pub timeout_ms: Option<u64>,
    /// Per-request *graceful* time budget, if any: when it runs out the
    /// query returns its best estimate so far (HTTP 200 with
    /// `stop_reason:"budget"`) and the engine refines it to convergence in
    /// the background.
    pub budget_ms: Option<u64>,
    /// Attach per-stage timings (`?profile=1`): the engine times each
    /// pipeline stage for this request and the serving layer appends a
    /// `profile` block to the response. Like `timeout_ms`/`budget_ms` this
    /// only describes *this evaluation*, not the answer, so it is excluded
    /// from the cache key — and the profile block is spliced outside the
    /// cached bytes, which stay identical for profiled and unprofiled
    /// requests alike.
    pub profile: bool,
}

impl QueryRequest {
    /// Paper-default parameters for `dataset`.
    pub fn new(dataset: &str) -> Self {
        QueryRequest {
            dataset: dataset.to_string(),
            algo: Algo::Mpds,
            notion: "edge".to_string(),
            theta: 320,
            k: 5,
            lm: 2,
            seed: 42,
            heuristic: false,
            threads: 1,
            stop: StopSpec::Fixed,
            timeout_ms: None,
            budget_ms: None,
            profile: false,
        }
    }

    /// Validates bounds and parses the notion. Returns the parsed notion so
    /// callers validate and parse in one step.
    pub fn validate(&self) -> Result<DensityNotion, String> {
        if self.theta == 0 || self.theta > 1_000_000 {
            return Err(format!("theta {} outside 1..=1000000", self.theta));
        }
        if self.k == 0 || self.k > 10_000 {
            return Err(format!("k {} outside 1..=10000", self.k));
        }
        if self.lm == 0 {
            return Err("lm must be at least 1".to_string());
        }
        if self.threads == 0 || self.threads > 64 {
            return Err(format!("threads {} outside 1..=64", self.threads));
        }
        if self.threads > self.theta {
            return Err(format!(
                "threads {} exceeds theta {}",
                self.threads, self.theta
            ));
        }
        if let StopSpec::Stable { window } = self.stop {
            if window == 0 || window > 10_000 {
                return Err(format!("window {window} outside 1..=10000"));
            }
            if window as usize > self.theta {
                return Err(format!("window {window} exceeds theta {}", self.theta));
            }
            if self.threads > 1 {
                return Err(
                    "stop=stable watches one ordered world stream; drop threads".to_string()
                );
            }
        }
        parse_notion(&self.notion)
    }

    /// The cache key: every response-affecting field, including the
    /// `generation` of the dataset snapshot the query resolved (so cached
    /// responses from before an update can never be served after it — the
    /// new generation is a different key and the old entries age out of the
    /// LRU). `lm` is normalized out of MPDS keys (it does not enter
    /// Algorithm 1), so `mpds` queries differing only in `lm` share a cache
    /// line.
    pub fn key(&self, generation: u64) -> QueryKey {
        QueryKey {
            dataset: self.dataset.clone(),
            generation,
            algo: self.algo,
            notion: self.notion.clone(),
            theta: self.theta,
            k: self.k,
            lm: match self.algo {
                Algo::Mpds => 0,
                Algo::Nds => self.lm,
            },
            seed: self.seed,
            heuristic: self.heuristic,
            threads: self.threads,
            stop: self.stop,
        }
    }
}

/// The deterministic identity of a query (see [`QueryRequest::key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    dataset: String,
    generation: u64,
    algo: Algo,
    notion: String,
    theta: usize,
    k: usize,
    lm: usize,
    seed: u64,
    heuristic: bool,
    threads: usize,
    stop: StopSpec,
}

/// One member of a [`BatchRequest`]: the estimator-side knobs. The world
/// stream (`dataset`, `theta`, `seed`) is shared batch-wide, and batch
/// members always run serially (the shared stream is one serial stream).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMember {
    /// Estimator to run.
    pub algo: Algo,
    /// Density notion name (see [`parse_notion`]).
    pub notion: String,
    /// Result count.
    pub k: usize,
    /// Minimum NDS size `l_m` (ignored by MPDS).
    pub lm: usize,
    /// Use the §III-C heuristic per world.
    pub heuristic: bool,
}

impl Default for BatchMember {
    fn default() -> Self {
        BatchMember {
            algo: Algo::Mpds,
            notion: "edge".to_string(),
            k: 5,
            lm: 2,
            heuristic: false,
        }
    }
}

/// Largest member count one `POST /batch` may carry. Past this a batch is
/// overload, not amortization.
pub const MAX_BATCH_MEMBERS: usize = 64;

/// A batch of queries over one shared world stream (the service transport
/// of [`mpds::QuerySet`]): many `(algo, notion, k, lm, heuristic)` members,
/// one `(dataset, theta, seed)` stream. Each member is keyed and cached
/// exactly like the equivalent `GET /query`, so members that were already
/// computed HIT the cache and only the misses share one sampling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Registry dataset name, shared by every member.
    pub dataset: String,
    /// Number of sampled possible worlds θ, shared by every member.
    pub theta: usize,
    /// Sampler seed, shared by every member.
    pub seed: u64,
    /// Stop policy, shared by every member. `Stable` stops the shared pass
    /// at the first world where **all** members' top-k have been
    /// simultaneously unchanged for `window` worlds (joint stability, the
    /// [`mpds::QuerySet`] contract). Because that joint stop point differs
    /// from each member's standalone stable stop point, stable batches run
    /// **uncached** — their bodies must not alias standalone `stop=stable`
    /// cache entries.
    pub stop: StopSpec,
    /// Per-batch *hard* deadline covering the whole shared sampling pass.
    pub timeout_ms: Option<u64>,
    /// Per-batch *graceful* time budget: when it runs out the shared pass
    /// stops and every member returns its best estimate so far.
    pub budget_ms: Option<u64>,
    /// The query members, answered in order.
    pub members: Vec<BatchMember>,
}

impl BatchRequest {
    /// Paper-default stream parameters for `dataset` with no members.
    pub fn new(dataset: &str) -> Self {
        BatchRequest {
            dataset: dataset.to_string(),
            theta: 320,
            seed: 42,
            stop: StopSpec::Fixed,
            timeout_ms: None,
            budget_ms: None,
            members: Vec::new(),
        }
    }

    /// The full standalone [`QueryRequest`] a member is equivalent to —
    /// the request whose cache key and response bytes the member shares.
    pub fn member_request(&self, m: &BatchMember) -> QueryRequest {
        QueryRequest {
            dataset: self.dataset.clone(),
            algo: m.algo,
            notion: m.notion.clone(),
            theta: self.theta,
            k: m.k,
            lm: m.lm,
            seed: self.seed,
            heuristic: m.heuristic,
            threads: 1,
            stop: self.stop,
            timeout_ms: self.timeout_ms,
            budget_ms: self.budget_ms,
            profile: false,
        }
    }

    /// Validates the batch shape and every member (bounds shared with
    /// [`QueryRequest::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.members.is_empty() {
            return Err("batch has no members".to_string());
        }
        if self.members.len() > MAX_BATCH_MEMBERS {
            return Err(format!(
                "batch has {} members (limit {MAX_BATCH_MEMBERS})",
                self.members.len()
            ));
        }
        for (i, m) in self.members.iter().enumerate() {
            self.member_request(m)
                .validate()
                .map_err(|e| format!("member {i}: {e}"))?;
        }
        Ok(())
    }
}

/// The computed answer of a query, before serialization: node sets are
/// already mapped back to the dataset's original labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponsePayload {
    /// `"tau_hat"` for MPDS, `"gamma_hat"` for NDS.
    pub score_name: &'static str,
    /// Ranked `(labeled node set, score)` rows.
    pub rows: Vec<(Vec<u32>, f64)>,
    /// Sampled worlds without an instance of the notion.
    pub empty_worlds: usize,
    /// MPDS: some world hit the enumeration cap. NDS: the miner hit its
    /// node cap.
    pub truncated: bool,
    /// Worlds actually sampled — the divisor of every score above, which
    /// is what keeps early-stopped estimates unbiased.
    pub worlds_sampled: usize,
    /// Why sampling stopped: `"completed"`, `"stable"`, or `"budget"`.
    pub stop_reason: &'static str,
    /// World index at which the top-k settled (stable stops only).
    pub converged_at: Option<usize>,
}

/// Why a query failed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Invalid parameters or unknown dataset.
    BadRequest(String),
    /// The per-request deadline passed mid-run.
    DeadlineExceeded {
        /// Worlds sampled before the deadline hit.
        completed_worlds: usize,
    },
    /// The server is shutting down.
    Cancelled,
    /// The computing thread died (never expected; reported, not cached).
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadRequest(m) => write!(f, "{m}"),
            QueryError::DeadlineExceeded { completed_worlds } => {
                write!(
                    f,
                    "deadline exceeded after {completed_worlds} sampled worlds"
                )
            }
            QueryError::Cancelled => write!(f, "cancelled: server shutting down"),
            QueryError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// How [`QueryEngine::execute`] obtained its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Served from the result cache.
    Hit,
    /// Computed by this request.
    Miss,
    /// Joined an identical in-flight computation.
    Coalesced,
}

impl ResponseSource {
    /// Value of the `X-Cache` response header.
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseSource::Hit => "HIT",
            ResponseSource::Miss => "MISS",
            ResponseSource::Coalesced => "COALESCED",
        }
    }
}

/// Maps a validated [`QueryRequest`] onto the one typed entry point of the
/// core crate, [`mpds::api::Query`].
fn build_query(req: &QueryRequest, notion: DensityNotion, ctrl: &RunControl) -> Query {
    let q = match req.algo {
        Algo::Mpds => Query::mpds(notion),
        Algo::Nds => Query::nds(notion).min_size(req.lm),
    };
    let mut ctrl = ctrl.clone();
    if let Some(ms) = req.budget_ms {
        ctrl = ctrl.with_budget(Instant::now() + Duration::from_millis(ms));
    }
    q.theta(req.theta)
        .k(req.k)
        .seed(req.seed)
        .heuristic(req.heuristic)
        .exec(if req.threads > 1 {
            Exec::Threads(req.threads)
        } else {
            Exec::Serial
        })
        .stop(stop_of(req.stop, req.theta))
        .control(ctrl)
}

/// Maps the wire-level [`StopSpec`] onto the core [`mpds::Stop`]: θ becomes
/// the stable cap, and `window` doubles as the minimum world count (a run
/// can never stop before it could possibly have seen `window` stable
/// worlds).
fn stop_of(spec: StopSpec, theta: usize) -> Stop {
    match spec {
        StopSpec::Fixed => Stop::FixedTheta,
        StopSpec::Stable { window } => Stop::Stable {
            window: window as usize,
            min_theta: window as usize,
            theta_cap: theta,
        },
    }
}

/// Runs a query against an already-loaded graph — the single computation
/// path shared by the CLI (`--json` or human output) and the server.
pub fn run_query(
    g: &LoadedGraph,
    req: &QueryRequest,
    ctrl: &RunControl,
) -> Result<ResponsePayload, QueryError> {
    run_query_with_progress(g, req, ctrl, None)
}

/// [`run_query`] with an optional [`ProgressSink`] notified per sampled
/// world — the hook behind the server's live `worlds_sampled` metric.
pub fn run_query_with_progress(
    g: &LoadedGraph,
    req: &QueryRequest,
    ctrl: &RunControl,
    progress: Option<Arc<dyn ProgressSink>>,
) -> Result<ResponsePayload, QueryError> {
    let notion = req.validate().map_err(QueryError::BadRequest)?;
    let mut query = build_query(req, notion, ctrl);
    if let Some(sink) = progress {
        query = query.progress(sink);
    }
    let run = query.run(&g.graph).map_err(api_error_to_query_error)?;
    Ok(payload_of(g, run))
}

/// Maps a core-API failure onto the service's error vocabulary: cooperative
/// interruptions become deadline/cancellation errors, and bounds the engine
/// can't pre-check (e.g. threads > theta interplay) surface as client
/// errors, never as panics.
fn api_error_to_query_error(e: ApiError) -> QueryError {
    match e {
        ApiError::Interrupted(i) => match i.reason {
            InterruptReason::DeadlineExceeded => QueryError::DeadlineExceeded {
                completed_worlds: i.completed_worlds,
            },
            InterruptReason::Cancelled => QueryError::Cancelled,
        },
        other => QueryError::BadRequest(other.to_string()),
    }
}

/// Maps a finished [`Run`] back to the dataset's original labels — the one
/// payload construction shared by `/query`, `/batch` members, and `/diff`
/// sides, which is what keeps batch member bytes identical to standalone
/// query bytes.
fn payload_of(g: &LoadedGraph, run: Run) -> ResponsePayload {
    let rows = run
        .top_k
        .into_iter()
        .map(|(set, score)| {
            (
                set.iter().map(|&v| g.label_of(v)).collect::<Vec<u32>>(),
                score,
            )
        })
        .collect();
    ResponsePayload {
        score_name: run.score.as_str(),
        rows,
        empty_worlds: run.stats.empty_worlds,
        truncated: run.stats.truncated,
        worlds_sampled: run.stats.worlds_sampled,
        stop_reason: run.stats.stop_reason.as_str(),
        converged_at: run.stats.converged_at,
    }
}

/// Serializes a query response. Field order is fixed; see [`crate::json`]
/// for why (bytewise determinism is asserted end to end). Deliberately
/// carries no wall-clock field — identical keys must render identical
/// bytes; wall time goes through
/// [`render_query_response_with_wall`] for the CLI only.
pub fn render_query_response(req: &QueryRequest, payload: &ResponsePayload) -> String {
    render_query_body(req, payload, None)
}

/// [`render_query_response`] plus a `wall_ms` entry inside the `stats`
/// block — the CLI `--json` variant, never served or cached.
pub fn render_query_response_with_wall(
    req: &QueryRequest,
    payload: &ResponsePayload,
    wall_ms: u64,
) -> String {
    render_query_body(req, payload, Some(wall_ms))
}

fn render_query_body(
    req: &QueryRequest,
    payload: &ResponsePayload,
    wall_ms: Option<u64>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", &req.dataset)
        .field_str("algo", req.algo.as_str())
        .field_str("notion", &req.notion)
        .field_uint("theta", req.theta as u64)
        .field_uint("k", req.k as u64);
    if req.algo == Algo::Nds {
        w.field_uint("lm", req.lm as u64);
    }
    w.field_uint("seed", req.seed)
        .field_bool("heuristic", req.heuristic);
    // Serial responses keep the historical byte layout; parallel runs draw
    // different worlds, so the thread count is surfaced in the body.
    if req.threads > 1 {
        w.field_uint("threads", req.threads as u64);
    }
    // Same rule for the stop policy: fixed-θ responses keep the historical
    // layout, stable stops are echoed.
    if let StopSpec::Stable { window } = req.stop {
        w.field_str("stop", "stable")
            .field_uint("window", window as u64);
    }
    w.field_str("score", payload.score_name)
        .key("results")
        .begin_array();
    for (nodes, score) in &payload.rows {
        w.begin_object().key("nodes").begin_array();
        for &v in nodes {
            w.uint(v as u64);
        }
        w.end_array().field_float("score", *score).end_object();
    }
    w.end_array()
        .field_uint("empty_worlds", payload.empty_worlds as u64)
        .field_bool("truncated", payload.truncated)
        .key("stats")
        .begin_object()
        .field_uint("worlds_sampled", payload.worlds_sampled as u64)
        .field_str("stop_reason", payload.stop_reason);
    if let Some(at) = payload.converged_at {
        w.field_uint("converged_at", at as u64);
    }
    if let Some(ms) = wall_ms {
        w.field_uint("wall_ms", ms);
    }
    w.end_object().end_object();
    w.finish()
}

/// Renders the `?profile=1` per-stage timing block: every stage of
/// [`mpds_obs::Stage::ALL`] in order, each with its invocation count and
/// total microseconds — zero-count stages included, so the block's shape is
/// stable across cache hits (which only exercise the engine-side stages)
/// and misses.
pub fn render_profile_block(totals: &StageTotals, source: ResponseSource) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_str("source", source.as_str());
    w.key("stages").begin_object();
    for stage in Stage::ALL {
        w.key(stage.as_str())
            .begin_object()
            .field_uint("count", totals.count(stage))
            .field_uint("total_us", totals.total_us(stage))
            .end_object();
    }
    w.end_object().end_object();
    w.finish()
}

/// Splices a profile block into an already-rendered query body *without*
/// touching the cached bytes: the body's closing `}` is replaced by
/// `,"profile":{...}}` in a fresh buffer, so the `Arc`'d cache entry keeps
/// serving byte-identical responses to unprofiled requests.
pub fn splice_profile(body: &[u8], totals: &StageTotals, source: ResponseSource) -> Vec<u8> {
    debug_assert_eq!(body.last(), Some(&b'}'));
    let block = render_profile_block(totals, source);
    let mut out = Vec::with_capacity(body.len() + block.len() + 12);
    out.extend_from_slice(&body[..body.len().saturating_sub(1)]);
    out.extend_from_slice(b",\"profile\":");
    out.extend_from_slice(block.as_bytes());
    out.push(b'}');
    out
}

/// Serializes an applied update (the server's `POST /update` response and
/// the CLI `update` output). Field order is fixed, like every response.
pub fn render_update_response(dataset: &str, o: &crate::registry::UpdateOutcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", dataset)
        .field_uint("generation", o.generation)
        .field_uint("inserted", o.inserted as u64)
        .field_uint("reweighted", o.reweighted as u64)
        .field_uint("deleted", o.deleted as u64)
        .field_uint("nodes_added", o.nodes_added as u64)
        .field_uint("nodes", o.shape.0 as u64)
        .field_uint("edges", o.shape.1 as u64)
        .field_uint("overlay", o.overlay as u64)
        .field_uint("compactions", o.compactions)
        .end_object();
    w.finish()
}

/// Serializes a forced checkpoint (the server's `POST /admin/checkpoint`
/// response and the CLI `checkpoint` output). Field order is fixed.
pub fn render_checkpoint_response(dataset: &str, o: &crate::registry::CheckpointOutcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", dataset)
        .field_uint("generation", o.generation)
        .field_uint("wal_records", o.wal_records)
        .field_uint("wal_bytes", o.wal_bytes)
        .end_object();
    w.finish()
}

/// Serializes dataset statistics (the CLI `stats --json` output and the
/// server's `/dataset` endpoint).
pub fn render_stats(name: &str, g: &ugraph::UncertainGraph) -> String {
    let (mean, std, q) = ugraph::probability::prob_stats(g.probs());
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", name)
        .field_uint("nodes", g.num_nodes() as u64)
        .field_uint("edges", g.num_edges() as u64)
        .field_float("prob_mean", mean)
        .field_float("prob_std", std)
        .key("prob_quartiles")
        .begin_array();
    for v in q {
        w.float(v);
    }
    w.end_array().end_object();
    w.finish()
}

/// One in-flight computation: followers block on the condvar until the
/// leader fills `done`.
struct InFlight {
    done: Mutex<Option<Result<Arc<Vec<u8>>, QueryError>>>,
    cv: Condvar,
}

/// What a follower's wait produced.
enum WaitOutcome {
    /// The leader finished with this result.
    Done(Result<Arc<Vec<u8>>, QueryError>),
    /// The *follower's own* deadline passed first.
    TimedOut,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<Vec<u8>>, QueryError>) {
        let mut done = self.done.lock().unwrap();
        if done.is_none() {
            *done = Some(result);
        }
        self.cv.notify_all();
    }

    /// Waits for the leader, but no longer than the follower's own
    /// deadline (`None` waits indefinitely).
    fn wait_until(&self, deadline: Option<Instant>) -> WaitOutcome {
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(result) = done.as_ref() {
                return WaitOutcome::Done(result.clone());
            }
            match deadline {
                None => done = self.cv.wait(done).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return WaitOutcome::TimedOut;
                    }
                    (done, _) = self.cv.wait_timeout(done, d - now).unwrap();
                }
            }
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (clamped internally).
    pub cache_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 256,
            cache_shards: 8,
        }
    }
}

/// Counter snapshot for `/metrics`.
#[derive(Debug, Clone, Copy)]
pub struct EngineStats {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Queries actually computed (cache misses that ran an estimator).
    pub computed: u64,
    /// Queries that joined an in-flight identical computation.
    pub coalesced: u64,
    /// Possible worlds fully sampled across all computed queries — the live
    /// progress feed from the estimators' [`ProgressSink`].
    pub worlds_sampled: u64,
    /// Possible worlds requested (θ summed) across all computed queries.
    pub worlds_requested: u64,
    /// Budget-truncated answers refined to convergence in the background
    /// and republished under their original key.
    pub refined: u64,
}

/// Engine-side observability state, shared with the refinement worker and
/// read by the `/metrics` renderers.
///
/// Everything in here is lock-free (atomics under the hood) and safe to
/// read while the engine serves traffic.
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Refinement jobs currently queued or being re-run (returns to 0 once
    /// the background worker drains).
    pub refine_queue_depth: Gauge,
    /// Wall time of completed background refinement runs, in microseconds.
    pub refine_hist: Histogram,
    /// Refinement runs that converged and republished their key.
    pub refine_ok: Counter,
    /// Refinement runs that failed (e.g. cancelled at shutdown); the
    /// truncated answer keeps serving.
    pub refine_failed: Counter,
    /// Per-stage time totals aggregated across every profiled
    /// (`?profile=1`) request.
    pub stage_totals: Recorder,
    /// Profiled requests served.
    pub profiled: Counter,
}

/// A query response with its provenance: the bytes, how they were obtained,
/// the dataset generation they were computed against, and — when the
/// request asked for `?profile=1` — the per-stage timings of *this*
/// evaluation.
#[derive(Debug, Clone)]
pub struct TracedResponse {
    /// The JSON response body (shared with the cache).
    pub body: Arc<Vec<u8>>,
    /// Cache hit, miss, or coalesced join.
    pub source: ResponseSource,
    /// Generation of the dataset snapshot the response is keyed to.
    pub generation: u64,
    /// Per-stage timings when the request set [`QueryRequest::profile`].
    pub profile: Option<StageTotals>,
}

/// One queued unit of background refinement: a budget-truncated query to
/// re-run to convergence against the exact snapshot it was answered from.
struct RefineJob {
    key: QueryKey,
    /// The original request with `budget_ms`/`timeout_ms` cleared.
    req: QueryRequest,
    graph: LoadedGraph,
}

/// The concurrent query engine: registry + cache + in-flight coalescing +
/// background refinement of budget-truncated answers.
pub struct QueryEngine {
    registry: GraphRegistry,
    cache: Arc<ShardedLru<QueryKey, Arc<Vec<u8>>>>,
    inflight: Mutex<HashMap<QueryKey, Arc<InFlight>>>,
    cancel: Arc<AtomicBool>,
    computed: AtomicU64,
    coalesced: AtomicU64,
    refined: Arc<AtomicU64>,
    /// Keys queued for or undergoing refinement — the dedup gate that keeps
    /// repeated budget-truncated queries from re-enqueueing the same key.
    refining: Arc<Mutex<HashSet<QueryKey>>>,
    /// Feed to the single background refinement worker. One worker, not a
    /// thread per key: refinement is deliberately serialized so a burst of
    /// budget-truncated queries cannot starve foreground serving of CPU.
    /// The worker exits when the engine (the only sender) is dropped.
    refine_tx: Mutex<std::sync::mpsc::Sender<RefineJob>>,
    /// Shared per-world progress sink attached to every computed query.
    worlds: Arc<ProgressCounter>,
    /// Observability state shared with the refinement worker.
    obs: Arc<EngineObs>,
}

impl QueryEngine {
    /// Builds an engine over `registry`.
    pub fn new(registry: GraphRegistry, cfg: &EngineConfig) -> Self {
        let cache = Arc::new(ShardedLru::new(cfg.cache_capacity, cfg.cache_shards));
        let cancel = Arc::new(AtomicBool::new(false));
        let refined = Arc::new(AtomicU64::new(0));
        let refining = Arc::new(Mutex::new(HashSet::new()));
        let worlds = ProgressCounter::new();
        let obs = Arc::new(EngineObs::default());
        let (refine_tx, refine_rx) = std::sync::mpsc::channel::<RefineJob>();
        {
            let cache = Arc::clone(&cache);
            let cancel = Arc::clone(&cancel);
            let refined = Arc::clone(&refined);
            let refining = Arc::clone(&refining);
            let worlds = Arc::clone(&worlds);
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                while let Ok(job) = refine_rx.recv() {
                    let started = Instant::now();
                    let ctrl = RunControl::unbounded().with_cancel_flag(Arc::clone(&cancel));
                    let sink = Arc::clone(&worlds);
                    // Time the whole refine-and-republish pass as its own
                    // stage, absorbed into the engine-wide totals so the
                    // background worker shows up on /metrics alongside the
                    // request-path stages.
                    let rec = Recorder::new(true);
                    {
                        let _span = rec.span(Stage::RefineRepublish);
                        match run_query_with_progress(&job.graph, &job.req, &ctrl, Some(sink as _))
                        {
                            Ok(payload) => {
                                let body = Arc::new(
                                    render_query_response(&job.req, &payload).into_bytes(),
                                );
                                cache.insert(job.key.clone(), body);
                                refined.fetch_add(1, Ordering::Relaxed);
                                obs.refine_ok.inc();
                            }
                            Err(_) => obs.refine_failed.inc(),
                        }
                    }
                    obs.stage_totals.absorb(&rec.totals());
                    obs.refine_hist.record(mpds_obs::micros_since(started));
                    refining.lock().unwrap().remove(&job.key);
                    // Depth counts queued + in-progress jobs; the job is
                    // done only after its key is released above.
                    obs.refine_queue_depth.dec();
                }
            });
        }
        QueryEngine {
            registry,
            cache,
            inflight: Mutex::new(HashMap::new()),
            cancel,
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            refined,
            refining,
            refine_tx: Mutex::new(refine_tx),
            worlds,
            obs,
        }
    }

    /// The engine's observability state (refinement gauges/histogram and
    /// aggregated stage totals), for `/metrics` rendering.
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// The dataset registry.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The shutdown flag shared with every in-flight [`RunControl`]; raising
    /// it cancels running queries cooperatively.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            computed: self.computed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            worlds_sampled: self.worlds.done() as u64,
            worlds_requested: self.worlds.requested() as u64,
            refined: self.refined.load(Ordering::Relaxed),
        }
    }

    /// Executes `req`: cache hit, coalesced join, or fresh computation.
    /// The returned bytes are the JSON response body — identical `Arc`s for
    /// coalesced requests, identical bytes for cached repeats.
    ///
    /// `timeout_ms` is deliberately not part of the cache key, so a
    /// follower may join a leader with *different* deadline semantics. Two
    /// rules keep each request's own deadline authoritative: a follower
    /// waits no longer than its own deadline (then reports its own 504),
    /// and a leader's `DeadlineExceeded` is never inherited — the follower
    /// retries under its own control instead.
    pub fn execute(
        &self,
        req: &QueryRequest,
    ) -> Result<(Arc<Vec<u8>>, ResponseSource), QueryError> {
        self.execute_traced(req).map(|t| (t.body, t.source))
    }

    /// [`Self::execute`] with provenance: the snapshot generation served
    /// against and — when the request set [`QueryRequest::profile`] — the
    /// per-stage timings of this evaluation. Profiled timings are also
    /// absorbed into the engine-wide [`EngineObs::stage_totals`].
    pub fn execute_traced(&self, req: &QueryRequest) -> Result<TracedResponse, QueryError> {
        self.execute_traced_with(req, None)
    }

    /// [`Self::execute_traced`] against a caller-supplied recorder (the HTTP
    /// front end's per-request flight recorder). When the caller's recorder
    /// is enabled the evaluation is timed into it — so `/debug/trace/<id>`
    /// shows per-stage breakdowns for every request, profiled or not; when
    /// it is absent or disabled, `?profile=1` still mints its own.
    pub fn execute_traced_with(
        &self,
        req: &QueryRequest,
        caller_rec: Option<&Arc<Recorder>>,
    ) -> Result<TracedResponse, QueryError> {
        req.validate().map_err(QueryError::BadRequest)?;
        let rec = match caller_rec {
            Some(r) if r.is_enabled() => Some(Arc::clone(r)),
            _ => req.profile.then(|| Arc::new(Recorder::new(true))),
        };
        // Resolve the dataset snapshot up front: its generation is part of
        // the cache key, and the computation below runs against exactly
        // this snapshot even if a writer swaps in a newer generation
        // mid-flight.
        let graph = {
            let _span = rec.as_deref().map(|r| r.span(Stage::SnapshotResolve));
            self.registry
                .get(&req.dataset)
                .map_err(QueryError::BadRequest)?
        };
        let key = req.key(graph.generation);
        let own_deadline = req
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let (body, source) = self.serve_key(req, &graph, &key, own_deadline, rec.as_ref())?;
        // A flight-only recorder feeds /debug/trace but leaves the profiled
        // aggregates alone: absorb + count only what ?profile=1 asked for.
        let profile = if req.profile {
            rec.map(|r| {
                let totals = r.totals();
                self.obs.stage_totals.absorb(&totals);
                self.obs.profiled.inc();
                totals
            })
        } else {
            None
        };
        Ok(TracedResponse {
            body,
            source,
            generation: graph.generation,
            profile,
        })
    }

    /// The cache → in-flight → compute path for an already-resolved
    /// `(request, snapshot, key)` triple — shared by [`Self::execute`] and
    /// the joiner side of [`Self::execute_batch`] (which must serve against
    /// the generation its batch resolved, not a fresh lookup).
    fn serve_key(
        &self,
        req: &QueryRequest,
        graph: &LoadedGraph,
        key: &QueryKey,
        own_deadline: Option<Instant>,
        rec: Option<&Arc<Recorder>>,
    ) -> Result<(Arc<Vec<u8>>, ResponseSource), QueryError> {
        // Bounded retries: each iteration either serves the request or
        // observes a *leader* deadline failure (not cached, entry removed),
        // after which this thread re-runs and typically becomes the leader.
        let mut last_err = None;
        for _ in 0..3 {
            let probed = {
                let _span = rec.map(|r| r.span(Stage::CacheProbe));
                self.cache.get(key)
            };
            if let Some(body) = probed {
                return Ok((body, ResponseSource::Hit));
            }
            let flight = {
                let mut map = self.inflight.lock().unwrap();
                if let Some(existing) = map.get(key) {
                    let existing = Arc::clone(existing);
                    drop(map);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    // A coalesced join is the cache-probe stage stretched
                    // out to the leader's completion, so it is timed there.
                    let _span = rec.map(|r| r.span(Stage::CacheProbe));
                    match existing.wait_until(own_deadline) {
                        WaitOutcome::Done(Ok(body)) => {
                            return Ok((body, ResponseSource::Coalesced))
                        }
                        WaitOutcome::Done(Err(e @ QueryError::DeadlineExceeded { .. })) => {
                            // The leader's deadline, not ours — retry.
                            last_err = Some(e);
                            continue;
                        }
                        WaitOutcome::Done(Err(e)) => return Err(e),
                        WaitOutcome::TimedOut => {
                            return Err(QueryError::DeadlineExceeded {
                                completed_worlds: 0,
                            })
                        }
                    }
                }
                let flight = Arc::new(InFlight::new());
                map.insert(key.clone(), Arc::clone(&flight));
                flight
            };
            // This thread is the leader. The guard guarantees followers are
            // released and the in-flight entry is removed on every exit path.
            let guard = LeaderGuard {
                engine: self,
                key,
                flight: &flight,
                completed: false,
            };
            let result = self.compute(req, graph, own_deadline, rec);
            guard.finish(result.clone());
            return result.map(|b| (b, ResponseSource::Miss));
        }
        Err(last_err
            .unwrap_or_else(|| QueryError::Internal("coalescing retries exhausted".to_string())))
    }

    fn compute(
        &self,
        req: &QueryRequest,
        graph: &LoadedGraph,
        deadline: Option<Instant>,
        rec: Option<&Arc<Recorder>>,
    ) -> Result<Arc<Vec<u8>>, QueryError> {
        let mut ctrl = RunControl::unbounded().with_cancel_flag(self.cancel_flag());
        if let Some(d) = deadline {
            ctrl = ctrl.with_deadline(d);
        }
        if let Some(r) = rec {
            // The sampling loop times world materialization, estimator
            // accumulation, and stability tracking against this recorder.
            ctrl = ctrl.with_recorder(Arc::clone(r));
        }
        let payload =
            run_query_with_progress(graph, req, &ctrl, Some(Arc::clone(&self.worlds) as _))?;
        self.computed.fetch_add(1, Ordering::Relaxed);
        if payload.stop_reason == "budget" {
            self.spawn_refinement(req, graph);
        }
        let _span = rec.map(|r| r.span(Stage::JsonRender));
        Ok(Arc::new(render_query_response(req, &payload).into_bytes()))
    }

    /// Queues a budget-truncated query for the background worker, which
    /// re-runs it to convergence and republishes the refined bytes under
    /// the **same** [`QueryKey`] (budgets are not part of the key), so a
    /// later identical request HITs the converged answer instead of the
    /// truncated one. One refinement per key at a time; failures (e.g.
    /// shutdown cancellation) are dropped silently — the truncated answer
    /// simply keeps serving.
    fn spawn_refinement(&self, req: &QueryRequest, graph: &LoadedGraph) {
        let key = req.key(graph.generation);
        if !self.refining.lock().unwrap().insert(key.clone()) {
            return; // this key is already queued or being refined
        }
        let mut full = req.clone();
        full.budget_ms = None;
        full.timeout_ms = None;
        let job = RefineJob {
            key: key.clone(),
            req: full,
            graph: graph.clone(),
        };
        // Count the job before sending so the worker's decrement (which
        // races the send returning) can never observe a missing increment.
        self.obs.refine_queue_depth.inc();
        if self.refine_tx.lock().unwrap().send(job).is_err() {
            // Worker gone (only possible mid-teardown): undo the claim.
            self.obs.refine_queue_depth.dec();
            self.refining.lock().unwrap().remove(&key);
        }
    }

    /// Executes a batch: every member is keyed and cached exactly like the
    /// equivalent standalone query, so cached members are served as HITs,
    /// members already being computed elsewhere are joined (coalesced), and
    /// only the remaining misses run — all of them over **one** shared world
    /// stream via [`mpds::QuerySet`], materializing θ worlds once instead of
    /// once per member. Member responses are bit-identical to standalone
    /// `execute` responses (the `QuerySet` contract), which is what lets
    /// them share the cache.
    ///
    /// Results come back in member order with each member's
    /// [`ResponseSource`].
    pub fn execute_batch(&self, req: &BatchRequest) -> Result<BatchOutcome, QueryError> {
        req.validate().map_err(QueryError::BadRequest)?;
        let graph = self
            .registry
            .get(&req.dataset)
            .map_err(QueryError::BadRequest)?;
        let own_deadline = req
            .timeout_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let requests: Vec<QueryRequest> =
            req.members.iter().map(|m| req.member_request(m)).collect();
        // Joint stability stops the shared pass at a world count no
        // standalone run would pick, so a stable batch's bodies must not
        // alias standalone `stop=stable` cache entries: the whole batch
        // computes in one uncached, uncoalesced pass.
        if matches!(req.stop, StopSpec::Stable { .. }) {
            let led: Vec<usize> = (0..requests.len()).collect();
            let (bodies, stats) = self.compute_batch(req, &graph, &led, &requests, own_deadline)?;
            return Ok(BatchOutcome {
                results: bodies
                    .into_iter()
                    .map(|b| (b, ResponseSource::Miss))
                    .collect(),
                worlds_sampled: stats.worlds_sampled,
                stop_reason: stats.stop_reason.as_str(),
                converged_at: stats.converged_at,
            });
        }
        let keys: Vec<QueryKey> = requests.iter().map(|r| r.key(graph.generation)).collect();
        // Classify every member under one in-flight lock: cached members
        // are done, members someone else is computing will be joined, and
        // the rest are registered as led flights right here — so concurrent
        // identical queries (or duplicate members in this very batch)
        // coalesce onto this batch's single sampling pass.
        let mut results: Vec<Option<(Arc<Vec<u8>>, ResponseSource)>> = vec![None; keys.len()];
        let mut joined: Vec<usize> = Vec::new();
        let mut led: Vec<usize> = Vec::new();
        let mut flights: Vec<Arc<InFlight>> = Vec::new();
        {
            let mut map = self.inflight.lock().unwrap();
            for (i, key) in keys.iter().enumerate() {
                if let Some(body) = self.cache.get(key) {
                    results[i] = Some((body, ResponseSource::Hit));
                } else if map.contains_key(key) {
                    joined.push(i);
                } else {
                    let flight = Arc::new(InFlight::new());
                    map.insert(key.clone(), Arc::clone(&flight));
                    flights.push(flight);
                    led.push(i);
                }
            }
        }
        // Compute every led member in one QuerySet pass. The guard releases
        // followers and unregisters the flights on every exit path,
        // including a panic in the estimator.
        let mut pass_worlds = 0usize;
        let mut pass_reason = "completed";
        let mut pass_converged = None;
        if !led.is_empty() {
            let guard = BatchLeaderGuard {
                engine: self,
                keys: led.iter().map(|&i| keys[i].clone()).collect(),
                flights: &flights,
                completed: false,
            };
            let outcome = self.compute_batch(req, &graph, &led, &requests, own_deadline);
            match outcome {
                Ok((bodies, stats)) => {
                    guard.finish(&bodies.iter().map(|b| Ok(Arc::clone(b))).collect::<Vec<_>>());
                    for (j, &i) in led.iter().enumerate() {
                        results[i] = Some((Arc::clone(&bodies[j]), ResponseSource::Miss));
                    }
                    pass_worlds = stats.worlds_sampled;
                    pass_reason = stats.stop_reason.as_str();
                    pass_converged = stats.converged_at;
                    // A budget-truncated pass published truncated bodies
                    // under every led key; refine each to convergence.
                    if pass_reason == "budget" {
                        for &i in &led {
                            self.spawn_refinement(&requests[i], &graph);
                        }
                    }
                }
                Err(e) => {
                    let errs: Vec<Result<Arc<Vec<u8>>, QueryError>> =
                        led.iter().map(|_| Err(e.clone())).collect();
                    guard.finish(&errs);
                    return Err(e);
                }
            }
        }
        // Joined members wait on their existing flights (or HIT the cache,
        // e.g. duplicate members of this batch that the pass above already
        // published). This runs after the led computation, so a duplicate
        // never deadlocks on its own batch.
        for i in joined {
            let (body, source) =
                self.serve_key(&requests[i], &graph, &keys[i], own_deadline, None)?;
            let source = match source {
                // The member joined someone's in-flight computation or hit
                // bytes published after classification — both are coalesced
                // from the batch's point of view (it did not compute them).
                ResponseSource::Hit | ResponseSource::Coalesced => ResponseSource::Coalesced,
                ResponseSource::Miss => ResponseSource::Miss,
            };
            results[i] = Some((body, source));
        }
        Ok(BatchOutcome {
            results: results.into_iter().map(|r| r.unwrap()).collect(),
            worlds_sampled: pass_worlds,
            stop_reason: pass_reason,
            converged_at: pass_converged,
        })
    }

    /// Runs the led members of a batch over one shared world stream and
    /// renders each member's standalone-identical response body.
    fn compute_batch(
        &self,
        req: &BatchRequest,
        graph: &LoadedGraph,
        led: &[usize],
        requests: &[QueryRequest],
        deadline: Option<Instant>,
    ) -> Result<ComputedBatch, QueryError> {
        let mut ctrl = RunControl::unbounded().with_cancel_flag(self.cancel_flag());
        if let Some(d) = deadline {
            ctrl = ctrl.with_deadline(d);
        }
        if let Some(ms) = req.budget_ms {
            ctrl = ctrl.with_budget(Instant::now() + Duration::from_millis(ms));
        }
        let mut set = QuerySet::new()
            .theta(req.theta)
            .seed(req.seed)
            .stop(stop_of(req.stop, req.theta))
            .control(ctrl)
            .progress(Arc::clone(&self.worlds) as _);
        for &i in led {
            let r = &requests[i];
            let notion = r.validate().map_err(QueryError::BadRequest)?;
            // Batch members are serial by construction (threads = 1), so
            // this never trips the QuerySet Exec::Threads rejection. The
            // stop policy and budget are set-owned; whatever the member
            // query carries is normalized away by the QuerySet.
            set = set.push(build_query(r, notion, &RunControl::unbounded()));
        }
        let batch_run = set.run(&graph.graph).map_err(api_error_to_query_error)?;
        self.computed.fetch_add(led.len() as u64, Ordering::Relaxed);
        let stats = batch_run.stats;
        let bodies = batch_run
            .runs
            .into_iter()
            .zip(led)
            .map(|(run, &i)| {
                let payload = payload_of(graph, run);
                Arc::new(render_query_response(&requests[i], &payload).into_bytes())
            })
            .collect();
        Ok((bodies, stats))
    }

    /// Runs one query over two datasets under common random numbers and
    /// returns the rendered diff (see [`mpds::recompute::Recompute`]).
    /// `req.dataset` is the *after* side; `against` is the *before*
    /// baseline. Serial only (CRN is one per-snapshot stream), uncached
    /// (the two-dataset key space is unbounded and diffs are rare).
    pub fn execute_diff(&self, req: &QueryRequest, against: &str) -> Result<Vec<u8>, QueryError> {
        let notion = req.validate().map_err(QueryError::BadRequest)?;
        if req.threads > 1 {
            return Err(QueryError::BadRequest(
                "diff runs serially (CRN is one per-snapshot stream); drop threads".to_string(),
            ));
        }
        if req.stop != StopSpec::Fixed || req.budget_ms.is_some() {
            return Err(QueryError::BadRequest(
                "diff supports neither stop=stable nor budget_ms: common random numbers \
                 need the same fixed-θ stream on both snapshots"
                    .to_string(),
            ));
        }
        let after = self
            .registry
            .get(&req.dataset)
            .map_err(QueryError::BadRequest)?;
        let before = self.registry.get(against).map_err(QueryError::BadRequest)?;
        let mut ctrl = RunControl::unbounded().with_cancel_flag(self.cancel_flag());
        if let Some(ms) = req.timeout_ms {
            ctrl = ctrl.with_deadline(Instant::now() + Duration::from_millis(ms));
        }
        let query = build_query(req, notion, &ctrl)
            .progress(Arc::clone(&self.worlds) as Arc<dyn ProgressSink>);
        let report = Recompute::new(query)
            .run(&before.graph, &after.graph)
            .map_err(api_error_to_query_error)?;
        Ok(render_diff_response(req, against, &before, &after, &report).into_bytes())
    }

    /// Applies one mutation batch to `dataset` (see
    /// [`crate::registry::GraphRegistry::apply_update`]): the dataset moves
    /// to its next generation and subsequent queries compute — and cache —
    /// under the new generation's key.
    pub fn apply_update(
        &self,
        dataset: &str,
        mutations: impl std::io::Read,
    ) -> Result<crate::registry::UpdateOutcome, QueryError> {
        self.apply_update_traced(dataset, mutations, None)
    }

    /// [`Self::apply_update`] with an optional flight recorder timing the
    /// store-side stages (WAL append, fsync, compaction checkpoints).
    pub fn apply_update_traced(
        &self,
        dataset: &str,
        mutations: impl std::io::Read,
        rec: Option<&Recorder>,
    ) -> Result<crate::registry::UpdateOutcome, QueryError> {
        self.registry
            .apply_update_traced(dataset, mutations, rec)
            .map_err(QueryError::BadRequest)
    }

    /// Forces a compaction + durable snapshot checkpoint of `dataset` (see
    /// [`crate::registry::GraphRegistry::checkpoint_dataset`]). The
    /// generation is unchanged, so cached responses stay valid.
    pub fn checkpoint(
        &self,
        dataset: &str,
    ) -> Result<crate::registry::CheckpointOutcome, QueryError> {
        self.checkpoint_traced(dataset, None)
    }

    /// [`Self::checkpoint`] with an optional flight recorder timing the
    /// checkpoint write and its fsyncs.
    pub fn checkpoint_traced(
        &self,
        dataset: &str,
        rec: Option<&Recorder>,
    ) -> Result<crate::registry::CheckpointOutcome, QueryError> {
        self.registry
            .checkpoint_dataset_traced(dataset, rec)
            .map_err(QueryError::BadRequest)
    }
}

/// Completes an in-flight computation on every exit path (including leader
/// panic, where the drop handler reports an internal error so followers are
/// not stranded on the condvar).
struct LeaderGuard<'a> {
    engine: &'a QueryEngine,
    key: &'a QueryKey,
    flight: &'a Arc<InFlight>,
    completed: bool,
}

impl LeaderGuard<'_> {
    fn finish(mut self, result: Result<Arc<Vec<u8>>, QueryError>) {
        // Publish to the cache before releasing followers / unregistering,
        // so a request arriving between those steps still finds the result.
        if let Ok(body) = &result {
            self.engine.cache.insert(self.key.clone(), Arc::clone(body));
        }
        self.flight.complete(result);
        self.engine.inflight.lock().unwrap().remove(self.key);
        self.completed = true;
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.flight.complete(Err(QueryError::Internal(
                "query computation panicked".to_string(),
            )));
            self.engine.inflight.lock().unwrap().remove(self.key);
        }
    }
}

/// Rendered bodies for a batch's led members plus the shared pass's stats.
type ComputedBatch = (Vec<Arc<Vec<u8>>>, mpds::BatchStats);

/// The per-member bodies and sources of one [`QueryEngine::execute_batch`],
/// in member order.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-member `(response bytes, how they were obtained)`.
    pub results: Vec<(Arc<Vec<u8>>, ResponseSource)>,
    /// Worlds sampled by this batch's shared pass (0 when every member was
    /// served without sampling).
    pub worlds_sampled: usize,
    /// Why the shared pass stopped (`"completed"` when there was no pass).
    pub stop_reason: &'static str,
    /// For stable stops: the world count after which no member's top-k
    /// changed again.
    pub converged_at: Option<usize>,
}

impl BatchOutcome {
    /// How many members this batch actually computed (MISS members — the
    /// ones that shared the single sampling pass).
    pub fn computed(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, s)| *s == ResponseSource::Miss)
            .count()
    }
}

/// [`LeaderGuard`] for a whole batch: completes every led flight (caching
/// successes first) and unregisters them, with a drop handler that reports
/// an internal error so followers are never stranded if the batch panics.
struct BatchLeaderGuard<'a> {
    engine: &'a QueryEngine,
    keys: Vec<QueryKey>,
    flights: &'a [Arc<InFlight>],
    completed: bool,
}

impl BatchLeaderGuard<'_> {
    fn finish(mut self, results: &[Result<Arc<Vec<u8>>, QueryError>]) {
        for ((key, flight), result) in self.keys.iter().zip(self.flights).zip(results) {
            if let Ok(body) = result {
                self.engine.cache.insert(key.clone(), Arc::clone(body));
            }
            flight.complete(result.clone());
        }
        let mut map = self.engine.inflight.lock().unwrap();
        for key in &self.keys {
            map.remove(key);
        }
        drop(map);
        self.completed = true;
    }
}

impl Drop for BatchLeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            for flight in self.flights {
                flight.complete(Err(QueryError::Internal(
                    "batch computation panicked".to_string(),
                )));
            }
            let mut map = self.engine.inflight.lock().unwrap();
            for key in &self.keys {
                map.remove(key);
            }
        }
    }
}

/// Serializes a batch response: the shared stream parameters, each member's
/// body **verbatim** (byte-identical to the equivalent `GET /query` body —
/// the e2e contract), and the per-member cache sources in member order.
pub fn render_batch_response(req: &BatchRequest, outcome: &BatchOutcome) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", &req.dataset)
        .field_uint("theta", req.theta as u64)
        .field_uint("seed", req.seed);
    if let StopSpec::Stable { window } = req.stop {
        w.field_str("stop", "stable")
            .field_uint("window", window as u64);
    }
    w.field_uint("members", req.members.len() as u64)
        .field_uint("computed", outcome.computed() as u64)
        .key("results")
        .begin_array();
    for (body, _) in &outcome.results {
        w.raw(std::str::from_utf8(body).expect("response bodies are UTF-8 JSON"));
    }
    w.end_array().key("sources").begin_array();
    for (_, source) in &outcome.results {
        w.string(source.as_str());
    }
    w.end_array()
        .key("stats")
        .begin_object()
        .field_uint("worlds_sampled", outcome.worlds_sampled as u64)
        .field_str("stop_reason", outcome.stop_reason);
    if let Some(at) = outcome.converged_at {
        w.field_uint("converged_at", at as u64);
    }
    w.end_object().end_object();
    w.finish()
}

/// Serializes a diff response: the echoed query parameters, both labeled
/// rankings, and the structured [`mpds::recompute::TopKDiff`]. Node sets on
/// the *before* side are labeled through `before`'s table, the *after* side
/// (including `common`) through `after`'s.
pub fn render_diff_response(
    req: &QueryRequest,
    against: &str,
    before: &LoadedGraph,
    after: &LoadedGraph,
    report: &mpds::recompute::RecomputeReport,
) -> String {
    let label_rows = |w: &mut JsonWriter, g: &LoadedGraph, rows: &[(Vec<u32>, f64)]| {
        w.begin_array();
        for (set, score) in rows {
            w.begin_object().key("nodes").begin_array();
            for &v in set {
                w.uint(g.label_of(v) as u64);
            }
            w.end_array().field_float("score", *score).end_object();
        }
        w.end_array();
    };
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("dataset", &req.dataset)
        .field_str("against", against)
        .field_str("algo", req.algo.as_str())
        .field_str("notion", &req.notion)
        .field_uint("theta", req.theta as u64)
        .field_uint("k", req.k as u64);
    if req.algo == Algo::Nds {
        w.field_uint("lm", req.lm as u64);
    }
    w.field_uint("seed", req.seed)
        .field_bool("heuristic", req.heuristic)
        .field_str("score", report.after.score.as_str());
    w.key("before");
    label_rows(&mut w, before, &report.before.top_k);
    w.key("after");
    label_rows(&mut w, after, &report.after.top_k);
    w.key("entered");
    label_rows(&mut w, after, &report.diff.entered);
    w.key("left");
    label_rows(&mut w, before, &report.diff.left);
    w.key("common").begin_array();
    for shift in &report.diff.common {
        w.begin_object().key("nodes").begin_array();
        for &v in &shift.set {
            w.uint(after.label_of(v) as u64);
        }
        w.end_array()
            .field_uint("rank_before", shift.rank_before as u64)
            .field_uint("rank_after", shift.rank_after as u64)
            .field_float("score_before", shift.score_before)
            .field_float("score_after", shift.score_after)
            .end_object();
    }
    w.end_array()
        .field_bool("unchanged", report.diff.is_unchanged())
        .field_float("max_abs_score_delta", report.diff.max_abs_score_delta())
        .key("stats")
        .begin_object()
        .field_uint(
            "worlds_sampled",
            (report.before.stats.worlds_sampled + report.after.stats.worlds_sampled) as u64,
        )
        .field_str("stop_reason", report.after.stats.stop_reason.as_str())
        .end_object()
        .end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphRegistry;

    fn engine() -> QueryEngine {
        QueryEngine::new(GraphRegistry::with_builtins(), &EngineConfig::default())
    }

    fn karate_req() -> QueryRequest {
        let mut r = QueryRequest::new("karate");
        r.theta = 64;
        r.k = 3;
        r
    }

    #[test]
    fn miss_then_hit_with_identical_bytes() {
        let e = engine();
        let req = karate_req();
        let (a, src_a) = e.execute(&req).unwrap();
        let (b, src_b) = e.execute(&req).unwrap();
        assert_eq!(src_a, ResponseSource::Miss);
        assert_eq!(src_b, ResponseSource::Hit);
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the cached Arc");
        let s = e.stats();
        assert_eq!(s.computed, 1);
        assert_eq!(s.cache.hits, 1);
        assert_eq!(s.cache.misses, 1);
    }

    #[test]
    fn different_seeds_are_different_entries() {
        let e = engine();
        let mut a = karate_req();
        let mut b = karate_req();
        a.seed = 1;
        b.seed = 2;
        let (ra, _) = e.execute(&a).unwrap();
        let (rb, _) = e.execute(&b).unwrap();
        assert_ne!(ra, rb, "different seeds must not alias in the cache");
        assert_eq!(e.stats().computed, 2);
    }

    #[test]
    fn threads_affect_the_cache_key_and_compute() {
        // Parallel runs draw different worlds (per-worker sub-streams), so a
        // threads=2 request must not alias the serial entry — and it must
        // actually run (previously parallel execution was unreachable here).
        let e = engine();
        let serial = karate_req();
        let mut par = karate_req();
        par.threads = 2;
        let (a, _) = e.execute(&serial).unwrap();
        let (b, src) = e.execute(&par).unwrap();
        assert_eq!(src, ResponseSource::Miss);
        assert_ne!(a, b, "parallel body must differ (worlds + threads field)");
        assert!(String::from_utf8(b.to_vec())
            .unwrap()
            .contains("\"threads\":2"));
        assert_eq!(e.stats().computed, 2);
        // And the engine's live progress fed by the ProgressSink advanced.
        assert_eq!(e.stats().worlds_sampled, 128);
        assert_eq!(e.stats().worlds_requested, 128);
    }

    #[test]
    fn invalid_threads_is_a_bad_request() {
        let e = engine();
        let mut req = karate_req();
        req.threads = 0;
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.threads = 65;
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.threads = 100; // > theta (64) as well
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        assert_eq!(e.stats().computed, 0);
    }

    #[test]
    fn mpds_cache_key_ignores_lm() {
        let e = engine();
        let mut a = karate_req();
        let mut b = karate_req();
        a.lm = 2;
        b.lm = 5;
        e.execute(&a).unwrap();
        let (_, src) = e.execute(&b).unwrap();
        assert_eq!(src, ResponseSource::Hit);
    }

    #[test]
    fn concurrent_identical_queries_compute_once() {
        let e = engine();
        let mut req = karate_req();
        req.theta = 400; // long enough that the 8 racers overlap
        let bodies: Vec<(Arc<Vec<u8>>, ResponseSource)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| e.execute(&req).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(e.stats().computed, 1, "exactly one computation");
        let first = &bodies[0].0;
        for (body, _) in &bodies {
            assert_eq!(body, first, "coalesced bodies must be identical bytes");
        }
        let misses = bodies
            .iter()
            .filter(|(_, s)| *s == ResponseSource::Miss)
            .count();
        assert_eq!(misses, 1, "exactly one leader");
    }

    #[test]
    fn bad_requests_do_not_reach_the_cache() {
        let e = engine();
        let mut req = karate_req();
        req.theta = 0;
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.theta = 64;
        req.dataset = "missing".into();
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.dataset = "karate".into();
        req.notion = "tesseract".into();
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        assert_eq!(e.stats().computed, 0);
        assert_eq!(e.stats().cache.entries, 0);
    }

    #[test]
    fn deadline_zero_times_out_and_is_not_cached() {
        let e = engine();
        let mut req = karate_req();
        req.theta = 100_000;
        req.timeout_ms = Some(0);
        match e.execute(&req) {
            Err(QueryError::DeadlineExceeded { completed_worlds }) => {
                assert_eq!(completed_worlds, 0)
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(e.stats().cache.entries, 0);
        // The same key without the timeout computes normally.
        req.timeout_ms = None;
        req.theta = 32;
        assert!(e.execute(&req).is_ok());
    }

    #[test]
    fn follower_deadline_is_its_own_not_the_leaders() {
        // A follower with a short timeout joining a long unbounded leader
        // must time out on its *own* deadline instead of blocking for the
        // leader's full computation.
        let e = engine();
        let mut leader_req = karate_req();
        leader_req.theta = 600; // several seconds of work in a debug build
        let mut follower_req = leader_req.clone();
        follower_req.timeout_ms = Some(100);
        std::thread::scope(|s| {
            let leader = s.spawn(|| e.execute(&leader_req));
            // Let the leader register as in-flight.
            std::thread::sleep(std::time::Duration::from_millis(150));
            let started = std::time::Instant::now();
            let got = e.execute(&follower_req);
            assert!(
                matches!(got, Err(QueryError::DeadlineExceeded { .. })),
                "follower must 504 on its own deadline, got {got:?}"
            );
            assert!(
                started.elapsed() < std::time::Duration::from_secs(5),
                "follower must not wait out the leader"
            );
            let (_, src) = leader.join().unwrap().unwrap();
            assert_eq!(src, ResponseSource::Miss);
        });
        assert_eq!(e.stats().computed, 1);
    }

    #[test]
    fn update_bumps_generation_and_misses_the_cache() {
        let e = engine();
        let req = karate_req();
        let (gen0_body, src) = e.execute(&req).unwrap();
        assert_eq!(src, ResponseSource::Miss);
        assert_eq!(e.execute(&req).unwrap().1, ResponseSource::Hit);

        // Insert a certain 12-clique (edge density 5.5, present in every
        // world — denser than anything in karate): the next identical
        // request must be a MISS computed against generation 1 and rank the
        // clique first, never the stale cached bytes.
        let mut batch = String::new();
        for a in 100..112 {
            for b in (a + 1)..112 {
                batch.push_str(&format!("{a} {b} 1.0\n"));
            }
        }
        let out = e.apply_update("karate", batch.as_bytes()).unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!(out.inserted, 66);
        assert_eq!(out.nodes_added, 12);
        let (gen1_body, src) = e.execute(&req).unwrap();
        assert_eq!(src, ResponseSource::Miss, "generation changed the key");
        assert_ne!(gen1_body, gen0_body, "different graph, different answer");
        let text = String::from_utf8(gen1_body.to_vec()).unwrap();
        assert!(
            text.contains("\"score\":1.0") && text.contains("100,101,102"),
            "the certain clique must rank first: {text}"
        );
        // And the new generation caches under its own key.
        let (again, src) = e.execute(&req).unwrap();
        assert_eq!(src, ResponseSource::Hit);
        assert_eq!(again, gen1_body);
        assert_eq!(e.stats().computed, 2);
    }

    #[test]
    fn update_render_shape_is_pinned() {
        let o = crate::registry::UpdateOutcome {
            generation: 3,
            inserted: 1,
            reweighted: 2,
            deleted: 0,
            nodes_added: 0,
            shape: (34, 79),
            overlay: 5,
            compactions: 1,
        };
        assert_eq!(
            render_update_response("karate", &o),
            "{\"dataset\":\"karate\",\"generation\":3,\"inserted\":1,\
             \"reweighted\":2,\"deleted\":0,\"nodes_added\":0,\"nodes\":34,\
             \"edges\":79,\"overlay\":5,\"compactions\":1}"
        );
    }

    #[test]
    fn bad_update_is_a_bad_request_and_changes_nothing() {
        let e = engine();
        let req = karate_req();
        e.execute(&req).unwrap();
        let err = e.apply_update("karate", "0 0 0.5\n".as_bytes());
        assert!(matches!(err, Err(QueryError::BadRequest(_))), "{err:?}");
        // Same generation, so the cached entry still serves.
        assert_eq!(e.execute(&req).unwrap().1, ResponseSource::Hit);
    }

    #[test]
    fn nds_and_mpds_render_distinct_shapes() {
        let e = engine();
        let mut req = karate_req();
        let (mpds_body, _) = e.execute(&req).unwrap();
        req.algo = Algo::Nds;
        let (nds_body, _) = e.execute(&req).unwrap();
        let mpds_text = String::from_utf8(mpds_body.to_vec()).unwrap();
        let nds_text = String::from_utf8(nds_body.to_vec()).unwrap();
        assert!(mpds_text.contains("\"score\":\"tau_hat\""));
        assert!(!mpds_text.contains("\"lm\""));
        assert!(nds_text.contains("\"score\":\"gamma_hat\""));
        assert!(nds_text.contains("\"lm\":2"));
    }

    #[test]
    fn render_is_stable_across_processes_in_shape() {
        // Pin the exact serialization of a tiny deterministic payload: the
        // cache, the loopback harness, and external clients all rely on
        // this byte layout never drifting silently.
        let req = QueryRequest::new("karate");
        let payload = ResponsePayload {
            score_name: "tau_hat",
            rows: vec![(vec![1, 3], 0.421875)],
            empty_worlds: 7,
            truncated: false,
            worlds_sampled: 320,
            stop_reason: "completed",
            converged_at: None,
        };
        assert_eq!(
            render_query_response(&req, &payload),
            "{\"dataset\":\"karate\",\"algo\":\"mpds\",\"notion\":\"edge\",\
             \"theta\":320,\"k\":5,\"seed\":42,\"heuristic\":false,\
             \"score\":\"tau_hat\",\"results\":[{\"nodes\":[1,3],\
             \"score\":0.421875}],\"empty_worlds\":7,\"truncated\":false,\
             \"stats\":{\"worlds_sampled\":320,\"stop_reason\":\"completed\"}}"
        );
        // The stable echo and stats extras: stop/window before score,
        // converged_at inside stats, wall_ms only in the CLI variant.
        let mut stable_req = req.clone();
        stable_req.stop = StopSpec::Stable { window: 16 };
        let stable_payload = ResponsePayload {
            worlds_sampled: 112,
            stop_reason: "stable",
            converged_at: Some(96),
            ..payload.clone()
        };
        assert_eq!(
            render_query_response(&stable_req, &stable_payload),
            "{\"dataset\":\"karate\",\"algo\":\"mpds\",\"notion\":\"edge\",\
             \"theta\":320,\"k\":5,\"seed\":42,\"heuristic\":false,\
             \"stop\":\"stable\",\"window\":16,\
             \"score\":\"tau_hat\",\"results\":[{\"nodes\":[1,3],\
             \"score\":0.421875}],\"empty_worlds\":7,\"truncated\":false,\
             \"stats\":{\"worlds_sampled\":112,\"stop_reason\":\"stable\",\
             \"converged_at\":96}}"
        );
        assert!(render_query_response_with_wall(&req, &payload, 12)
            .ends_with("\"stop_reason\":\"completed\",\"wall_ms\":12}}"));
    }

    #[test]
    fn stats_render_contains_shape() {
        let g = ugraph::UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let s = render_stats("demo", &g);
        assert!(s.starts_with("{\"dataset\":\"demo\",\"nodes\":3,\"edges\":2,"));
        assert!(s.contains("\"prob_quartiles\":[0.5,0.5,0.5]"));
    }

    /// A karate batch whose members vary only in `k` (theta 64, defaults
    /// otherwise), plus one NDS member to cross estimators.
    fn karate_batch(ks: &[usize]) -> BatchRequest {
        let mut b = BatchRequest::new("karate");
        b.theta = 64;
        b.members = ks
            .iter()
            .map(|&k| BatchMember {
                k,
                ..BatchMember::default()
            })
            .collect();
        b
    }

    #[test]
    fn batch_members_are_bit_identical_to_standalone_queries() {
        // The whole point of QuerySet: one shared world stream must yield
        // exactly the bytes each member would have produced standalone.
        let batch_engine = engine();
        let standalone_engine = engine();
        let mut req = karate_batch(&[2, 3]);
        req.members.push(BatchMember {
            algo: Algo::Nds,
            k: 4,
            ..BatchMember::default()
        });
        let outcome = batch_engine.execute_batch(&req).unwrap();
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.computed(), 3);
        for (i, m) in req.members.iter().enumerate() {
            let (body, source) = &outcome.results[i];
            assert_eq!(*source, ResponseSource::Miss);
            let (standalone, _) = standalone_engine.execute(&req.member_request(m)).unwrap();
            assert_eq!(**body, *standalone, "member {i} bytes diverged");
        }
        assert_eq!(batch_engine.stats().computed, 3);
    }

    #[test]
    fn batch_populates_the_cache_for_point_queries() {
        let e = engine();
        let req = karate_batch(&[2, 3, 4]);
        let outcome = e.execute_batch(&req).unwrap();
        for (i, m) in req.members.iter().enumerate() {
            let (body, source) = e.execute(&req.member_request(m)).unwrap();
            assert_eq!(source, ResponseSource::Hit, "member {i} should be cached");
            assert!(Arc::ptr_eq(&body, &outcome.results[i].0));
        }
        assert_eq!(e.stats().computed, 3, "point queries recomputed nothing");
    }

    #[test]
    fn batch_serves_already_cached_members_from_the_cache() {
        let e = engine();
        let req = karate_batch(&[2, 3, 4]);
        let (cached, _) = e.execute(&req.member_request(&req.members[1])).unwrap();
        let outcome = e.execute_batch(&req).unwrap();
        assert_eq!(outcome.results[1].1, ResponseSource::Hit);
        assert!(Arc::ptr_eq(&outcome.results[1].0, &cached));
        assert_eq!(outcome.results[0].1, ResponseSource::Miss);
        assert_eq!(outcome.results[2].1, ResponseSource::Miss);
        assert_eq!(outcome.computed(), 2, "only the misses were computed");
    }

    #[test]
    fn batch_duplicate_members_compute_once() {
        let e = engine();
        let req = karate_batch(&[3, 3]);
        let outcome = e.execute_batch(&req).unwrap();
        assert_eq!(outcome.results[0].1, ResponseSource::Miss);
        assert_eq!(outcome.results[1].1, ResponseSource::Coalesced);
        assert_eq!(outcome.results[0].0, outcome.results[1].0);
        assert_eq!(e.stats().computed, 1);
    }

    #[test]
    fn batch_samples_theta_worlds_once_not_per_member() {
        // The amortization claim, measured where the harness measures it:
        // a 4-member batch advances worlds_sampled by θ, not 4θ.
        let e = engine();
        let req = karate_batch(&[2, 3, 4, 5]);
        e.execute_batch(&req).unwrap();
        assert_eq!(e.stats().worlds_sampled, 64);
        assert_eq!(e.stats().worlds_requested, 64);
    }

    #[test]
    fn batch_validation_errors_name_the_member() {
        let e = engine();
        let empty = karate_batch(&[]);
        let err = e.execute_batch(&empty).unwrap_err();
        assert!(matches!(&err, QueryError::BadRequest(m) if m.contains("no members")));
        let mut bad = karate_batch(&[2, 0]);
        bad.members[1].k = 0;
        let err = e.execute_batch(&bad).unwrap_err();
        assert!(matches!(&err, QueryError::BadRequest(m) if m.contains("member 1")));
        assert_eq!(e.stats().computed, 0);
    }

    #[test]
    fn stop_policy_is_part_of_the_cache_key() {
        // A stable-stopped answer is a different answer than the fixed-θ
        // one (different divisor, possibly different sets) — the two must
        // never alias.
        let e = engine();
        let fixed = karate_req();
        let mut stable = karate_req();
        stable.stop = StopSpec::Stable { window: 8 };
        let (a, _) = e.execute(&fixed).unwrap();
        let (b, src) = e.execute(&stable).unwrap();
        assert_eq!(src, ResponseSource::Miss);
        assert_ne!(a, b);
        let text = String::from_utf8(b.to_vec()).unwrap();
        assert!(text.contains("\"stop\":\"stable\",\"window\":8"), "{text}");
        assert!(
            text.contains("\"stop_reason\":\"stable\"")
                || text.contains("\"stop_reason\":\"completed\""),
            "{text}"
        );
        assert_eq!(e.stats().computed, 2);
        // And the stable entry itself is cached.
        assert_eq!(e.execute(&stable).unwrap().1, ResponseSource::Hit);
    }

    #[test]
    fn stable_with_threads_or_bad_window_is_a_bad_request() {
        let e = engine();
        let mut req = karate_req();
        req.stop = StopSpec::Stable { window: 0 };
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.stop = StopSpec::Stable { window: 8 };
        req.threads = 2;
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        req.threads = 1;
        req.stop = StopSpec::Stable { window: 100 }; // > theta (64)
        assert!(matches!(e.execute(&req), Err(QueryError::BadRequest(_))));
        assert_eq!(e.stats().computed, 0);
    }

    #[test]
    fn expired_budget_returns_200_bytes_then_refines_to_convergence() {
        // The anytime contract end to end: a hopeless budget still returns
        // a best-so-far body (never an error), the truncated bytes are
        // cached, and the background refinement soon republishes the
        // converged fixed-θ answer under the *same* key.
        let e = engine();
        let mut req = karate_req();
        req.budget_ms = Some(0);
        let (body, src) = e.execute(&req).unwrap();
        assert_eq!(src, ResponseSource::Miss);
        let text = String::from_utf8(body.to_vec()).unwrap();
        assert!(text.contains("\"stop_reason\":\"budget\""), "{text}");
        // The converged body the refinement must converge to.
        let full_engine = engine();
        let mut full = req.clone();
        full.budget_ms = None;
        let (want, _) = full_engine.execute(&full).unwrap();
        // Poll the cache: a repeat of the *budgeted* request must flip to a
        // HIT of the refined (converged) bytes.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (got, src) = e.execute(&req).unwrap();
            if src == ResponseSource::Hit && *got == *want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "refinement did not land; last body: {}",
                String::from_utf8_lossy(&got)
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(e.stats().refined >= 1);
    }

    #[test]
    fn diff_of_a_dataset_against_itself_is_unchanged() {
        // Same dataset on both sides of the CRN stream: every world is
        // identical, so the report must be a perfect no-op.
        let e = engine();
        let req = karate_req();
        let body = String::from_utf8(e.execute_diff(&req, "karate").unwrap()).unwrap();
        assert!(body.contains("\"dataset\":\"karate\",\"against\":\"karate\""));
        assert!(body.contains("\"entered\":[]"));
        assert!(body.contains("\"left\":[]"));
        assert!(body.contains("\"unchanged\":true"));
        assert!(body.contains("\"max_abs_score_delta\":0"));
    }

    #[test]
    fn diff_rejects_threads_and_unknown_baselines() {
        let e = engine();
        let mut req = karate_req();
        req.threads = 2;
        let err = e.execute_diff(&req, "karate").unwrap_err();
        assert!(matches!(&err, QueryError::BadRequest(m) if m.contains("serially")));
        let err = e
            .execute_diff(&karate_req(), "no-such-dataset")
            .unwrap_err();
        assert!(matches!(err, QueryError::BadRequest(_)));
    }
}
