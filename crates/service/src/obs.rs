//! HTTP-layer observability: the per-endpoint latency histogram bank and
//! structured access-log records.
//!
//! The serving engine already owns its own counters ([`crate::engine::EngineObs`]);
//! this module covers the front end. Request latency is recorded into one
//! [`Histogram`] per `(endpoint, cache source, status class)` combination —
//! a flat bank of atomics, so recording is lock-free and a `/metrics`
//! scrape never blocks a worker. Access-log lines are rendered through the
//! same deterministic [`JsonWriter`] as every response body.

use crate::json::JsonWriter;
use mpds_obs::{BucketExemplars, ExemplarSnapshot, Gauge, Histogram, HistogramSnapshot};

/// The served endpoints, as latency-metric label values.
///
/// `Other` covers 404s, bad request lines, and method mismatches — traffic
/// that never resolved to a real route but still consumed a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /` and `GET /healthz`.
    Healthz,
    /// `GET /datasets`.
    Datasets,
    /// `GET /dataset`.
    Dataset,
    /// `GET /query`.
    Query,
    /// `POST /batch`.
    Batch,
    /// `GET /diff`.
    Diff,
    /// `POST /update`.
    Update,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/*` introspection (requests, slow, trace lookup) — one
    /// bounded-cardinality label for the whole family.
    Debug,
    /// Anything that matched no route.
    Other,
}

impl Endpoint {
    /// Number of endpoint labels (the length of [`Endpoint::ALL`]).
    pub const COUNT: usize = 10;

    /// Every endpoint label.
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Healthz,
        Endpoint::Datasets,
        Endpoint::Dataset,
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Diff,
        Endpoint::Update,
        Endpoint::Metrics,
        Endpoint::Debug,
        Endpoint::Other,
    ];

    /// Maps a request path (no query string) to its endpoint label.
    pub fn classify(path: &str) -> Endpoint {
        if path == "/debug" || path.starts_with("/debug/") {
            return Endpoint::Debug;
        }
        match path {
            "/" | "/healthz" => Endpoint::Healthz,
            "/datasets" => Endpoint::Datasets,
            "/dataset" => Endpoint::Dataset,
            "/query" => Endpoint::Query,
            "/batch" => Endpoint::Batch,
            "/diff" => Endpoint::Diff,
            "/update" => Endpoint::Update,
            "/metrics" => Endpoint::Metrics,
            _ => Endpoint::Other,
        }
    }

    /// The stable label value used in metrics and access logs.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Datasets => "datasets",
            Endpoint::Dataset => "dataset",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Diff => "diff",
            Endpoint::Update => "update",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }

    /// Whether this endpoint is the server observing itself (`/metrics`
    /// scrapes, `/debug/*` introspection) — excluded from the slow-query
    /// ring so self-traffic cannot crowd out real slow queries.
    pub fn is_self_observation(self) -> bool {
        matches!(self, Endpoint::Metrics | Endpoint::Debug)
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Datasets => 1,
            Endpoint::Dataset => 2,
            Endpoint::Query => 3,
            Endpoint::Batch => 4,
            Endpoint::Diff => 5,
            Endpoint::Update => 6,
            Endpoint::Metrics => 7,
            Endpoint::Debug => 8,
            Endpoint::Other => 9,
        }
    }
}

/// Where a response's bytes came from, as a latency-metric label.
///
/// Mirrors the `X-Cache` header values; `None` labels endpoints that have
/// no result cache (everything except `/query`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceLabel {
    /// Served from the result cache (`X-Cache: HIT`).
    Hit,
    /// Computed by this request (`X-Cache: MISS`).
    Miss,
    /// Joined an identical in-flight computation (`X-Cache: COALESCED`).
    Coalesced,
    /// No cache involved (non-`/query` endpoints and error responses).
    None,
}

impl SourceLabel {
    /// Number of source labels (the length of [`SourceLabel::ALL`]).
    pub const COUNT: usize = 4;

    /// Every source label.
    pub const ALL: [SourceLabel; SourceLabel::COUNT] = [
        SourceLabel::Hit,
        SourceLabel::Miss,
        SourceLabel::Coalesced,
        SourceLabel::None,
    ];

    /// Maps an `X-Cache` header value (if any) to its label.
    pub fn from_header(x_cache: Option<&str>) -> SourceLabel {
        match x_cache {
            Some("HIT") => SourceLabel::Hit,
            Some("MISS") => SourceLabel::Miss,
            Some("COALESCED") => SourceLabel::Coalesced,
            _ => SourceLabel::None,
        }
    }

    /// The stable label value used in metrics and access logs.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceLabel::Hit => "HIT",
            SourceLabel::Miss => "MISS",
            SourceLabel::Coalesced => "COALESCED",
            SourceLabel::None => "NONE",
        }
    }

    fn index(self) -> usize {
        match self {
            SourceLabel::Hit => 0,
            SourceLabel::Miss => 1,
            SourceLabel::Coalesced => 2,
            SourceLabel::None => 3,
        }
    }
}

/// HTTP status class, as a latency-metric label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatusClass {
    /// 200–299.
    Success,
    /// 400–499.
    ClientError,
    /// 500–599.
    ServerError,
    /// Anything else (this server emits none today).
    Other,
}

impl StatusClass {
    /// Number of status classes (the length of [`StatusClass::ALL`]).
    pub const COUNT: usize = 4;

    /// Every status class.
    pub const ALL: [StatusClass; StatusClass::COUNT] = [
        StatusClass::Success,
        StatusClass::ClientError,
        StatusClass::ServerError,
        StatusClass::Other,
    ];

    /// Maps a numeric status code to its class.
    pub fn from_status(status: u16) -> StatusClass {
        match status / 100 {
            2 => StatusClass::Success,
            4 => StatusClass::ClientError,
            5 => StatusClass::ServerError,
            _ => StatusClass::Other,
        }
    }

    /// The stable label value used in metrics and access logs.
    pub fn as_str(self) -> &'static str {
        match self {
            StatusClass::Success => "2xx",
            StatusClass::ClientError => "4xx",
            StatusClass::ServerError => "5xx",
            StatusClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            StatusClass::Success => 0,
            StatusClass::ClientError => 1,
            StatusClass::ServerError => 2,
            StatusClass::Other => 3,
        }
    }
}

/// The front end's lock-free metric state: one latency [`Histogram`] per
/// `(endpoint, source, status class)` plus the in-flight request gauge.
#[derive(Debug)]
pub struct HttpObs {
    bank: Vec<Histogram>,
    exemplars: Vec<BucketExemplars>,
    /// Requests currently being read, routed, or written.
    pub inflight: Gauge,
}

impl Default for HttpObs {
    fn default() -> Self {
        HttpObs::new()
    }
}

impl HttpObs {
    /// Creates the bank with every histogram empty.
    pub fn new() -> Self {
        let cells = Endpoint::COUNT * SourceLabel::COUNT * StatusClass::COUNT;
        HttpObs {
            bank: (0..cells).map(|_| Histogram::new()).collect(),
            exemplars: (0..cells).map(|_| BucketExemplars::new()).collect(),
            inflight: Gauge::new(),
        }
    }

    fn cell(endpoint: Endpoint, source: SourceLabel, class: StatusClass) -> usize {
        (endpoint.index() * SourceLabel::COUNT + source.index()) * StatusClass::COUNT
            + class.index()
    }

    /// Records one request's wall time (microseconds) into its series.
    pub fn record(&self, endpoint: Endpoint, source: SourceLabel, status: u16, wall_us: u64) {
        self.record_traced(endpoint, source, status, wall_us, 0);
    }

    /// Records one request's wall time and remembers its trace id as the
    /// latency bucket's exemplar. A zero `trace_id` records the sample
    /// without touching the exemplar slot.
    pub fn record_traced(
        &self,
        endpoint: Endpoint,
        source: SourceLabel,
        status: u16,
        wall_us: u64,
        trace_id: u64,
    ) {
        let class = StatusClass::from_status(status);
        let cell = Self::cell(endpoint, source, class);
        self.bank[cell].record(wall_us);
        self.exemplars[cell].observe(wall_us, trace_id);
    }

    /// The per-bucket exemplar snapshot for one series, for the `/metrics`
    /// Prometheus renderer to pair with the matching histogram snapshot.
    pub fn exemplars(
        &self,
        endpoint: Endpoint,
        source: SourceLabel,
        class: StatusClass,
    ) -> ExemplarSnapshot {
        self.exemplars[Self::cell(endpoint, source, class)].snapshot()
    }

    /// The histogram backing one `(endpoint, source, class)` series.
    pub fn histogram(
        &self,
        endpoint: Endpoint,
        source: SourceLabel,
        class: StatusClass,
    ) -> &Histogram {
        &self.bank[Self::cell(endpoint, source, class)]
    }

    /// Snapshots every series that has recorded at least one request —
    /// the `/metrics` Prometheus renderer emits only these, keeping the
    /// exposition proportional to observed traffic rather than the full
    /// 160-cell bank.
    pub fn series(&self) -> Vec<(Endpoint, SourceLabel, StatusClass, HistogramSnapshot)> {
        let mut out = Vec::new();
        for e in Endpoint::ALL {
            for s in SourceLabel::ALL {
                for c in StatusClass::ALL {
                    let snap = self.bank[Self::cell(e, s, c)].snapshot();
                    if snap.count() > 0 {
                        out.push((e, s, c, snap));
                    }
                }
            }
        }
        out
    }
}

/// One access-log line's fields. Optional fields are omitted from the
/// rendered JSON when absent, so a line carries exactly what was known.
#[derive(Debug, Default)]
pub struct AccessRecord<'a> {
    /// Monotonic per-process request id.
    pub id: u64,
    /// The request's flight-recorder trace id (16 lowercase hex digits),
    /// when tracing minted one.
    pub trace_id: Option<&'a str>,
    /// Endpoint label (see [`Endpoint::as_str`]).
    pub endpoint: &'a str,
    /// Request method (`GET`/`POST`), when the request line parsed.
    pub method: Option<&'a str>,
    /// Response status code.
    pub status: u16,
    /// `X-Cache` provenance for `/query` responses.
    pub source: Option<&'a str>,
    /// Dataset the request addressed, when the route resolved one.
    pub dataset: Option<&'a str>,
    /// Dataset generation served against (`/query` only).
    pub generation: Option<u64>,
    /// Estimator stop reason scraped from the response body.
    pub stop_reason: Option<&'a str>,
    /// Worlds sampled, scraped from the response body.
    pub worlds_sampled: Option<u64>,
    /// End-to-end wall time in microseconds (read → route → write).
    pub wall_us: u64,
}

/// Renders one access-log record as a single JSON line (no trailing
/// newline). Field order is fixed; absent optionals are omitted.
///
/// ```
/// use mpds_service::obs::{render_access_record, AccessRecord};
/// let line = render_access_record(&AccessRecord {
///     id: 7,
///     endpoint: "healthz",
///     method: Some("GET"),
///     status: 200,
///     wall_us: 120,
///     ..AccessRecord::default()
/// });
/// assert_eq!(
///     line,
///     r#"{"id":7,"endpoint":"healthz","method":"GET","status":200,"wall_us":120}"#
/// );
/// ```
pub fn render_access_record(r: &AccessRecord) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_uint("id", r.id);
    if let Some(t) = r.trace_id {
        w.field_str("trace_id", t);
    }
    w.field_str("endpoint", r.endpoint);
    if let Some(m) = r.method {
        w.field_str("method", m);
    }
    w.field_uint("status", r.status as u64);
    if let Some(s) = r.source {
        w.field_str("source", s);
    }
    if let Some(d) = r.dataset {
        w.field_str("dataset", d);
    }
    if let Some(g) = r.generation {
        w.field_uint("generation", g);
    }
    if let Some(s) = r.stop_reason {
        w.field_str("stop_reason", s);
    }
    if let Some(n) = r.worlds_sampled {
        w.field_uint("worlds_sampled", n);
    }
    w.field_uint("wall_us", r.wall_us).end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_every_route() {
        assert_eq!(Endpoint::classify("/"), Endpoint::Healthz);
        assert_eq!(Endpoint::classify("/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::classify("/datasets"), Endpoint::Datasets);
        assert_eq!(Endpoint::classify("/dataset"), Endpoint::Dataset);
        assert_eq!(Endpoint::classify("/query"), Endpoint::Query);
        assert_eq!(Endpoint::classify("/batch"), Endpoint::Batch);
        assert_eq!(Endpoint::classify("/diff"), Endpoint::Diff);
        assert_eq!(Endpoint::classify("/update"), Endpoint::Update);
        assert_eq!(Endpoint::classify("/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::classify("/debug"), Endpoint::Debug);
        assert_eq!(Endpoint::classify("/debug/requests"), Endpoint::Debug);
        assert_eq!(Endpoint::classify("/debug/slow"), Endpoint::Debug);
        assert_eq!(
            Endpoint::classify("/debug/trace/00000000000000ab"),
            Endpoint::Debug
        );
        assert_eq!(Endpoint::classify("/debuggery"), Endpoint::Other);
        assert_eq!(Endpoint::classify("/nope"), Endpoint::Other);
        assert!(Endpoint::Debug.is_self_observation());
        assert!(Endpoint::Metrics.is_self_observation());
        assert!(!Endpoint::Query.is_self_observation());
    }

    #[test]
    fn label_indices_are_bijective() {
        // Every (endpoint, source, class) triple maps to a distinct cell.
        let mut seen = std::collections::HashSet::new();
        for e in Endpoint::ALL {
            for s in SourceLabel::ALL {
                for c in StatusClass::ALL {
                    assert!(seen.insert(HttpObs::cell(e, s, c)));
                }
            }
        }
        assert_eq!(
            seen.len(),
            Endpoint::COUNT * SourceLabel::COUNT * StatusClass::COUNT
        );
        assert_eq!(
            seen.into_iter().max().unwrap() + 1,
            HttpObs::new().bank.len()
        );
    }

    #[test]
    fn source_label_round_trips_the_header() {
        assert_eq!(SourceLabel::from_header(Some("HIT")), SourceLabel::Hit);
        assert_eq!(SourceLabel::from_header(Some("MISS")), SourceLabel::Miss);
        assert_eq!(
            SourceLabel::from_header(Some("COALESCED")),
            SourceLabel::Coalesced
        );
        assert_eq!(SourceLabel::from_header(None), SourceLabel::None);
        assert_eq!(SourceLabel::from_header(Some("weird")), SourceLabel::None);
    }

    #[test]
    fn status_classes() {
        assert_eq!(StatusClass::from_status(200), StatusClass::Success);
        assert_eq!(StatusClass::from_status(204), StatusClass::Success);
        assert_eq!(StatusClass::from_status(400), StatusClass::ClientError);
        assert_eq!(StatusClass::from_status(404), StatusClass::ClientError);
        assert_eq!(StatusClass::from_status(503), StatusClass::ServerError);
        assert_eq!(StatusClass::from_status(302), StatusClass::Other);
    }

    #[test]
    fn record_lands_in_the_right_series_and_series_skips_empties() {
        let obs = HttpObs::new();
        obs.record(Endpoint::Query, SourceLabel::Hit, 200, 150);
        obs.record(Endpoint::Query, SourceLabel::Hit, 200, 250);
        obs.record(Endpoint::Query, SourceLabel::Miss, 504, 9_000);
        let series = obs.series();
        assert_eq!(series.len(), 2);
        let (e, s, c, snap) = series[0];
        assert_eq!(
            (e, s, c, snap.count()),
            (Endpoint::Query, SourceLabel::Hit, StatusClass::Success, 2)
        );
        assert_eq!(snap.sum(), 400);
        let (e, s, c, snap) = series[1];
        assert_eq!(
            (e, s, c, snap.count()),
            (
                Endpoint::Query,
                SourceLabel::Miss,
                StatusClass::ServerError,
                1
            )
        );
        assert_eq!(snap.sum(), 9_000);
        let direct = obs
            .histogram(Endpoint::Query, SourceLabel::Hit, StatusClass::Success)
            .snapshot();
        assert_eq!(direct.count(), 2);
    }

    #[test]
    fn traced_records_leave_exemplars_in_the_right_cell() {
        let obs = HttpObs::new();
        obs.record_traced(Endpoint::Query, SourceLabel::Miss, 200, 300, 0xbeef);
        let ex = obs.exemplars(Endpoint::Query, SourceLabel::Miss, StatusClass::Success);
        let (trace, value) = ex.get(mpds_obs::bucket_index(300)).unwrap();
        assert_eq!((trace, value), (0xbeef, 300));
        // Zero trace ids record the sample but never claim an exemplar slot.
        obs.record(Endpoint::Query, SourceLabel::Hit, 200, 300);
        assert!(obs
            .exemplars(Endpoint::Query, SourceLabel::Hit, StatusClass::Success)
            .is_empty());
    }

    #[test]
    fn access_record_with_all_fields_pins_its_layout() {
        let line = render_access_record(&AccessRecord {
            id: 42,
            trace_id: Some("00000000000000ab"),
            endpoint: "query",
            method: Some("GET"),
            status: 200,
            source: Some("MISS"),
            dataset: Some("karate"),
            generation: Some(3),
            stop_reason: Some("fixed_theta"),
            worlds_sampled: Some(320),
            wall_us: 12_345,
        });
        assert_eq!(
            line,
            concat!(
                r#"{"id":42,"trace_id":"00000000000000ab","endpoint":"query","#,
                r#""method":"GET","status":200,"#,
                r#""source":"MISS","dataset":"karate","generation":3,"#,
                r#""stop_reason":"fixed_theta","worlds_sampled":320,"wall_us":12345}"#
            )
        );
        // The line is itself valid JSON under the workspace parser.
        assert!(crate::json::JsonValue::parse(&line).is_ok());
    }
}
