//! `mpds-service`: a concurrent query-serving subsystem for the MPDS/NDS
//! estimators.
//!
//! The batch pipeline (`mpds-cli mpds …`) pays dataset construction plus a
//! full θ-world estimator run per invocation. This crate turns that into a
//! serving layer exploiting the estimators' central operational property:
//! **results are deterministic given `(dataset, algo, notion, θ, k, l_m,
//! seed, heuristic, threads)`** — so repeats are cacheable forever and
//! identical concurrent queries are coalesceable into one computation.
//!
//! Layers (each usable on its own):
//!
//! * [`registry`] — named datasets (built-ins + weighted-edge-list files)
//!   constructed once, build-coalesced, served as generation-stamped
//!   `Arc` snapshots and mutable through atomic `/update` batches
//!   ([`ugraph::dynamic`]);
//! * [`engine`] — typed [`engine::QueryRequest`]/deterministic JSON
//!   responses, per-request deadlines via [`mpds::control`], a sharded LRU
//!   result [`cache`] keyed on the dataset generation (stale entries age
//!   out, never get served), in-flight request coalescing, batch
//!   evaluation ([`engine::BatchRequest`] → one [`mpds::QuerySet`] world
//!   stream shared across every cache-missing member), and common-random-
//!   number diffs between two datasets ([`engine::QueryEngine::execute_diff`]);
//! * [`http`] — a std-only thread-pool HTTP/1.1 front end with a bounded
//!   admission queue (503 on overload), gated `POST /update`, `POST
//!   /batch` + `GET /diff` endpoints, and cooperative-cancel shutdown;
//! * [`obs`] — the front end's observability surface: per
//!   `(endpoint, cache source, status class)` latency histograms
//!   ([`mpds_obs`] under the hood), the in-flight gauge, and JSONL
//!   access-log records (`serve --access-log`); `/metrics` exposes it all
//!   in both the legacy JSON body and Prometheus text exposition;
//! * durability ([`mpds_store`]) — `serve --data-dir` gives every mutable
//!   dataset a per-dataset write-ahead log (fsync-on-commit by default)
//!   plus snapshot checkpoints (`POST /admin/checkpoint`, `mpds-cli
//!   checkpoint`), and boot replays checkpoint + WAL tail back to the
//!   exact pre-crash generation;
//! * [`harness`] — the loopback load + churn + batch + kill-recover
//!   harnesses behind `BENCH_pr3.json` / `BENCH_pr5.json` /
//!   `BENCH_pr6.json` / `BENCH_pr9.json` and the CI `service-smoke` /
//!   `churn-smoke` / `batch-smoke` / `durability-smoke` jobs;
//! * [`json`] — the byte-stable JSON writer everything serializes through
//!   (the vendored serde is a no-op shim; determinism is asserted, not
//!   hoped for).

pub mod cache;
pub mod engine;
pub mod harness;
pub mod http;
pub mod json;
pub mod obs;
pub mod registry;

pub use engine::{
    Algo, BatchMember, BatchOutcome, BatchRequest, EngineConfig, QueryEngine, QueryError,
    QueryRequest, ResponseSource,
};
pub use http::{Server, ServerConfig};
pub use registry::GraphRegistry;
