//! Minimal deterministic JSON writer.
//!
//! The vendored `serde` is a marker-trait shim (see `vendor/README.md`), so
//! the service serializes by hand. Determinism is the point, not a
//! limitation: the cache and the load harness both assert that identical
//! queries produce **bytewise-identical** response bodies, so every field is
//! emitted in a fixed order with a fixed float formatting (Rust's shortest
//! round-trip `{}`), no maps with nondeterministic iteration order anywhere.

/// Incremental writer for one JSON document.
///
/// Objects and arrays are driven by the caller (`begin_object` / `key` /
/// `end_object`, …); commas are inserted automatically. The writer does not
/// validate nesting — it is an internal tool for fixed response shapes, and
/// the unit tests pin those shapes.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next value at each nesting level needs a leading comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Finishes the document and returns the bytes.
    pub fn finish(self) -> String {
        self.buf
    }

    fn before_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emits an object key. The following call must emit its value.
    pub fn key(&mut self, name: &str) -> &mut Self {
        self.before_value();
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
        // The value that follows the key must not get a comma of its own.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.before_value();
        write_escaped(&mut self.buf, value);
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint(&mut self, value: u64) -> &mut Self {
        self.before_value();
        self.buf.push_str(&value.to_string());
        self
    }

    /// Emits a float value with Rust's shortest round-trip formatting
    /// (non-finite values, which valid responses never contain, become
    /// `null`).
    pub fn float(&mut self, value: f64) -> &mut Self {
        self.before_value();
        if value.is_finite() {
            let s = format!("{value}");
            // `{}` prints integral floats without a dot; keep them floats.
            self.buf.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn boolean(&mut self, value: bool) -> &mut Self {
        self.before_value();
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Convenience: `key` + `string`.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name).string(value)
    }

    /// Convenience: `key` + `uint`.
    pub fn field_uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name).uint(value)
    }

    /// Convenience: `key` + `float`.
    pub fn field_float(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name).float(value)
    }

    /// Convenience: `key` + `boolean`.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name).boolean(value)
    }
}

/// Writes `s` as a JSON string literal (quotes + escapes) into `out`.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a one-field error document: `{"error":"..."}`.
pub fn error_body(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().field_str("error", message).end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_shape() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "a\"b")
            .field_uint("n", 3)
            .key("results")
            .begin_array();
        for (nodes, score) in [(vec![1u64, 3], 0.42), (vec![2], 0.5)] {
            w.begin_object().key("nodes").begin_array();
            for v in nodes {
                w.uint(v);
            }
            w.end_array().field_float("score", score).end_object();
        }
        w.end_array().field_bool("ok", true).end_object();
        assert_eq!(
            w.finish(),
            "{\"name\":\"a\\\"b\",\"n\":3,\"results\":[{\"nodes\":[1,3],\"score\":0.42},{\"nodes\":[2],\"score\":0.5}],\"ok\":true}"
        );
    }

    #[test]
    fn floats_stay_floats_and_escapes_cover_controls() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_float("one", 1.0)
            .field_float("nan", f64::NAN)
            .field_str("ctl", "a\u{1}\tb")
            .end_object();
        assert_eq!(
            w.finish(),
            "{\"one\":1.0,\"nan\":null,\"ctl\":\"a\\u0001\\tb\"}"
        );
    }

    #[test]
    fn error_body_shape() {
        assert_eq!(error_body("bad"), "{\"error\":\"bad\"}");
    }
}
