//! Minimal deterministic JSON writer and a small recursive-descent parser.
//!
//! The vendored `serde` is a marker-trait shim (see `vendor/README.md`), so
//! the service serializes by hand. Determinism is the point, not a
//! limitation: the cache and the load harness both assert that identical
//! queries produce **bytewise-identical** response bodies, so every field is
//! emitted in a fixed order with a fixed float formatting (Rust's shortest
//! round-trip `{}`), no maps with nondeterministic iteration order anywhere.
//!
//! The parser ([`JsonValue::parse`]) exists for the one endpoint that takes
//! a JSON request body, `POST /batch`. It keeps numbers as raw text so a
//! 64-bit seed survives without a detour through `f64`, and it preserves
//! object key order (batch members are positional).

/// Incremental writer for one JSON document.
///
/// Objects and arrays are driven by the caller (`begin_object` / `key` /
/// `end_object`, …); commas are inserted automatically. The writer does not
/// validate nesting — it is an internal tool for fixed response shapes, and
/// the unit tests pin those shapes.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next value at each nesting level needs a leading comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Finishes the document and returns the bytes.
    pub fn finish(self) -> String {
        self.buf
    }

    fn before_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emits an object key. The following call must emit its value.
    pub fn key(&mut self, name: &str) -> &mut Self {
        self.before_value();
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
        // The value that follows the key must not get a comma of its own.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.before_value();
        write_escaped(&mut self.buf, value);
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint(&mut self, value: u64) -> &mut Self {
        self.before_value();
        self.buf.push_str(&value.to_string());
        self
    }

    /// Emits a float value with Rust's shortest round-trip formatting
    /// (non-finite values, which valid responses never contain, become
    /// `null`).
    pub fn float(&mut self, value: f64) -> &mut Self {
        self.before_value();
        if value.is_finite() {
            let s = format!("{value}");
            // `{}` prints integral floats without a dot; keep them floats.
            self.buf.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn boolean(&mut self, value: bool) -> &mut Self {
        self.before_value();
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Convenience: `key` + `string`.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name).string(value)
    }

    /// Convenience: `key` + `uint`.
    pub fn field_uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name).uint(value)
    }

    /// Convenience: `key` + `float`.
    pub fn field_float(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name).float(value)
    }

    /// Convenience: `key` + `boolean`.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name).boolean(value)
    }

    /// Splices pre-rendered JSON in as one value, verbatim. The batch
    /// envelope uses this to embed member response bodies byte-for-byte as
    /// they would be served by `/query` — the property the e2e tests pin.
    pub fn raw(&mut self, rendered: &str) -> &mut Self {
        self.before_value();
        self.buf.push_str(rendered);
        self
    }
}

/// Writes `s` as a JSON string literal (quotes + escapes) into `out`.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders the unified error document shared by every endpoint:
/// `{"error":{"code":"...","reason":"..."},"reason":"..."}`.
///
/// `code` is a stable machine vocabulary (`bad_request`, `not_found`,
/// `method_not_allowed`, `forbidden`, `overloaded`, `deadline_exceeded`,
/// `cancelled`, `internal`); `reason` is the human-readable message. The
/// top-level `"reason"` duplicates the nested one for clients that still
/// read the old flat shape — kept for one release, then dropped.
pub fn error_body(code: &str, reason: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("error")
        .begin_object()
        .field_str("code", code)
        .field_str("reason", reason)
        .end_object()
        .field_str("reason", reason)
        .end_object();
    w.finish()
}

/// A parsed JSON value. Numbers stay raw text (see module doc); objects are
/// ordered key/value lists (duplicate keys are rejected by the accessors).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing data at byte {at}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` for missing keys and non-objects.
    /// Duplicate keys are an error (a request must not smuggle two values
    /// past a first-match lookup).
    pub fn get(&self, key: &str) -> Result<Option<&JsonValue>, String> {
        let JsonValue::Object(fields) = self else {
            return Ok(None);
        };
        let mut found = None;
        for (k, v) in fields {
            if k == key {
                if found.is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                found = Some(v);
            }
        }
        Ok(found)
    }

    /// The value as a string, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }

    /// The value as a `u64` (digits only — floats and signs are errors).
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JsonValue::Number(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what}: expected an unsigned integer, got {raw}")),
            other => Err(format!("{what}: expected a number, got {other:?}")),
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self, what: &str) -> Result<usize, String> {
        self.as_u64(what).map(|v| v as usize)
    }

    /// The value as a boolean.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected a boolean, got {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while let Some(b) = bytes.get(*at) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], at: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*at) == Some(&want) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {at}", want as char))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, at),
        Some(b'[') => parse_array(bytes, at),
        Some(b'"') => parse_string(bytes, at).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, at, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, at, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, at, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, at),
    }
}

fn parse_literal(
    bytes: &[u8],
    at: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {at}"))
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, at, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        expect(bytes, at, b':')?;
        let value = parse_value(bytes, at)?;
        fields.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {at}")),
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {at}")),
        }
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*at + 1..*at + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Basic-plane only; surrogate pairs are not request
                        // vocabulary (dataset names are ASCII-ish).
                        out.push(char::from_u32(code).ok_or(format!("bad \\u escape {hex}"))?);
                        *at += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*at..])
                    .map_err(|_| "string is not UTF-8".to_string())?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err("unescaped control character in string".to_string());
                }
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while matches!(
        bytes.get(*at),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *at += 1;
    }
    if *at == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*at]).unwrap();
    // Validate by round-tripping through f64 (raw text is what callers use).
    raw.parse::<f64>()
        .map_err(|_| format!("bad number {raw:?}"))?;
    Ok(JsonValue::Number(raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_shape() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "a\"b")
            .field_uint("n", 3)
            .key("results")
            .begin_array();
        for (nodes, score) in [(vec![1u64, 3], 0.42), (vec![2], 0.5)] {
            w.begin_object().key("nodes").begin_array();
            for v in nodes {
                w.uint(v);
            }
            w.end_array().field_float("score", score).end_object();
        }
        w.end_array().field_bool("ok", true).end_object();
        assert_eq!(
            w.finish(),
            "{\"name\":\"a\\\"b\",\"n\":3,\"results\":[{\"nodes\":[1,3],\"score\":0.42},{\"nodes\":[2],\"score\":0.5}],\"ok\":true}"
        );
    }

    #[test]
    fn floats_stay_floats_and_escapes_cover_controls() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_float("one", 1.0)
            .field_float("nan", f64::NAN)
            .field_str("ctl", "a\u{1}\tb")
            .end_object();
        assert_eq!(
            w.finish(),
            "{\"one\":1.0,\"nan\":null,\"ctl\":\"a\\u0001\\tb\"}"
        );
    }

    #[test]
    fn error_body_shape() {
        // Nested typed error plus the one-release top-level alias. No
        // duplicate keys: `error` is an object, `reason` appears once at
        // each level.
        assert_eq!(
            error_body("bad_request", "bad"),
            "{\"error\":{\"code\":\"bad_request\",\"reason\":\"bad\"},\"reason\":\"bad\"}"
        );
        // The alias must stay parseable by the strict duplicate-rejecting
        // parser (the loopback tests read error bodies through it).
        let doc = JsonValue::parse(&error_body("internal", "boom")).unwrap();
        assert_eq!(
            doc.get("error")
                .unwrap()
                .unwrap()
                .get("code")
                .unwrap()
                .unwrap()
                .as_str("code")
                .unwrap(),
            "internal"
        );
        assert_eq!(
            doc.get("reason")
                .unwrap()
                .unwrap()
                .as_str("reason")
                .unwrap(),
            "boom"
        );
    }

    #[test]
    fn raw_splices_verbatim_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object().key("results").begin_array();
        w.raw("{\"a\":1}").raw("{\"b\":2.5}");
        w.end_array().field_uint("n", 2).end_object();
        assert_eq!(w.finish(), "{\"results\":[{\"a\":1},{\"b\":2.5}],\"n\":2}");
    }

    #[test]
    fn parser_round_trips_a_batch_shaped_document() {
        let doc = JsonValue::parse(
            "{\"dataset\":\"karate\",\"theta\":64,\"seed\":18446744073709551615,\
             \"members\":[{\"algo\":\"mpds\",\"k\":3},{\"algo\":\"nds\",\"lm\":2}]}",
        )
        .unwrap();
        assert_eq!(
            doc.get("dataset")
                .unwrap()
                .unwrap()
                .as_str("dataset")
                .unwrap(),
            "karate"
        );
        assert_eq!(
            doc.get("theta")
                .unwrap()
                .unwrap()
                .as_usize("theta")
                .unwrap(),
            64
        );
        // u64::MAX survives: numbers are raw text, never f64.
        assert_eq!(
            doc.get("seed").unwrap().unwrap().as_u64("seed").unwrap(),
            u64::MAX
        );
        let members = doc
            .get("members")
            .unwrap()
            .unwrap()
            .as_array("members")
            .unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[1]
                .get("lm")
                .unwrap()
                .unwrap()
                .as_usize("lm")
                .unwrap(),
            2
        );
        assert_eq!(doc.get("absent").unwrap(), None);
    }

    #[test]
    fn parser_handles_strings_escapes_and_whitespace() {
        let doc = JsonValue::parse(
            " { \"s\" : \"a\\n\\\"b\\u0041\" , \"t\" : true , \
                                    \"nil\" : null , \"xs\" : [ 1 , -2.5e1 ] } ",
        )
        .unwrap();
        assert_eq!(
            doc.get("s").unwrap().unwrap().as_str("s").unwrap(),
            "a\n\"bA"
        );
        assert!(doc.get("t").unwrap().unwrap().as_bool("t").unwrap());
        assert_eq!(doc.get("nil").unwrap(), Some(&JsonValue::Null));
        let xs = doc.get("xs").unwrap().unwrap().as_array("xs").unwrap();
        assert_eq!(xs[0], JsonValue::Number("1".to_string()));
        assert_eq!(xs[1], JsonValue::Number("-2.5e1".to_string()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\":1,}").is_err());
        assert!(JsonValue::parse("[1 2]").is_err());
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nulle").is_err());
        assert!(JsonValue::parse("{\"a\":bogus}").is_err());
    }

    #[test]
    fn duplicate_keys_are_rejected_by_get() {
        let doc = JsonValue::parse("{\"a\":1,\"a\":2}").unwrap();
        assert!(doc.get("a").unwrap_err().contains("duplicate key"));
    }

    #[test]
    fn typed_accessors_name_the_field_in_errors() {
        let v = JsonValue::String("x".to_string());
        assert!(v.as_u64("theta").unwrap_err().contains("theta"));
        assert!(v.as_bool("heuristic").unwrap_err().contains("heuristic"));
        let n = JsonValue::Number("-3".to_string());
        assert!(n.as_u64("seed").unwrap_err().contains("seed"));
        assert!(JsonValue::Null.as_array("members").is_err());
        assert!(JsonValue::Null.as_str("dataset").is_err());
    }
}
