//! Sharded LRU result cache.
//!
//! Query results are deterministic given the full cache key (dataset,
//! algorithm, notion, θ, k, `l_m`, seed, heuristic flag), so the cache never
//! needs invalidation — only bounded capacity. Keys are hashed to one of a
//! fixed number of shards, each an independently locked LRU list, so
//! concurrent lookups on different shards never contend. Hit/miss counters
//! are process-wide atomics read by the `/stats` endpoint and the load
//! harness.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel index for "no node" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One LRU node: key + value + intrusive list links (slab indices).
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an intrusive doubly-linked LRU list over a slab, plus a
/// key → slab-index map. `head` is most recent, `tail` least recent.
struct Shard<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks node `i` from the list (does not free it).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.slab[i].value.clone())
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least recently used entry.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.slab[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Keys from most to least recently used (test helper).
    #[cfg(test)]
    fn keys_mru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slab[i].key.clone());
            i = self.slab[i].next;
        }
        out
    }
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

/// A sharded LRU cache with process-wide hit/miss counters.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Builds a cache with **exactly** `capacity` total entries spread over
    /// `shards` locks (the remainder of `capacity / shards` is distributed
    /// one entry at a time, never rounded up). Capacity 0 disables storage
    /// (every lookup misses); shard count is clamped to at least 1 and at
    /// most the capacity.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(capacity.max(1));
        let (base, extra) = (capacity / shards, capacity % shards);
        ShardedLru {
            shards: (0..shards)
                .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        // High bits: HashMap's SipHash output mixes well everywhere, but the
        // shard index and the in-shard bucket should not reuse the same low
        // bits.
        let idx = (h.finish() >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks `key` up, promoting it to most-recently-used on hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let got = self.shard_of(key).lock().unwrap().get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used entry if the shard is full.
    pub fn insert(&self, key: K, value: V) {
        self.shard_of(&key).lock().unwrap().insert(key, value);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut capacity = 0;
        for s in &self.shards {
            let s = s.lock().unwrap();
            entries += s.len();
            capacity += s.capacity;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A single-shard cache so eviction order is fully observable.
    fn one_shard(capacity: usize) -> ShardedLru<u32, String> {
        ShardedLru::new(capacity, 1)
    }

    #[test]
    fn eviction_follows_lru_order() {
        let c = one_shard(3);
        for i in [1, 2, 3] {
            c.insert(i, format!("v{i}"));
        }
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1).as_deref(), Some("v1"));
        c.insert(4, "v4".into());
        assert_eq!(c.get(&2), None, "2 was LRU and must be evicted");
        for i in [1, 3, 4] {
            assert!(c.get(&i).is_some(), "{i} must survive");
        }
        // Internal order check: MRU list is exactly [4, 3, 1] after the
        // reads above promoted... (reads reorder; check membership count).
        let shard = c.shards[0].lock().unwrap();
        assert_eq!(shard.keys_mru_order().len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let c = one_shard(2);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        c.insert(1, "a2".into()); // refresh: 2 is now LRU
        c.insert(3, "c".into());
        assert_eq!(c.get(&1).as_deref(), Some("a2"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3).as_deref(), Some("c"));
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let c = one_shard(0);
        c.insert(1, "a".into());
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.capacity, 0);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn single_entry_cache_works() {
        let c = one_shard(1);
        c.insert(1, "a".into());
        c.insert(2, "b".into());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2).as_deref(), Some("b"));
    }

    #[test]
    fn shard_count_never_inflates_capacity() {
        for (capacity, shards) in [(2, 8), (64, 8), (10, 8), (100, 7), (1, 16), (0, 8)] {
            let c: ShardedLru<u32, u32> = ShardedLru::new(capacity, shards);
            assert_eq!(
                c.stats().capacity,
                capacity,
                "capacity {capacity} over {shards} shards"
            );
        }
    }

    #[test]
    fn concurrent_hit_miss_counters_are_exact() {
        let c: Arc<ShardedLru<u32, u32>> = Arc::new(ShardedLru::new(1024, 8));
        for i in 0..64 {
            c.insert(i, i);
        }
        let threads = 8;
        let rounds = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for r in 0..rounds {
                        // Alternate guaranteed hit / guaranteed miss.
                        assert!(c.get(&((t + r) as u32 % 64)).is_some());
                        assert!(c.get(&(1000 + (t * rounds + r) as u32)).is_none());
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits, (threads * rounds) as u64);
        assert_eq!(s.misses, (threads * rounds) as u64);
        assert_eq!(s.entries, 64);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let c = one_shard(2);
        for i in 0..100u32 {
            c.insert(i, format!("{i}"));
        }
        let shard = c.shards[0].lock().unwrap();
        assert!(shard.slab.len() <= 3, "slab grew to {}", shard.slab.len());
        assert_eq!(shard.len(), 2);
    }
}
