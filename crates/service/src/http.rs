//! Thread-pool HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! Hand-rolled on purpose: the workspace vendors no HTTP or async stack,
//! and the protocol surface a deterministic query API needs is tiny — GET
//! with a query string in, JSON out, `Connection: close`. What matters is
//! the concurrency shape:
//!
//! * one acceptor thread + N worker threads over a **bounded** connection
//!   queue — the admission-control point. A full queue is answered `503`
//!   immediately from the acceptor instead of queueing unbounded work;
//! * graceful shutdown: the shutdown flag doubles as the engine's
//!   cancellation flag, so in-flight estimator loops stop cooperatively at
//!   their next sampled world.
//!
//! ## Endpoints
//!
//! | Path | Reply |
//! |---|---|
//! | `GET /healthz` | `{"status":"ok"}` |
//! | `GET /datasets` | registry listing (name, loaded, shape, generation) |
//! | `GET /dataset?name=D` | dataset stats (forces construction) |
//! | `GET /query?dataset=D&…` | MPDS/NDS query (see [`crate::engine`]) |
//! | `POST /update?dataset=D` | apply a mutation batch (body: `u v p` / `u v -` lines); gated by [`ServerConfig::mutable`] |
//! | `GET /metrics` | cache/engine/server counters + per-dataset generation/overlay/compactions |

use crate::engine::{Algo, QueryEngine, QueryError, QueryRequest};
use crate::json::{error_body, JsonWriter};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub threads: usize,
    /// Bounded accepted-connection queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout (slowloris guard).
    pub read_timeout: Duration,
    /// Deadline applied to queries that supply no `timeout_ms` of their
    /// own. Without a ceiling, a handful of `theta=1000000` requests could
    /// pin every worker indefinitely and 503 all later traffic — the
    /// compute-side counterpart of the bounded queue. `None` disables it.
    pub default_timeout: Option<Duration>,
    /// Whether `POST /update` is served (the CLI's `serve --mutable`).
    /// Immutable servers (the default) answer it `403` without touching the
    /// registry, so a fleet can expose read-only replicas safely.
    pub mutable: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            default_timeout: Some(Duration::from_secs(120)),
            mutable: false,
        }
    }
}

struct ServerState {
    engine: Arc<QueryEngine>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_capacity: usize,
    work_ready: Condvar,
    shutdown: AtomicBool,
    read_timeout: Duration,
    default_timeout: Option<Duration>,
    mutable: bool,
    /// Mutation batches applied through `/update`.
    updates: AtomicU64,
    /// Connections answered 503 at the admission gate.
    rejected: AtomicU64,
    /// Requests fully served (any status).
    served: AtomicU64,
    /// Live rejection-drain threads (bounded; see `acceptor_loop`).
    rejecters: AtomicU64,
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops the
/// acceptor, drains the workers, and cancels in-flight estimator loops.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor + worker threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        cfg: &ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine,
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_capacity)),
            queue_capacity: cfg.queue_capacity.max(1),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            read_timeout: cfg.read_timeout,
            default_timeout: cfg.default_timeout,
            mutable: cfg.mutable,
            updates: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejecters: AtomicU64::new(0),
        });
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mpds-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mpds-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &state))
                .expect("spawn acceptor")
        };
        Ok(Server {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, cancels in-flight queries, drains and joins all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Cancel running estimator loops cooperatively.
        self.state
            .engine
            .cancel_flag()
            .store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a loopback connect.
        // An unspecified bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so target the loopback interface on our port.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1));
        // Notify while holding the queue mutex: a worker that just checked
        // the shutdown flag under this lock is either still before its
        // wait() (blocked on the mutex we hold, so it will re-check) or
        // already waiting (so it receives this notification). Notifying
        // without the lock could fire in that check-to-wait window and be
        // lost, leaving the worker asleep forever.
        {
            let _queue = self.state.queue.lock().unwrap();
            self.state.work_ready.notify_all();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (e.g. EMFILE under a connection
                // flood) would otherwise hard-spin the acceptor at 100%
                // CPU; back off briefly and let descriptors free up.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.queue_capacity {
            drop(queue);
            state.rejected.fetch_add(1, Ordering::Relaxed);
            // Answer the rejection off-thread: draining the request head
            // does blocking reads, and a stalled acceptor at exactly the
            // overload moment would turn load-shedding into a slowloris
            // amplifier. The drain threads are themselves bounded — past
            // the cap (or on spawn failure) the connection is dropped
            // without a body, which is the right overload behavior: a
            // flood must not buy one 2s-lived thread per connection.
            const MAX_REJECTERS: u64 = 32;
            if state.rejecters.fetch_add(1, Ordering::AcqRel) >= MAX_REJECTERS {
                state.rejecters.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let drain_timeout = state.read_timeout.min(Duration::from_secs(2));
            let thread_state = Arc::clone(state);
            let spawned = std::thread::Builder::new()
                .name("mpds-reject".to_string())
                .spawn(move || {
                    respond_overloaded(stream, drain_timeout);
                    thread_state.rejecters.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                state.rejecters.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        state.work_ready.notify_one();
    }
}

/// Answers a connection rejected at the admission gate. The request head is
/// drained first (bounded by a short timeout): closing a socket with unread
/// received data sends RST, which would destroy the 503 before the client
/// reads it.
fn respond_overloaded(mut stream: TcpStream, drain_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(drain_timeout));
    let _ = stream.set_write_timeout(Some(drain_timeout));
    let _ = read_request(&mut stream, |_, _| false);
    let body = error_body("server overloaded: connection queue full");
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        body.as_bytes(),
        None,
    );
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.work_ready.wait(queue).unwrap();
            }
        };
        handle_connection(stream, state);
        state.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A response body: owned text for small/metadata replies, or the engine's
/// shared cache bytes written without copying.
enum Body {
    Text(String),
    Shared(std::sync::Arc<Vec<u8>>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Text(s) => s.as_bytes(),
            Body::Shared(b) => b,
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.read_timeout));
    // Buffer a request body only for POSTs this server will actually route
    // to /update: everything else gets its rejection without the server
    // reading (and holding) up to MAX_BODY attacker-supplied bytes first.
    let accept_body =
        |method: &str, path: &str| method == "POST" && path == "/update" && state.mutable;
    let request = match read_request(&mut stream, accept_body) {
        Ok(r) => r,
        Err(msg) => {
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                error_body(&msg).as_bytes(),
                None,
            );
            return;
        }
    };
    let (status, reason, body, cache_header) = route(&request, state);
    let _ = write_response(&mut stream, status, reason, body.as_bytes(), cache_header);
}

/// One parsed HTTP request: method, target (path + query), and — for POST —
/// the `Content-Length`-delimited body.
struct Request {
    method: String,
    target: String,
    body: Vec<u8>,
}

/// Largest accepted `/update` body; mutation batches beyond this are
/// overload, not traffic.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// How much of a *rejected* request's body gets drained (discarded, never
/// buffered) so the error response survives the close — closing a socket
/// with substantial unread data RSTs the reply away. Abuse-sized bodies
/// past this simply are not read.
const MAX_REJECTED_DRAIN: usize = 64 * 1024;

/// Reads one request head and, when `accept_body(method, path)` approves
/// the route, its `Content-Length`-delimited body. Rejected routes get the
/// body drained (bounded) but never buffered.
fn read_request(
    stream: &mut TcpStream,
    accept_body: impl Fn(&str, &str) -> bool,
) -> Result<Request, String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        if buf.len() > 64 * 1024 {
            return Err("request head too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            // EOF with no terminator: the whole buffer is the head.
            break buf.len();
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request")?.to_string();
    let target = parts.next().ok_or("missing request target")?.to_string();
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", v.trim()))?;
            }
        }
    }
    let already = buf.len().saturating_sub((header_end + 4).min(buf.len()));
    let path = target.split('?').next().unwrap_or("");
    if !accept_body(&method, path) {
        // Drain (bounded, discarded) so the rejection response survives.
        let mut remaining = content_length
            .saturating_sub(already)
            .min(MAX_REJECTED_DRAIN);
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match stream.read(&mut chunk[..want]) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n,
            }
        }
        return Ok(Request {
            method,
            target,
            body: Vec::new(),
        });
    }
    if content_length > MAX_BODY {
        return Err(format!("request body too large ({content_length} bytes)"));
    }
    let mut body = buf[(header_end + 4).min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("request body truncated".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Dispatches one request to a `(status, reason, body, x_cache)`.
fn route(
    request: &Request,
    state: &ServerState,
) -> (u16, &'static str, Body, Option<&'static str>) {
    let (path, query) = match request.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.target.as_str(), ""),
    };
    let bad = |msg: String| (400, "Bad Request", Body::Text(error_body(&msg)), None);
    match (request.method.as_str(), path) {
        ("GET", "/update") => (
            405,
            "Method Not Allowed",
            Body::Text(error_body("POST a mutation batch to /update")),
            None,
        ),
        ("POST", "/update") => {
            if !state.mutable {
                return (
                    403,
                    "Forbidden",
                    Body::Text(error_body(
                        "server is immutable (start it with serve --mutable)",
                    )),
                    None,
                );
            }
            match single_param(query, "dataset") {
                Err(msg) => bad(msg),
                Ok(dataset) => match state.engine.apply_update(&dataset, request.body.as_slice()) {
                    Ok(outcome) => {
                        state.updates.fetch_add(1, Ordering::Relaxed);
                        (
                            200,
                            "OK",
                            Body::Text(crate::engine::render_update_response(&dataset, &outcome)),
                            None,
                        )
                    }
                    Err(e) => query_error_response(&e),
                },
            }
        }
        ("POST", _) => (
            405,
            "Method Not Allowed",
            Body::Text(error_body("POST is only accepted on /update")),
            None,
        ),
        ("GET", "/") | ("GET", "/healthz") => {
            let mut w = JsonWriter::new();
            w.begin_object().field_str("status", "ok").end_object();
            (200, "OK", Body::Text(w.finish()), None)
        }
        ("GET", "/datasets") => (200, "OK", Body::Text(render_datasets(state)), None),
        ("GET", "/dataset") => match single_param(query, "name") {
            Err(msg) => bad(msg),
            Ok(name) => match state.engine.registry().get(&name) {
                Err(msg) => bad(msg),
                Ok(g) => (
                    200,
                    "OK",
                    Body::Text(crate::engine::render_stats(&name, &g.graph)),
                    None,
                ),
            },
        },
        ("GET", "/query") => match parse_query_request(query) {
            Err(msg) => bad(msg),
            Ok(mut req) => {
                // Server-side compute ceiling: queries without their own
                // deadline get the configured default so no request can
                // pin a worker indefinitely.
                if req.timeout_ms.is_none() {
                    req.timeout_ms = state.default_timeout.map(|d| d.as_millis() as u64);
                }
                match state.engine.execute(&req) {
                    Ok((body, source)) => (200, "OK", Body::Shared(body), Some(source.as_str())),
                    Err(e) => query_error_response(&e),
                }
            }
        },
        ("GET", "/metrics") => (200, "OK", Body::Text(render_metrics(state)), None),
        ("GET", _) => (
            404,
            "Not Found",
            Body::Text(error_body("no such endpoint")),
            None,
        ),
        (method, _) => bad(format!("method {method} not supported (GET or POST)")),
    }
}

fn query_error_response(e: &QueryError) -> (u16, &'static str, Body, Option<&'static str>) {
    let (status, reason) = match e {
        QueryError::BadRequest(_) => (400, "Bad Request"),
        QueryError::DeadlineExceeded { .. } => (504, "Gateway Timeout"),
        QueryError::Cancelled => (503, "Service Unavailable"),
        QueryError::Internal(_) => (500, "Internal Server Error"),
    };
    (status, reason, Body::Text(error_body(&e.to_string())), None)
}

fn render_datasets(state: &ServerState) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("datasets").begin_array();
    for d in state.engine.registry().list() {
        w.begin_object()
            .field_str("name", &d.name)
            .field_bool("loaded", d.loaded);
        if let Some((n, m)) = d.shape {
            w.field_uint("nodes", n as u64)
                .field_uint("edges", m as u64);
        }
        if let Some(g) = d.generation {
            w.field_uint("generation", g);
        }
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn render_metrics(state: &ServerState) -> String {
    let s = state.engine.stats();
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("cache")
        .begin_object()
        .field_uint("hits", s.cache.hits)
        .field_uint("misses", s.cache.misses)
        .field_uint("entries", s.cache.entries as u64)
        .field_uint("capacity", s.cache.capacity as u64)
        .end_object()
        .field_uint("computed", s.computed)
        .field_uint("coalesced", s.coalesced)
        .field_uint("worlds_sampled", s.worlds_sampled)
        .field_uint("worlds_requested", s.worlds_requested)
        .field_uint("rejected", state.rejected.load(Ordering::Relaxed))
        .field_uint("served", state.served.load(Ordering::Relaxed))
        .field_uint("updates", state.updates.load(Ordering::Relaxed));
    // Per-dataset dynamic-graph state (loaded datasets only — listing must
    // never force construction).
    w.key("datasets").begin_array();
    for d in state.engine.registry().list() {
        if !d.loaded {
            continue;
        }
        w.begin_object().field_str("name", &d.name);
        if let Some(g) = d.generation {
            w.field_uint("generation", g);
        }
        if let Some(o) = d.overlay {
            w.field_uint("overlay", o as u64);
        }
        if let Some(c) = d.compactions {
            w.field_uint("compactions", c);
        }
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &[u8],
    x_cache: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(v) = x_cache {
        head.push_str(&format!("X-Cache: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Extracts the single parameter `want` from a query string.
fn single_param(query: &str, want: &str) -> Result<String, String> {
    for (k, v) in query_pairs(query)? {
        if k == want {
            return Ok(v);
        }
    }
    Err(format!("missing parameter {want:?}"))
}

/// Splits and percent-decodes `k=v&k=v` pairs.
fn query_pairs(query: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

/// Minimal percent-decoding (`%XX` and `+` for space).
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query parameter {s:?} is not UTF-8"))
}

/// Parses `/query` parameters into a [`QueryRequest`]. Unknown and
/// duplicate parameters are rejected — same contract as the CLI flags.
fn parse_query_request(query: &str) -> Result<QueryRequest, String> {
    let pairs = query_pairs(query)?;
    let dataset = pairs
        .iter()
        .find(|(k, _)| k == "dataset")
        .map(|(_, v)| v.clone())
        .ok_or("missing parameter \"dataset\"")?;
    let mut req = QueryRequest::new(&dataset);
    let mut seen = std::collections::HashSet::new();
    for (k, v) in &pairs {
        // `density` is an alias of `notion`; canonicalize before the
        // duplicate check so `notion=…&density=…` cannot sneak past it.
        let canonical = if k == "density" { "notion" } else { k.as_str() };
        if !seen.insert(canonical.to_string()) {
            return Err(format!("duplicate parameter {canonical:?}"));
        }
        let parse_usize = || v.parse::<usize>().map_err(|e| format!("{k}: {e}"));
        match k.as_str() {
            "dataset" => {}
            "algo" => req.algo = Algo::parse(v)?,
            "notion" | "density" => req.notion = v.clone(),
            "theta" => req.theta = parse_usize()?,
            "k" => req.k = parse_usize()?,
            "lm" => req.lm = parse_usize()?,
            "seed" => req.seed = v.parse().map_err(|e| format!("seed: {e}"))?,
            "heuristic" => {
                req.heuristic = match v.as_str() {
                    "true" | "1" | "" => true,
                    "false" | "0" => false,
                    other => return Err(format!("heuristic: bad boolean {other:?}")),
                }
            }
            "threads" => req.threads = parse_usize()?,
            "timeout_ms" => {
                req.timeout_ms = Some(v.parse().map_err(|e| format!("timeout_ms: {e}"))?)
            }
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("bad%2").is_err());
        assert!(percent_decode("bad%zz").is_err());
    }

    #[test]
    fn query_request_parsing() {
        let req = parse_query_request("dataset=karate&theta=100&k=2&seed=7&algo=nds&lm=3").unwrap();
        assert_eq!(req.dataset, "karate");
        assert_eq!(req.theta, 100);
        assert_eq!(req.k, 2);
        assert_eq!(req.seed, 7);
        assert_eq!(req.algo, Algo::Nds);
        assert_eq!(req.lm, 3);
        assert!(!req.heuristic);
        assert_eq!(req.threads, 1);
    }

    #[test]
    fn threads_parameter_is_parsed_and_bounded() {
        let req = parse_query_request("dataset=karate&threads=4").unwrap();
        assert_eq!(req.threads, 4);
        assert!(req.validate().is_ok());
        let req = parse_query_request("dataset=karate&threads=0").unwrap();
        assert!(req.validate().unwrap_err().contains("threads"));
        assert!(parse_query_request("dataset=karate&threads=x").is_err());
        assert!(parse_query_request("dataset=karate&threads=2&threads=3")
            .unwrap_err()
            .contains("duplicate parameter"));
    }

    #[test]
    fn query_request_rejects_unknown_and_duplicates() {
        assert!(parse_query_request("theta=5")
            .unwrap_err()
            .contains("dataset"));
        assert!(parse_query_request("dataset=karate&bogus=1")
            .unwrap_err()
            .contains("unknown parameter"));
        assert!(parse_query_request("dataset=karate&theta=1&theta=2")
            .unwrap_err()
            .contains("duplicate parameter"));
        // `density` aliases `notion`: mixing them is a duplicate too.
        assert!(
            parse_query_request("dataset=karate&notion=edge&density=2star")
                .unwrap_err()
                .contains("duplicate parameter \"notion\"")
        );
    }

    #[test]
    fn heuristic_flag_forms() {
        assert!(
            parse_query_request("dataset=karate&heuristic=true")
                .unwrap()
                .heuristic
        );
        assert!(
            parse_query_request("dataset=karate&heuristic=1")
                .unwrap()
                .heuristic
        );
        assert!(
            !parse_query_request("dataset=karate&heuristic=false")
                .unwrap()
                .heuristic
        );
        assert!(parse_query_request("dataset=karate&heuristic=maybe").is_err());
    }
}
