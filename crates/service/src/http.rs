//! Thread-pool HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! Hand-rolled on purpose: the workspace vendors no HTTP or async stack,
//! and the protocol surface a deterministic query API needs is tiny — GET
//! with a query string in, JSON out, `Connection: close`. What matters is
//! the concurrency shape:
//!
//! * one acceptor thread + N worker threads over a **bounded** connection
//!   queue — the admission-control point. A full queue is answered `503`
//!   immediately from the acceptor instead of queueing unbounded work;
//! * graceful shutdown: the shutdown flag doubles as the engine's
//!   cancellation flag, so in-flight estimator loops stop cooperatively at
//!   their next sampled world.
//!
//! ## Endpoints
//!
//! | Path | Reply |
//! |---|---|
//! | `GET /healthz` | `{"status":"ok"}` |
//! | `GET /datasets` | registry listing (name, loaded, shape, generation) |
//! | `GET /dataset?name=D` | dataset stats (forces construction) |
//! | `GET /query?dataset=D&…` | MPDS/NDS query (see [`crate::engine`]); anytime knobs: `stop=stable&window=N` early-stops when the top-k settles, `budget_ms=N` returns the best estimate so far (200, never 504) and refines in the background |
//! | `POST /batch` | many queries over one shared world stream (JSON body of member specs; per-member cache keys, misses computed in a single [`mpds::QuerySet`] pass) |
//! | `GET /diff?dataset=A&against=B&…` | one query over two datasets under common random numbers, diffed (A is the *after* side, B the baseline) |
//! | `POST /update?dataset=D` | apply a mutation batch (body: `u v p` / `u v -` lines); gated by [`ServerConfig::mutable`]; with `serve --data-dir` the batch is WAL-logged before the ack |
//! | `POST /admin/checkpoint?dataset=D` | force a compaction + durable checkpoint (requires `--mutable` and `--data-dir`); truncates the covered WAL prefix |
//! | `GET /metrics` | cache/engine/server counters + per-dataset generation/overlay/compactions (plus wal/checkpoint/recovery state on durable servers); `Accept: text/plain` (or any OpenMetrics/Prometheus accept value) switches to Prometheus text exposition with full latency histograms |
//!
//! ## Observability
//!
//! Every request is timed end-to-end (read → route → write) into the
//! [`crate::obs::HttpObs`] histogram bank, labeled by endpoint, cache
//! source, and status class. With [`ServerConfig::access_log`] set, each
//! request also appends one JSON line (see [`crate::obs::AccessRecord`]);
//! with [`ServerConfig::slow_ms`] set, requests at or past the threshold
//! are echoed to stderr. `/query?profile=1` returns the response with a
//! spliced `"profile"` block of per-stage timings — the parameter is not
//! part of the cache key and the cached bytes are never mutated.

use crate::engine::{
    Algo, BatchMember, BatchRequest, QueryEngine, QueryError, QueryRequest, StopSpec,
    DEFAULT_STABLE_WINDOW, MAX_BATCH_MEMBERS,
};
use crate::json::JsonValue;
use crate::json::{error_body, JsonWriter};
use crate::obs::{render_access_record, AccessRecord, Endpoint, HttpObs, SourceLabel};
use mpds_obs::flight::{format_trace_id, parse_trace_id};
use mpds_obs::{
    scrape, FlightRecorder, PromText, Recorder, SloEngine, SloObjective, Stage, TraceIdGen,
    TraceRecord, TraceState,
};
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// `Content-Type` of every JSON response.
const CONTENT_TYPE_JSON: &str = "application/json";

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub threads: usize,
    /// Bounded accepted-connection queue; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Per-connection read timeout (slowloris guard).
    pub read_timeout: Duration,
    /// Deadline applied to queries that supply no `timeout_ms` of their
    /// own. Without a ceiling, a handful of `theta=1000000` requests could
    /// pin every worker indefinitely and 503 all later traffic — the
    /// compute-side counterpart of the bounded queue. `None` disables it.
    pub default_timeout: Option<Duration>,
    /// Whether `POST /update` is served (the CLI's `serve --mutable`).
    /// Immutable servers (the default) answer it `403` without touching the
    /// registry, so a fleet can expose read-only replicas safely.
    pub mutable: bool,
    /// Append one JSON line per request to this file (the CLI's
    /// `serve --access-log PATH`). `None` disables access logging.
    pub access_log: Option<PathBuf>,
    /// Echo requests whose wall time reaches this many milliseconds to
    /// stderr (the CLI's `serve --slow-ms N`). `None` disables the slow log.
    /// This threshold also decides slow-query-ring promotion; when unset the
    /// ring uses [`DEFAULT_SLOW_THRESHOLD_MS`].
    pub slow_ms: Option<u64>,
    /// Whether the per-request flight recorder runs (the CLI's
    /// `serve --no-flight` turns it off). Trace ids are minted and returned
    /// as `X-Trace-Id` either way; disabling only stops record retention and
    /// per-stage timing of unprofiled requests.
    pub flight: bool,
    /// Completed-request ring capacity (the CLI's `serve --flight-capacity`).
    pub flight_capacity: usize,
    /// Slow-query ring capacity (the CLI's `serve --slow-capacity`).
    pub slow_capacity: usize,
    /// Service-level objectives scored on every request (the CLI's
    /// repeatable `serve --slo SPEC`; see [`SloObjective::parse_spec`]).
    pub slo: Vec<SloObjective>,
}

/// Slow-query-ring promotion threshold when [`ServerConfig::slow_ms`] is
/// unset: one second.
pub const DEFAULT_SLOW_THRESHOLD_MS: u64 = 1_000;

/// The SLOs a server scores when none are configured: p99 of `/query`
/// under 250 ms, 99.9% availability on `/query` and `/update`.
pub fn default_slo_objectives() -> Vec<SloObjective> {
    [
        "query:latency:250:0.99",
        "query:availability:0.999",
        "update:availability:0.999",
    ]
    .iter()
    .map(|s| SloObjective::parse_spec(s).expect("default SLO spec"))
    .collect()
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            default_timeout: Some(Duration::from_secs(120)),
            mutable: false,
            access_log: None,
            slow_ms: None,
            flight: true,
            flight_capacity: 256,
            slow_capacity: 64,
            slo: default_slo_objectives(),
        }
    }
}

struct ServerState {
    engine: Arc<QueryEngine>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_capacity: usize,
    work_ready: Condvar,
    shutdown: AtomicBool,
    read_timeout: Duration,
    default_timeout: Option<Duration>,
    mutable: bool,
    /// Mutation batches applied through `/update`.
    updates: AtomicU64,
    /// Durable checkpoints forced through `/admin/checkpoint`.
    checkpoints: AtomicU64,
    /// Query batches served through `/batch`.
    batches: AtomicU64,
    /// Diffs served through `/diff`.
    diffs: AtomicU64,
    /// Connections answered 503 at the admission gate.
    rejected: AtomicU64,
    /// Requests fully served (any status).
    served: AtomicU64,
    /// Live rejection-drain threads (bounded; see `acceptor_loop`).
    rejecters: AtomicU64,
    /// Latency histogram bank + in-flight gauge.
    http_obs: HttpObs,
    /// Open access-log sink, when configured. One line per request,
    /// flushed per line so `tail -f` (and the smoke test) see it live.
    access_log: Option<Mutex<BufWriter<std::fs::File>>>,
    /// Slow-query threshold in milliseconds, when configured.
    slow_ms: Option<u64>,
    /// Monotonic request-id source for access-log lines.
    next_request_id: AtomicU64,
    /// Process-unique trace-id source (`X-Trace-Id`).
    trace_ids: TraceIdGen,
    /// Per-request flight recorder backing `/debug/*`.
    flight: FlightRecorder,
    /// Burn-rate tracking for the configured objectives.
    slo: SloEngine,
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops the
/// acceptor, drains the workers, and cancels in-flight estimator loops.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor + worker threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        cfg: &ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Open (or create) the access log before spawning anything: a bad
        // path should fail the bind, not lose lines silently at runtime.
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
            None => None,
        };
        let state = Arc::new(ServerState {
            engine,
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_capacity)),
            queue_capacity: cfg.queue_capacity.max(1),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            read_timeout: cfg.read_timeout,
            default_timeout: cfg.default_timeout,
            mutable: cfg.mutable,
            updates: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            diffs: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejecters: AtomicU64::new(0),
            http_obs: HttpObs::new(),
            access_log,
            slow_ms: cfg.slow_ms,
            next_request_id: AtomicU64::new(0),
            trace_ids: TraceIdGen::from_entropy(),
            flight: FlightRecorder::new(
                cfg.flight,
                cfg.flight_capacity,
                cfg.slow_capacity,
                cfg.slow_ms
                    .unwrap_or(DEFAULT_SLOW_THRESHOLD_MS)
                    .saturating_mul(1_000),
            ),
            slo: SloEngine::new(cfg.slo.clone()),
        });
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mpds-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mpds-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &state))
                .expect("spawn acceptor")
        };
        Ok(Server {
            local_addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, cancels in-flight queries, drains and joins all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Cancel running estimator loops cooperatively.
        self.state
            .engine
            .cancel_flag()
            .store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a loopback connect.
        // An unspecified bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so target the loopback interface on our port.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1));
        // Notify while holding the queue mutex: a worker that just checked
        // the shutdown flag under this lock is either still before its
        // wait() (blocked on the mutex we hold, so it will re-check) or
        // already waiting (so it receives this notification). Notifying
        // without the lock could fire in that check-to-wait window and be
        // lost, leaving the worker asleep forever.
        {
            let _queue = self.state.queue.lock().unwrap();
            self.state.work_ready.notify_all();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (e.g. EMFILE under a connection
                // flood) would otherwise hard-spin the acceptor at 100%
                // CPU; back off briefly and let descriptors free up.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.queue_capacity {
            drop(queue);
            state.rejected.fetch_add(1, Ordering::Relaxed);
            // Answer the rejection off-thread: draining the request head
            // does blocking reads, and a stalled acceptor at exactly the
            // overload moment would turn load-shedding into a slowloris
            // amplifier. The drain threads are themselves bounded — past
            // the cap (or on spawn failure) the connection is dropped
            // without a body, which is the right overload behavior: a
            // flood must not buy one 2s-lived thread per connection.
            const MAX_REJECTERS: u64 = 32;
            if state.rejecters.fetch_add(1, Ordering::AcqRel) >= MAX_REJECTERS {
                state.rejecters.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let drain_timeout = state.read_timeout.min(Duration::from_secs(2));
            let thread_state = Arc::clone(state);
            // Even a shed connection gets a trace id: the 503 body is
            // anonymous, but the header lets the client report something.
            let trace_hex = format_trace_id(state.trace_ids.mint());
            let spawned = std::thread::Builder::new()
                .name("mpds-reject".to_string())
                .spawn(move || {
                    respond_overloaded(stream, drain_timeout, &trace_hex);
                    thread_state.rejecters.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                state.rejecters.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        state.work_ready.notify_one();
    }
}

/// Answers a connection rejected at the admission gate. The request head is
/// drained first (bounded by a short timeout): closing a socket with unread
/// received data sends RST, which would destroy the 503 before the client
/// reads it.
fn respond_overloaded(mut stream: TcpStream, drain_timeout: Duration, trace_hex: &str) {
    let _ = stream.set_read_timeout(Some(drain_timeout));
    let _ = stream.set_write_timeout(Some(drain_timeout));
    let _ = read_request(&mut stream, |_, _| false);
    let body = error_body("overloaded", "server overloaded: connection queue full");
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        body.as_bytes(),
        None,
        CONTENT_TYPE_JSON,
        Some(trace_hex),
    );
}

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.work_ready.wait(queue).unwrap();
            }
        };
        handle_connection(stream, state);
        state.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A response body: owned text for small/metadata replies, owned bytes for
/// per-request variants (profile splices), or the engine's shared cache
/// bytes written without copying.
enum Body {
    Text(String),
    Bytes(Vec<u8>),
    Shared(std::sync::Arc<Vec<u8>>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Text(s) => s.as_bytes(),
            Body::Bytes(b) => b,
            Body::Shared(b) => b,
        }
    }
}

/// One routed response plus the provenance the observability layer wants:
/// the `X-Cache` header, the dataset/generation the route resolved (for
/// access-log lines), and the negotiated content type.
struct Response {
    status: u16,
    reason: &'static str,
    body: Body,
    x_cache: Option<&'static str>,
    content_type: &'static str,
    dataset: Option<String>,
    generation: Option<u64>,
}

impl Response {
    /// A JSON response with no cache or dataset provenance.
    fn json(status: u16, reason: &'static str, body: Body) -> Response {
        Response {
            status,
            reason,
            body,
            x_cache: None,
            content_type: CONTENT_TYPE_JSON,
            dataset: None,
            generation: None,
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let _ = stream.set_write_timeout(Some(state.read_timeout));
    let started = Instant::now();
    state.http_obs.inflight.inc();
    let id = state.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    // Every request gets a process-unique trace id, returned as
    // `X-Trace-Id` even on parse failures — a client report quoting the
    // header is enough to find the request in the flight recorder.
    let trace_id = state.trace_ids.mint();
    let trace_hex = format_trace_id(trace_id);
    // The request's own stage recorder; enabled with the flight recorder so
    // /debug/trace shows per-stage breakdowns without ?profile=1.
    let rec = Arc::new(Recorder::new(state.flight.is_enabled()));
    // Buffer a request body only for POSTs this server will actually route:
    // /update (when mutable) and /batch. Everything else gets its rejection
    // without the server reading (and holding) up to MAX_BODY
    // attacker-supplied bytes first.
    let accept_body = |method: &str, path: &str| {
        method == "POST" && (path == "/batch" || (path == "/update" && state.mutable))
    };
    match read_request(&mut stream, accept_body) {
        Ok(request) => {
            let endpoint = Endpoint::classify(request.target.split('?').next().unwrap_or(""));
            state.flight.begin(
                trace_id,
                endpoint.as_str(),
                &request.method,
                &request.target,
                Arc::clone(&rec),
            );
            let resp = route(&request, state, &rec);
            let _ = write_response(
                &mut stream,
                resp.status,
                resp.reason,
                resp.body.as_bytes(),
                resp.x_cache,
                resp.content_type,
                Some(&trace_hex),
            );
            observe_request(
                state,
                id,
                trace_id,
                started,
                Some(&request.method),
                endpoint,
                &resp,
            );
        }
        Err(msg) => {
            let resp = Response::json(
                400,
                "Bad Request",
                Body::Text(error_body("bad_request", &msg)),
            );
            let _ = write_response(
                &mut stream,
                resp.status,
                resp.reason,
                resp.body.as_bytes(),
                resp.x_cache,
                resp.content_type,
                Some(&trace_hex),
            );
            observe_request(state, id, trace_id, started, None, Endpoint::Other, &resp);
        }
    }
    state.http_obs.inflight.dec();
}

/// Records one finished request: latency (with the trace id as the bucket
/// exemplar) into the histogram bank, SLO verdicts, the flight-recorder
/// completion, an optional access-log line, and an optional stderr echo
/// past the slow threshold. `/query` successes are enriched with
/// `stop_reason` and `worlds_sampled` scraped back out of the response body
/// through the shared [`mpds_obs::scrape`] parser.
fn observe_request(
    state: &ServerState,
    id: u64,
    trace_id: u64,
    started: Instant,
    method: Option<&str>,
    endpoint: Endpoint,
    resp: &Response,
) {
    let wall_us = mpds_obs::micros_since(started);
    let source = SourceLabel::from_header(resp.x_cache);
    state
        .http_obs
        .record_traced(endpoint, source, resp.status, wall_us, trace_id);
    state.slo.record(endpoint.as_str(), resp.status, wall_us);
    // Self-observation traffic (/metrics scrapes, /debug reads) completes
    // its flight record but never competes for the slow-query ring.
    state.flight.finish(
        trace_id,
        resp.status,
        wall_us,
        !endpoint.is_self_observation(),
    );
    let slow = state
        .slow_ms
        .is_some_and(|t| wall_us >= t.saturating_mul(1_000));
    if state.access_log.is_none() && !slow {
        return;
    }
    let (stop_reason, worlds_sampled) = if endpoint == Endpoint::Query && resp.status == 200 {
        let text = std::str::from_utf8(resp.body.as_bytes()).unwrap_or("");
        (
            scrape::json_str(text, "stop_reason"),
            scrape::json_uint(text, "worlds_sampled"),
        )
    } else {
        (None, None)
    };
    let trace_hex = format_trace_id(trace_id);
    let line = render_access_record(&AccessRecord {
        id,
        trace_id: Some(&trace_hex),
        endpoint: endpoint.as_str(),
        method,
        status: resp.status,
        source: resp.x_cache,
        dataset: resp.dataset.as_deref(),
        generation: resp.generation,
        stop_reason,
        worlds_sampled,
        wall_us,
    });
    if let Some(log) = &state.access_log {
        let mut sink = log.lock().unwrap();
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }
    if slow {
        eprintln!("mpds-service slow_query {line}");
    }
}

/// One parsed HTTP request: method, target (path + query), the `Accept`
/// header (for `/metrics` content negotiation), and — for POST — the
/// `Content-Length`-delimited body.
struct Request {
    method: String,
    target: String,
    accept: String,
    body: Vec<u8>,
}

/// Largest accepted `/update` body; mutation batches beyond this are
/// overload, not traffic.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// How much of a *rejected* request's body gets drained (discarded, never
/// buffered) so the error response survives the close — closing a socket
/// with substantial unread data RSTs the reply away. Abuse-sized bodies
/// past this simply are not read.
const MAX_REJECTED_DRAIN: usize = 64 * 1024;

/// Reads one request head and, when `accept_body(method, path)` approves
/// the route, its `Content-Length`-delimited body. Rejected routes get the
/// body drained (bounded) but never buffered.
fn read_request(
    stream: &mut TcpStream,
    accept_body: impl Fn(&str, &str) -> bool,
) -> Result<Request, String> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        if buf.len() > 64 * 1024 {
            return Err("request head too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            // EOF with no terminator: the whole buffer is the head.
            break buf.len();
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request")?.to_string();
    let target = parts.next().ok_or("missing request target")?.to_string();
    let mut content_length = 0usize;
    let mut accept = String::new();
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", v.trim()))?;
            } else if k.trim().eq_ignore_ascii_case("accept") {
                accept = v.trim().to_string();
            }
        }
    }
    let already = buf.len().saturating_sub((header_end + 4).min(buf.len()));
    let path = target.split('?').next().unwrap_or("");
    if !accept_body(&method, path) {
        // Drain (bounded, discarded) so the rejection response survives.
        let mut remaining = content_length
            .saturating_sub(already)
            .min(MAX_REJECTED_DRAIN);
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match stream.read(&mut chunk[..want]) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n,
            }
        }
        return Ok(Request {
            method,
            target,
            accept,
            body: Vec::new(),
        });
    }
    if content_length > MAX_BODY {
        return Err(format!("request body too large ({content_length} bytes)"));
    }
    let mut body = buf[(header_end + 4).min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("request body truncated".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        target,
        accept,
        body,
    })
}

/// Dispatches one request to a [`Response`]. `rec` is the request's flight
/// recorder (disabled when the flight recorder is off) — compute- and
/// store-side stages are timed into it so `/debug/trace/<id>` can show a
/// full breakdown.
fn route(request: &Request, state: &ServerState, rec: &Arc<Recorder>) -> Response {
    let (path, query) = match request.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.target.as_str(), ""),
    };
    let bad = |msg: String| {
        Response::json(
            400,
            "Bad Request",
            Body::Text(error_body("bad_request", &msg)),
        )
    };
    match (request.method.as_str(), path) {
        ("GET", "/update") => Response::json(
            405,
            "Method Not Allowed",
            Body::Text(error_body(
                "method_not_allowed",
                "POST a mutation batch to /update",
            )),
        ),
        ("POST", "/update") => {
            if !state.mutable {
                return Response::json(
                    403,
                    "Forbidden",
                    Body::Text(error_body(
                        "forbidden",
                        "server is immutable (start it with serve --mutable)",
                    )),
                );
            }
            match single_param(query, "dataset") {
                Err(msg) => bad(msg),
                Ok(dataset) => match state.engine.apply_update_traced(
                    &dataset,
                    request.body.as_slice(),
                    Some(rec),
                ) {
                    Ok(outcome) => {
                        state.updates.fetch_add(1, Ordering::Relaxed);
                        let body = crate::engine::render_update_response(&dataset, &outcome);
                        Response {
                            generation: Some(outcome.generation),
                            dataset: Some(dataset),
                            ..Response::json(200, "OK", Body::Text(body))
                        }
                    }
                    Err(e) => query_error_response(&e),
                },
            }
        }
        // Checkpointing mutates on-disk state, so it sits behind the same
        // gate as /update; the persistence requirement itself surfaces as a
        // 400 from the registry when the server has no --data-dir. The
        // endpoint takes no request body.
        ("POST", "/admin/checkpoint") => {
            if !state.mutable {
                return Response::json(
                    403,
                    "Forbidden",
                    Body::Text(error_body(
                        "forbidden",
                        "server is immutable (start it with serve --mutable)",
                    )),
                );
            }
            match single_param(query, "dataset") {
                Err(msg) => bad(msg),
                Ok(dataset) => match state.engine.checkpoint_traced(&dataset, Some(rec)) {
                    Ok(outcome) => {
                        state.checkpoints.fetch_add(1, Ordering::Relaxed);
                        let body = crate::engine::render_checkpoint_response(&dataset, &outcome);
                        Response {
                            generation: Some(outcome.generation),
                            dataset: Some(dataset),
                            ..Response::json(200, "OK", Body::Text(body))
                        }
                    }
                    Err(e) => query_error_response(&e),
                },
            }
        }
        ("GET", "/batch") => Response::json(
            405,
            "Method Not Allowed",
            Body::Text(error_body(
                "method_not_allowed",
                "POST a JSON body of query specs to /batch",
            )),
        ),
        ("POST", "/batch") => match parse_batch_request(&request.body) {
            Err(msg) => bad(msg),
            Ok(mut req) => {
                // Same compute ceiling as /query: a batch without its own
                // deadline gets the configured default.
                if req.timeout_ms.is_none() {
                    req.timeout_ms = state.default_timeout.map(|d| d.as_millis() as u64);
                }
                match state.engine.execute_batch(&req) {
                    Ok(outcome) => {
                        state.batches.fetch_add(1, Ordering::Relaxed);
                        let body = crate::engine::render_batch_response(&req, &outcome);
                        Response {
                            dataset: Some(req.dataset),
                            ..Response::json(200, "OK", Body::Text(body))
                        }
                    }
                    Err(e) => query_error_response(&e),
                }
            }
        },
        ("GET", "/diff") => match parse_diff_request(query) {
            Err(msg) => bad(msg),
            Ok((mut req, against)) => {
                // A diff runs the query twice (before + after), so it gets
                // the same default ceiling as any other computation.
                if req.timeout_ms.is_none() {
                    req.timeout_ms = state.default_timeout.map(|d| d.as_millis() as u64);
                }
                match state.engine.execute_diff(&req, &against) {
                    Ok(body) => {
                        state.diffs.fetch_add(1, Ordering::Relaxed);
                        Response {
                            dataset: Some(req.dataset),
                            ..Response::json(200, "OK", Body::Shared(Arc::new(body)))
                        }
                    }
                    Err(e) => query_error_response(&e),
                }
            }
        },
        ("POST", _) => Response::json(
            405,
            "Method Not Allowed",
            Body::Text(error_body(
                "method_not_allowed",
                "POST is only accepted on /update, /batch, and /admin/checkpoint",
            )),
        ),
        ("GET", "/") | ("GET", "/healthz") => {
            let mut w = JsonWriter::new();
            w.begin_object().field_str("status", "ok").end_object();
            Response::json(200, "OK", Body::Text(w.finish()))
        }
        ("GET", "/datasets") => Response::json(200, "OK", Body::Text(render_datasets(state))),
        ("GET", "/dataset") => match single_param(query, "name") {
            Err(msg) => bad(msg),
            Ok(name) => match state.engine.registry().get(&name) {
                Err(msg) => bad(msg),
                Ok(g) => {
                    let body = crate::engine::render_stats(&name, &g.graph);
                    Response {
                        generation: Some(g.generation),
                        dataset: Some(name),
                        ..Response::json(200, "OK", Body::Text(body))
                    }
                }
            },
        },
        ("GET", "/query") => match parse_query_request(query) {
            Err(msg) => bad(msg),
            Ok(mut req) => {
                // Server-side compute ceiling: queries without their own
                // deadline get the configured default so no request can
                // pin a worker indefinitely.
                if req.timeout_ms.is_none() {
                    req.timeout_ms = state.default_timeout.map(|d| d.as_millis() as u64);
                }
                match state.engine.execute_traced_with(&req, Some(rec)) {
                    Ok(t) => {
                        // A profiled response splices the stage timings
                        // into a fresh buffer; the cached `Arc` keeps
                        // serving byte-identical unprofiled bodies.
                        let body = match &t.profile {
                            Some(totals) => Body::Bytes(crate::engine::splice_profile(
                                &t.body, totals, t.source,
                            )),
                            None => Body::Shared(t.body),
                        };
                        Response {
                            x_cache: Some(t.source.as_str()),
                            dataset: Some(req.dataset),
                            generation: Some(t.generation),
                            ..Response::json(200, "OK", body)
                        }
                    }
                    Err(e) => query_error_response(&e),
                }
            }
        },
        ("GET", "/metrics") => {
            if wants_prometheus(&request.accept) {
                Response {
                    content_type: mpds_obs::prom::CONTENT_TYPE,
                    ..Response::json(200, "OK", Body::Text(render_metrics_prom(state)))
                }
            } else {
                Response::json(200, "OK", Body::Text(render_metrics(state)))
            }
        }
        ("GET", "/debug/requests") => Response::json(
            200,
            "OK",
            Body::Text(render_trace_list("requests", &state.flight.in_flight())),
        ),
        ("GET", "/debug/slow") => Response::json(
            200,
            "OK",
            Body::Text(render_trace_list("slow", &state.flight.slow())),
        ),
        ("GET", p) if p.starts_with("/debug/trace/") => {
            let raw = &p["/debug/trace/".len()..];
            match parse_trace_id(raw) {
                None => bad(format!(
                    "bad trace id {raw:?} (expected 16 lowercase hex digits)"
                )),
                Some(id) => match state.flight.lookup(id) {
                    Some(r) => {
                        let mut w = JsonWriter::new();
                        w.begin_object();
                        render_trace_record(&mut w, &r);
                        w.end_object();
                        Response::json(200, "OK", Body::Text(w.finish()))
                    }
                    None => Response::json(
                        404,
                        "Not Found",
                        Body::Text(error_body(
                            "not_found",
                            &format!(
                                "trace {raw} is not in flight and no longer retained by the \
                                 completed or slow rings"
                            ),
                        )),
                    ),
                },
            }
        }
        ("GET", _) => Response::json(
            404,
            "Not Found",
            Body::Text(error_body("not_found", "no such endpoint")),
        ),
        (method, _) => bad(format!("method {method} not supported (GET or POST)")),
    }
}

fn query_error_response(e: &QueryError) -> Response {
    let (status, reason, code) = match e {
        QueryError::BadRequest(_) => (400, "Bad Request", "bad_request"),
        QueryError::DeadlineExceeded { .. } => (504, "Gateway Timeout", "deadline_exceeded"),
        QueryError::Cancelled => (503, "Service Unavailable", "cancelled"),
        QueryError::Internal(_) => (500, "Internal Server Error", "internal"),
    };
    Response::json(status, reason, Body::Text(error_body(code, &e.to_string())))
}

/// `/metrics` content negotiation: Prometheus scrapers advertise
/// `text/plain` (the classic exposition type) or an OpenMetrics media
/// type; plain `curl` sends `*/*` and keeps receiving the legacy JSON
/// body unchanged.
fn wants_prometheus(accept: &str) -> bool {
    let a = accept.to_ascii_lowercase();
    a.contains("text/plain") || a.contains("openmetrics") || a.contains("prometheus")
}

/// Renders `{"<key>":[{record},…]}` for `/debug/requests` and
/// `/debug/slow`.
fn render_trace_list(key: &str, records: &[TraceRecord]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key(key).begin_array();
    for r in records {
        w.begin_object();
        render_trace_record(&mut w, r);
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// Writes one flight record's fields (the caller brackets the object):
/// identity, state, latency, and the per-stage breakdown — only stages that
/// actually ran, in the fixed [`Stage::ALL`] order, with the same
/// microsecond totals `?profile=1` splices into a response body.
fn render_trace_record(w: &mut JsonWriter, r: &TraceRecord) {
    w.field_str("trace_id", &format_trace_id(r.trace_id))
        .field_str("state", r.state.as_str())
        .field_str("endpoint", &r.endpoint)
        .field_str("method", &r.method)
        .field_str("target", &r.target);
    if r.state == TraceState::Completed {
        w.field_uint("status", r.status as u64);
    }
    w.field_uint("wall_us", r.wall_us)
        .field_bool("slow", r.slow);
    if let Some(stage) = r.current_stage {
        w.field_str("current_stage", stage.as_str());
    }
    w.key("stages").begin_object();
    for stage in Stage::ALL {
        let count = r.totals.count(stage);
        if count == 0 {
            continue;
        }
        w.key(stage.as_str())
            .begin_object()
            .field_uint("count", count)
            .field_uint("total_us", r.totals.total_ns(stage) / 1_000)
            .end_object();
    }
    w.end_object();
}

fn render_datasets(state: &ServerState) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("datasets").begin_array();
    for d in state.engine.registry().list() {
        w.begin_object()
            .field_str("name", &d.name)
            .field_bool("loaded", d.loaded);
        if let Some((n, m)) = d.shape {
            w.field_uint("nodes", n as u64)
                .field_uint("edges", m as u64);
        }
        if let Some(g) = d.generation {
            w.field_uint("generation", g);
        }
        // Durability state, present only when the server persists this
        // dataset (serve --data-dir).
        if let Some(r) = d.wal_records {
            w.field_uint("wal_records", r);
        }
        if let Some(b) = d.wal_bytes {
            w.field_uint("wal_bytes", b);
        }
        if let Some(g) = d.last_checkpoint_generation {
            w.field_uint("last_checkpoint_generation", g);
        }
        if let Some(n) = d.replayed_records {
            w.field_uint("replayed_records", n);
        }
        if let Some(ms) = d.recovery_ms {
            w.field_uint("recovery_ms", ms);
        }
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn render_metrics(state: &ServerState) -> String {
    let s = state.engine.stats();
    let eobs = state.engine.obs();
    let queue_depth = state.queue.lock().unwrap().len() as u64;
    let mut w = JsonWriter::new();
    // Pre-existing keys keep their exact order and spelling — external
    // scrapers key-scan this body. New observability keys are appended
    // after `diffs`, before the `datasets` array.
    w.begin_object()
        .key("cache")
        .begin_object()
        .field_uint("hits", s.cache.hits)
        .field_uint("misses", s.cache.misses)
        .field_uint("entries", s.cache.entries as u64)
        .field_uint("capacity", s.cache.capacity as u64)
        .end_object()
        .field_uint("computed", s.computed)
        .field_uint("coalesced", s.coalesced)
        .field_uint("refined", s.refined)
        .field_uint("worlds_sampled", s.worlds_sampled)
        .field_uint("worlds_requested", s.worlds_requested)
        .field_uint("rejected", state.rejected.load(Ordering::Relaxed))
        .field_uint("served", state.served.load(Ordering::Relaxed))
        .field_uint("updates", state.updates.load(Ordering::Relaxed))
        .field_uint("batches", state.batches.load(Ordering::Relaxed))
        .field_uint("diffs", state.diffs.load(Ordering::Relaxed))
        .field_uint(
            "refine_queue_depth",
            eobs.refine_queue_depth.value().max(0) as u64,
        )
        .field_uint("refine_ok", eobs.refine_ok.value())
        .field_uint("refine_failed", eobs.refine_failed.value())
        .field_uint("inflight", state.http_obs.inflight.value().max(0) as u64)
        .field_uint("queue_depth", queue_depth)
        .field_uint("profiled", eobs.profiled.value())
        .field_uint("checkpoints", state.checkpoints.load(Ordering::Relaxed))
        .field_uint("slow_queries", state.flight.slow_promoted());
    // Per-dataset dynamic-graph state (loaded datasets only — listing must
    // never force construction).
    w.key("datasets").begin_array();
    for d in state.engine.registry().list() {
        if !d.loaded {
            continue;
        }
        w.begin_object().field_str("name", &d.name);
        if let Some(g) = d.generation {
            w.field_uint("generation", g);
        }
        if let Some(o) = d.overlay {
            w.field_uint("overlay", o as u64);
        }
        if let Some(c) = d.compactions {
            w.field_uint("compactions", c);
        }
        // Durability keys are appended after the pre-existing trio and only
        // present on persistent datasets — key-scanning scrapers see an
        // unchanged body on non-durable servers.
        if let Some(r) = d.wal_records {
            w.field_uint("wal_records", r);
        }
        if let Some(b) = d.wal_bytes {
            w.field_uint("wal_bytes", b);
        }
        if let Some(g) = d.last_checkpoint_generation {
            w.field_uint("last_checkpoint_generation", g);
        }
        if let Some(n) = d.replayed_records {
            w.field_uint("replayed_records", n);
        }
        if let Some(ms) = d.recovery_ms {
            w.field_uint("recovery_ms", ms);
        }
        w.end_object();
    }
    w.end_array().end_object();
    w.finish()
}

/// The Prometheus text-exposition rendering of `/metrics` (served when the
/// scraper's `Accept` header asks for it; see [`wants_prometheus`]).
///
/// Latency histograms render one series per `(endpoint, source, status)`
/// combination that has seen traffic, with all 64 cumulative buckets —
/// so a scraper can reconstruct exact per-window snapshots with
/// [`mpds_obs::scrape::prom_histogram`].
fn render_metrics_prom(state: &ServerState) -> String {
    let s = state.engine.stats();
    let eobs = state.engine.obs();
    let mut p = PromText::new();

    p.family(
        "mpds_http_request_duration_microseconds",
        "histogram",
        "End-to-end request wall time by endpoint, cache source, and status class.",
    );
    for (endpoint, source, class, snap) in state.http_obs.series() {
        // Each bucket line carries the most recent trace id that landed in
        // it, in Prometheus exemplar syntax — resolvable while retained via
        // GET /debug/trace/<id>.
        p.histogram_with_exemplars(
            "mpds_http_request_duration_microseconds",
            &[
                ("endpoint", endpoint.as_str()),
                ("source", source.as_str()),
                ("status", class.as_str()),
            ],
            &snap,
            &state.http_obs.exemplars(endpoint, source, class),
        );
    }

    p.family(
        "mpds_inflight_requests",
        "gauge",
        "Requests currently being read, routed, or written (includes this scrape).",
    );
    p.sample_i64(
        "mpds_inflight_requests",
        &[],
        state.http_obs.inflight.value(),
    );
    p.family(
        "mpds_admission_queue_depth",
        "gauge",
        "Accepted connections waiting for a worker (503 past capacity).",
    );
    p.sample_u64(
        "mpds_admission_queue_depth",
        &[],
        state.queue.lock().unwrap().len() as u64,
    );

    p.family(
        "mpds_refine_queue_depth",
        "gauge",
        "Background refinement jobs queued or running (0 when drained).",
    );
    p.sample_i64(
        "mpds_refine_queue_depth",
        &[],
        eobs.refine_queue_depth.value(),
    );
    p.family(
        "mpds_refine_duration_microseconds",
        "histogram",
        "Wall time of completed background refinement runs.",
    );
    p.histogram(
        "mpds_refine_duration_microseconds",
        &[],
        &eobs.refine_hist.snapshot(),
    );
    p.family(
        "mpds_refine_runs_total",
        "counter",
        "Background refinement runs by outcome.",
    );
    p.sample_u64(
        "mpds_refine_runs_total",
        &[("outcome", "ok")],
        eobs.refine_ok.value(),
    );
    p.sample_u64(
        "mpds_refine_runs_total",
        &[("outcome", "failed")],
        eobs.refine_failed.value(),
    );

    let totals = eobs.stage_totals.totals();
    p.family(
        "mpds_stage_duration_nanoseconds_total",
        "counter",
        "Per-stage wall time aggregated over profiled (?profile=1) requests.",
    );
    for stage in Stage::ALL {
        p.sample_u64(
            "mpds_stage_duration_nanoseconds_total",
            &[("stage", stage.as_str())],
            totals.total_ns(stage),
        );
    }
    p.family(
        "mpds_stage_invocations_total",
        "counter",
        "Per-stage invocation counts aggregated over profiled requests.",
    );
    for stage in Stage::ALL {
        p.sample_u64(
            "mpds_stage_invocations_total",
            &[("stage", stage.as_str())],
            totals.count(stage),
        );
    }
    p.family(
        "mpds_profiled_requests_total",
        "counter",
        "Requests served with ?profile=1.",
    );
    p.sample_u64("mpds_profiled_requests_total", &[], eobs.profiled.value());

    p.family(
        "mpds_slow_queries_total",
        "counter",
        "Requests promoted into the slow-query ring (wall time past the threshold).",
    );
    p.sample_u64("mpds_slow_queries_total", &[], state.flight.slow_promoted());
    p.family(
        "mpds_inflight_traces",
        "gauge",
        "Requests currently registered in the flight recorder.",
    );
    p.sample_u64(
        "mpds_inflight_traces",
        &[],
        state.flight.in_flight().len() as u64,
    );

    // SLO burn-rate families: one series per configured objective.
    let slo_snaps = state.slo.snapshots();
    p.family(
        "mpds_slo_requests_total",
        "counter",
        "Requests scored against each SLO, by verdict (excluded requests are not counted).",
    );
    for s in &slo_snaps {
        p.sample_u64(
            "mpds_slo_requests_total",
            &[("slo", &s.objective.name), ("verdict", "good")],
            s.good_total,
        );
        p.sample_u64(
            "mpds_slo_requests_total",
            &[("slo", &s.objective.name), ("verdict", "bad")],
            s.bad_total,
        );
    }
    p.family(
        "mpds_slo_burn_rate",
        "gauge",
        "Error-budget burn rate per objective (1.0 = burning exactly the budget), over fast and slow windows.",
    );
    for s in &slo_snaps {
        p.sample_f64(
            "mpds_slo_burn_rate",
            &[("slo", &s.objective.name), ("window", "5m")],
            s.burn_fast,
        );
        p.sample_f64(
            "mpds_slo_burn_rate",
            &[("slo", &s.objective.name), ("window", "1h")],
            s.burn_slow,
        );
    }
    p.family(
        "mpds_slo_target",
        "gauge",
        "Configured good-fraction target per objective.",
    );
    for s in &slo_snaps {
        p.sample_f64(
            "mpds_slo_target",
            &[("slo", &s.objective.name)],
            s.objective.target,
        );
    }

    p.family(
        "mpds_cache_requests_total",
        "counter",
        "Result-cache lookups by outcome.",
    );
    p.sample_u64(
        "mpds_cache_requests_total",
        &[("result", "hit")],
        s.cache.hits,
    );
    p.sample_u64(
        "mpds_cache_requests_total",
        &[("result", "miss")],
        s.cache.misses,
    );
    p.family("mpds_cache_entries", "gauge", "Live result-cache entries.");
    p.sample_u64("mpds_cache_entries", &[], s.cache.entries as u64);
    p.family("mpds_cache_capacity", "gauge", "Result-cache capacity.");
    p.sample_u64("mpds_cache_capacity", &[], s.cache.capacity as u64);

    for (name, help, value) in [
        (
            "mpds_queries_computed_total",
            "Queries that ran an estimator (cache misses).",
            s.computed,
        ),
        (
            "mpds_queries_coalesced_total",
            "Queries that joined an identical in-flight computation.",
            s.coalesced,
        ),
        (
            "mpds_queries_refined_total",
            "Budget-truncated answers refined and republished.",
            s.refined,
        ),
        (
            "mpds_worlds_sampled_total",
            "Possible worlds fully sampled across all computed queries.",
            s.worlds_sampled,
        ),
        (
            "mpds_worlds_requested_total",
            "Possible worlds requested (theta summed) across computed queries.",
            s.worlds_requested,
        ),
        (
            "mpds_rejected_total",
            "Connections answered 503 at the admission gate.",
            state.rejected.load(Ordering::Relaxed),
        ),
        (
            "mpds_served_total",
            "Requests fully served (any status).",
            state.served.load(Ordering::Relaxed),
        ),
        (
            "mpds_updates_total",
            "Mutation batches applied through /update.",
            state.updates.load(Ordering::Relaxed),
        ),
        (
            "mpds_checkpoints_total",
            "Durable checkpoints forced through /admin/checkpoint.",
            state.checkpoints.load(Ordering::Relaxed),
        ),
        (
            "mpds_batches_total",
            "Query batches served through /batch.",
            state.batches.load(Ordering::Relaxed),
        ),
        (
            "mpds_diffs_total",
            "Diffs served through /diff.",
            state.diffs.load(Ordering::Relaxed),
        ),
    ] {
        p.family(name, "counter", help);
        p.sample_u64(name, &[], value);
    }

    // Per-dataset dynamic-graph state (loaded datasets only — a scrape
    // must never force construction).
    p.family(
        "mpds_dataset_generation",
        "gauge",
        "Current generation of each loaded dataset.",
    );
    let listing = state.engine.registry().list();
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(g) = d.generation {
            p.sample_u64("mpds_dataset_generation", &[("dataset", &d.name)], g);
        }
    }
    p.family(
        "mpds_dataset_overlay_edges",
        "gauge",
        "Uncompacted overlay edges per loaded dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(o) = d.overlay {
            p.sample_u64(
                "mpds_dataset_overlay_edges",
                &[("dataset", &d.name)],
                o as u64,
            );
        }
    }
    p.family(
        "mpds_dataset_compactions_total",
        "counter",
        "Overlay compactions per loaded dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(c) = d.compactions {
            p.sample_u64("mpds_dataset_compactions_total", &[("dataset", &d.name)], c);
        }
    }
    // Durability families sample only persistent datasets, so non-durable
    // servers expose the families with no series.
    p.family(
        "mpds_dataset_wal_records",
        "gauge",
        "Write-ahead-log records not yet covered by a checkpoint, per durable dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(r) = d.wal_records {
            p.sample_u64("mpds_dataset_wal_records", &[("dataset", &d.name)], r);
        }
    }
    p.family(
        "mpds_dataset_wal_bytes",
        "gauge",
        "On-disk write-ahead-log size in bytes, per durable dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(b) = d.wal_bytes {
            p.sample_u64("mpds_dataset_wal_bytes", &[("dataset", &d.name)], b);
        }
    }
    p.family(
        "mpds_dataset_last_checkpoint_generation",
        "gauge",
        "Generation stamped into the newest durable checkpoint, per durable dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(g) = d.last_checkpoint_generation {
            p.sample_u64(
                "mpds_dataset_last_checkpoint_generation",
                &[("dataset", &d.name)],
                g,
            );
        }
    }
    p.family(
        "mpds_dataset_replayed_records",
        "gauge",
        "WAL records replayed during the last recovery, per durable dataset.",
    );
    for d in listing.iter().filter(|d| d.loaded) {
        if let Some(n) = d.replayed_records {
            p.sample_u64("mpds_dataset_replayed_records", &[("dataset", &d.name)], n);
        }
    }
    p.finish()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &[u8],
    x_cache: Option<&str>,
    content_type: &str,
    trace: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(v) = x_cache {
        head.push_str(&format!("X-Cache: {v}\r\n"));
    }
    if let Some(t) = trace {
        head.push_str(&format!("X-Trace-Id: {t}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Extracts the single parameter `want` from a query string.
fn single_param(query: &str, want: &str) -> Result<String, String> {
    for (k, v) in query_pairs(query)? {
        if k == want {
            return Ok(v);
        }
    }
    Err(format!("missing parameter {want:?}"))
}

/// Splits and percent-decodes `k=v&k=v` pairs.
fn query_pairs(query: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

/// Minimal percent-decoding (`%XX` and `+` for space).
fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("query parameter {s:?} is not UTF-8"))
}

/// Parses `/query` parameters into a [`QueryRequest`]. Unknown and
/// duplicate parameters are rejected — same contract as the CLI flags.
fn parse_query_request(query: &str) -> Result<QueryRequest, String> {
    parse_query_pairs(&query_pairs(query)?)
}

/// The pairs-based core of [`parse_query_request`], shared with `/diff`
/// (which strips its own parameters off the pair list first).
fn parse_query_pairs(pairs: &[(String, String)]) -> Result<QueryRequest, String> {
    let dataset = pairs
        .iter()
        .find(|(k, _)| k == "dataset")
        .map(|(_, v)| v.clone())
        .ok_or("missing parameter \"dataset\"")?;
    let mut req = QueryRequest::new(&dataset);
    let mut seen = std::collections::HashSet::new();
    let mut stop: Option<String> = None;
    let mut window: Option<u32> = None;
    for (k, v) in pairs {
        // `density` is an alias of `notion`; canonicalize before the
        // duplicate check so `notion=…&density=…` cannot sneak past it.
        let canonical = if k == "density" { "notion" } else { k.as_str() };
        if !seen.insert(canonical.to_string()) {
            return Err(format!("duplicate parameter {canonical:?}"));
        }
        let parse_usize = || v.parse::<usize>().map_err(|e| format!("{k}: {e}"));
        match k.as_str() {
            "dataset" => {}
            "algo" => req.algo = Algo::parse(v)?,
            "notion" | "density" => req.notion = v.clone(),
            "theta" => req.theta = parse_usize()?,
            "k" => req.k = parse_usize()?,
            "lm" => req.lm = parse_usize()?,
            "seed" => req.seed = v.parse().map_err(|e| format!("seed: {e}"))?,
            "heuristic" => {
                req.heuristic = match v.as_str() {
                    "true" | "1" | "" => true,
                    "false" | "0" => false,
                    other => return Err(format!("heuristic: bad boolean {other:?}")),
                }
            }
            "threads" => req.threads = parse_usize()?,
            "timeout_ms" => {
                req.timeout_ms = Some(v.parse().map_err(|e| format!("timeout_ms: {e}"))?)
            }
            "budget_ms" => req.budget_ms = Some(v.parse().map_err(|e| format!("budget_ms: {e}"))?),
            "profile" => {
                req.profile = match v.as_str() {
                    "true" | "1" | "" => true,
                    "false" | "0" => false,
                    other => return Err(format!("profile: bad boolean {other:?}")),
                }
            }
            "stop" => stop = Some(v.clone()),
            "window" => window = Some(v.parse().map_err(|e| format!("window: {e}"))?),
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    req.stop = parse_stop(stop.as_deref(), window)?;
    Ok(req)
}

/// Combines the `stop` and `window` parameters into a [`StopSpec`]: the
/// grammar shared by `/query`, `/batch`, and the CLI flags. `window`
/// without `stop=stable` is rejected (it would silently do nothing).
fn parse_stop(stop: Option<&str>, window: Option<u32>) -> Result<StopSpec, String> {
    match (stop, window) {
        (None, None) | (Some("fixed"), None) => Ok(StopSpec::Fixed),
        (Some("stable"), w) => Ok(StopSpec::Stable {
            window: w.unwrap_or(DEFAULT_STABLE_WINDOW),
        }),
        (Some("fixed"), Some(_)) | (None, Some(_)) => {
            Err("window requires stop=stable".to_string())
        }
        (Some(other), _) => Err(format!(
            "stop: unknown policy {other:?} (expected fixed|stable)"
        )),
    }
}

/// Parses `/diff` parameters: the `/query` grammar plus a required
/// `against` (the baseline dataset), minus `threads` (diffs are serial —
/// common random numbers are one per-snapshot stream).
fn parse_diff_request(query: &str) -> Result<(QueryRequest, String), String> {
    let mut against = None;
    let mut rest = Vec::new();
    for (k, v) in query_pairs(query)? {
        match k.as_str() {
            "against" => {
                if against.replace(v).is_some() {
                    return Err("duplicate parameter \"against\"".to_string());
                }
            }
            "threads" => {
                return Err(
                    "diff runs serially (CRN is one per-snapshot stream); drop threads".to_string(),
                )
            }
            "stop" | "window" | "budget_ms" => {
                return Err(format!(
                    "diff supports no {k:?}: common random numbers need the same \
                     fixed-θ stream on both snapshots"
                ))
            }
            "profile" => {
                return Err(
                    "diff supports no \"profile\": stage timings are per-evaluation \
                     and a diff runs two"
                        .to_string(),
                )
            }
            _ => rest.push((k, v)),
        }
    }
    let req = parse_query_pairs(&rest)?;
    let against = against.ok_or("missing parameter \"against\"")?;
    Ok((req, against))
}

/// Parses a `POST /batch` JSON body. Shared stream fields live at the top
/// level; members carry only estimator-side knobs. Unknown and duplicate
/// keys are rejected — same contract as the query-string grammar.
fn parse_batch_request(body: &[u8]) -> Result<BatchRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "batch body is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| format!("batch body: {e}"))?;
    let JsonValue::Object(fields) = &doc else {
        return Err("batch body must be a JSON object".to_string());
    };
    let dataset = doc
        .get("dataset")?
        .ok_or("missing field \"dataset\"")?
        .as_str("dataset")?
        .to_string();
    let mut req = BatchRequest::new(&dataset);
    let mut stop: Option<String> = None;
    let mut window: Option<u32> = None;
    for (key, value) in fields {
        match key.as_str() {
            "dataset" => {}
            "theta" => req.theta = value.as_usize("theta")?,
            "seed" => req.seed = value.as_u64("seed")?,
            "timeout_ms" => req.timeout_ms = Some(value.as_u64("timeout_ms")?),
            "budget_ms" => req.budget_ms = Some(value.as_u64("budget_ms")?),
            "stop" => stop = Some(value.as_str("stop")?.to_string()),
            "window" => {
                let raw = value.as_u64("window")?;
                window = Some(
                    raw.try_into()
                        .map_err(|_| format!("window: {raw} does not fit in 32 bits"))?,
                )
            }
            "members" => {
                for (i, m) in value.as_array("members")?.iter().enumerate() {
                    req.members.push(parse_batch_member(m, i)?);
                }
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    req.stop = parse_stop(stop.as_deref(), window)?;
    // Trip the duplicate-key check for every known top-level field.
    for key in [
        "dataset",
        "theta",
        "seed",
        "timeout_ms",
        "budget_ms",
        "stop",
        "window",
        "members",
    ] {
        doc.get(key)?;
    }
    if req.members.is_empty() {
        return Err("batch has no members (provide a non-empty \"members\" array)".to_string());
    }
    if req.members.len() > MAX_BATCH_MEMBERS {
        return Err(format!(
            "batch has {} members (limit {MAX_BATCH_MEMBERS})",
            req.members.len()
        ));
    }
    Ok(req)
}

fn parse_batch_member(value: &JsonValue, index: usize) -> Result<BatchMember, String> {
    let JsonValue::Object(fields) = value else {
        return Err(format!("member {index}: expected a JSON object"));
    };
    let mut m = BatchMember::default();
    for (key, v) in fields {
        let what = |name: &str| format!("member {index}: {name}");
        match key.as_str() {
            "algo" => m.algo = Algo::parse(v.as_str(&what("algo"))?)?,
            "notion" | "density" => m.notion = v.as_str(&what("notion"))?.to_string(),
            "k" => m.k = v.as_usize(&what("k"))?,
            "lm" => m.lm = v.as_usize(&what("lm"))?,
            "heuristic" => m.heuristic = v.as_bool(&what("heuristic"))?,
            other => return Err(format!("member {index}: unknown field {other:?}")),
        }
    }
    for key in ["algo", "notion", "k", "lm", "heuristic"] {
        value.get(key).map_err(|e| format!("member {index}: {e}"))?;
    }
    // `notion`/`density` aliasing cannot slip a duplicate past `get`.
    if value.get("notion")?.is_some() && value.get("density")?.is_some() {
        return Err(format!("member {index}: duplicate key \"notion\""));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").unwrap(), "a b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("bad%2").is_err());
        assert!(percent_decode("bad%zz").is_err());
    }

    #[test]
    fn query_request_parsing() {
        let req = parse_query_request("dataset=karate&theta=100&k=2&seed=7&algo=nds&lm=3").unwrap();
        assert_eq!(req.dataset, "karate");
        assert_eq!(req.theta, 100);
        assert_eq!(req.k, 2);
        assert_eq!(req.seed, 7);
        assert_eq!(req.algo, Algo::Nds);
        assert_eq!(req.lm, 3);
        assert!(!req.heuristic);
        assert_eq!(req.threads, 1);
    }

    #[test]
    fn threads_parameter_is_parsed_and_bounded() {
        let req = parse_query_request("dataset=karate&threads=4").unwrap();
        assert_eq!(req.threads, 4);
        assert!(req.validate().is_ok());
        let req = parse_query_request("dataset=karate&threads=0").unwrap();
        assert!(req.validate().unwrap_err().contains("threads"));
        assert!(parse_query_request("dataset=karate&threads=x").is_err());
        assert!(parse_query_request("dataset=karate&threads=2&threads=3")
            .unwrap_err()
            .contains("duplicate parameter"));
    }

    #[test]
    fn query_request_rejects_unknown_and_duplicates() {
        assert!(parse_query_request("theta=5")
            .unwrap_err()
            .contains("dataset"));
        assert!(parse_query_request("dataset=karate&bogus=1")
            .unwrap_err()
            .contains("unknown parameter"));
        assert!(parse_query_request("dataset=karate&theta=1&theta=2")
            .unwrap_err()
            .contains("duplicate parameter"));
        // `density` aliases `notion`: mixing them is a duplicate too.
        assert!(
            parse_query_request("dataset=karate&notion=edge&density=2star")
                .unwrap_err()
                .contains("duplicate parameter \"notion\"")
        );
    }

    #[test]
    fn diff_request_parsing() {
        let (req, against) =
            parse_diff_request("dataset=after&against=before&theta=200&k=3&seed=9").unwrap();
        assert_eq!(req.dataset, "after");
        assert_eq!(against, "before");
        assert_eq!(req.theta, 200);
        assert_eq!(req.k, 3);
        assert_eq!(req.seed, 9);
        assert!(parse_diff_request("dataset=a&theta=5")
            .unwrap_err()
            .contains("against"));
        assert!(parse_diff_request("dataset=a&against=b&against=c")
            .unwrap_err()
            .contains("duplicate parameter \"against\""));
        assert!(parse_diff_request("dataset=a&against=b&threads=2")
            .unwrap_err()
            .contains("serially"));
        assert!(parse_diff_request("dataset=a&against=b&bogus=1")
            .unwrap_err()
            .contains("unknown parameter"));
    }

    #[test]
    fn batch_request_parsing() {
        let body = br#"{"dataset":"karate","theta":150,"seed":11,
            "members":[{"algo":"mpds","notion":"edge","k":2},
                       {"algo":"nds","k":3,"lm":2,"heuristic":true}]}"#;
        let req = parse_batch_request(body).unwrap();
        assert_eq!(req.dataset, "karate");
        assert_eq!(req.theta, 150);
        assert_eq!(req.seed, 11);
        assert_eq!(req.timeout_ms, None);
        assert_eq!(req.members.len(), 2);
        assert_eq!(req.members[0].algo, Algo::Mpds);
        assert_eq!(req.members[0].k, 2);
        assert_eq!(req.members[1].algo, Algo::Nds);
        assert_eq!(req.members[1].lm, 2);
        assert!(req.members[1].heuristic);
    }

    #[test]
    fn batch_request_defaults_and_validation() {
        // Members fall back to the same defaults as /query parameters.
        let req = parse_batch_request(br#"{"dataset":"d","members":[{}]}"#).unwrap();
        assert_eq!(req.theta, 320);
        assert_eq!(req.seed, 42);
        assert_eq!(req.members[0].algo, Algo::Mpds);
        assert_eq!(req.members[0].notion, "edge");
        assert_eq!(req.members[0].k, 5);
    }

    #[test]
    fn batch_request_rejections() {
        let err = |body: &str| parse_batch_request(body.as_bytes()).unwrap_err();
        assert!(err(r#"{"members":[{}]}"#).contains("dataset"));
        assert!(err(r#"{"dataset":"d"}"#).contains("members"));
        assert!(err(r#"{"dataset":"d","members":[]}"#).contains("no members"));
        assert!(err(r#"{"dataset":"d","members":[{}],"bogus":1}"#).contains("unknown field"));
        assert!(
            err(r#"{"dataset":"d","members":[{"bogus":1}]}"#).contains("member 0: unknown field")
        );
        assert!(err(r#"{"dataset":"d","theta":1,"theta":2,"members":[{}]}"#).contains("duplicate"));
        assert!(err(r#"{"dataset":"d","members":[{"k":1},{"k":2,"k":3}]}"#).contains("member 1:"));
        assert!(
            err(r#"{"dataset":"d","members":[{"notion":"edge","density":"edge"}]}"#)
                .contains("duplicate key \"notion\"")
        );
        assert!(err("not json").contains("batch body"));
        let too_many = format!(
            r#"{{"dataset":"d","members":[{}]}}"#,
            vec!["{}"; MAX_BATCH_MEMBERS + 1].join(",")
        );
        assert!(err(&too_many).contains("limit"));
    }

    #[test]
    fn stop_and_budget_parameters() {
        let req = parse_query_request("dataset=karate&stop=stable&window=16").unwrap();
        assert_eq!(req.stop, StopSpec::Stable { window: 16 });
        let req = parse_query_request("dataset=karate&stop=stable").unwrap();
        assert_eq!(
            req.stop,
            StopSpec::Stable {
                window: DEFAULT_STABLE_WINDOW
            }
        );
        let req = parse_query_request("dataset=karate&stop=fixed").unwrap();
        assert_eq!(req.stop, StopSpec::Fixed);
        let req = parse_query_request("dataset=karate&budget_ms=250").unwrap();
        assert_eq!(req.budget_ms, Some(250));
        assert_eq!(req.stop, StopSpec::Fixed);
        // window without stop=stable would silently do nothing — reject.
        assert!(parse_query_request("dataset=karate&window=8")
            .unwrap_err()
            .contains("stop=stable"));
        assert!(parse_query_request("dataset=karate&stop=fixed&window=8")
            .unwrap_err()
            .contains("stop=stable"));
        assert!(parse_query_request("dataset=karate&stop=sideways")
            .unwrap_err()
            .contains("unknown policy"));
        assert!(
            parse_query_request("dataset=karate&stop=stable&stop=stable")
                .unwrap_err()
                .contains("duplicate parameter")
        );
    }

    #[test]
    fn diff_rejects_anytime_parameters() {
        for p in ["stop=stable", "window=8", "budget_ms=100"] {
            let err = parse_diff_request(&format!("dataset=a&against=b&{p}")).unwrap_err();
            assert!(err.contains("common random numbers"), "{p}: {err}");
        }
    }

    #[test]
    fn profile_parameter_forms() {
        assert!(
            parse_query_request("dataset=karate&profile=1")
                .unwrap()
                .profile
        );
        assert!(
            parse_query_request("dataset=karate&profile=true")
                .unwrap()
                .profile
        );
        assert!(
            !parse_query_request("dataset=karate&profile=0")
                .unwrap()
                .profile
        );
        assert!(!parse_query_request("dataset=karate").unwrap().profile);
        assert!(parse_query_request("dataset=karate&profile=maybe").is_err());
        assert!(parse_query_request("dataset=karate&profile=1&profile=1")
            .unwrap_err()
            .contains("duplicate parameter"));
        assert!(parse_diff_request("dataset=a&against=b&profile=1")
            .unwrap_err()
            .contains("profile"));
    }

    #[test]
    fn metrics_content_negotiation() {
        assert!(!wants_prometheus(""));
        assert!(!wants_prometheus("*/*"));
        assert!(!wants_prometheus("application/json"));
        assert!(wants_prometheus("text/plain"));
        assert!(wants_prometheus("text/plain; version=0.0.4"));
        assert!(wants_prometheus("application/openmetrics-text"));
        assert!(wants_prometheus("TEXT/PLAIN"));
    }

    #[test]
    fn batch_stop_and_budget_fields() {
        let req = parse_batch_request(
            br#"{"dataset":"d","stop":"stable","window":12,"budget_ms":500,"members":[{}]}"#,
        )
        .unwrap();
        assert_eq!(req.stop, StopSpec::Stable { window: 12 });
        assert_eq!(req.budget_ms, Some(500));
        let req =
            parse_batch_request(br#"{"dataset":"d","stop":"stable","members":[{}]}"#).unwrap();
        assert_eq!(
            req.stop,
            StopSpec::Stable {
                window: DEFAULT_STABLE_WINDOW
            }
        );
        assert!(
            parse_batch_request(br#"{"dataset":"d","window":5,"members":[{}]}"#)
                .unwrap_err()
                .contains("stop=stable")
        );
        assert!(
            parse_batch_request(br#"{"dataset":"d","stop":"nope","members":[{}]}"#)
                .unwrap_err()
                .contains("unknown policy")
        );
    }

    #[test]
    fn heuristic_flag_forms() {
        assert!(
            parse_query_request("dataset=karate&heuristic=true")
                .unwrap()
                .heuristic
        );
        assert!(
            parse_query_request("dataset=karate&heuristic=1")
                .unwrap()
                .heuristic
        );
        assert!(
            !parse_query_request("dataset=karate&heuristic=false")
                .unwrap()
                .heuristic
        );
        assert!(parse_query_request("dataset=karate&heuristic=maybe").is_err());
    }
}
