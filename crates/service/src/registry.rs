//! Graph registry: named datasets loaded once, served as generation-stamped
//! immutable snapshots, mutable through batched updates.
//!
//! The serving layer must never pay dataset construction per query — the
//! registry maps names to lazily-built datasets. Built-ins cover the
//! embedded Karate Club and the deterministic synthetic stand-ins of
//! `ugraph::datasets`; arbitrary weighted-edge-list files can be registered
//! alongside them (the CLI's `serve --dataset NAME=PATH`).
//!
//! Since PR 5 every entry is **dynamic**: behind the one-time build sits a
//! [`ugraph::dynamic::DeltaGraph`] writer plus an `ArcSwap`-style
//! `RwLock<Arc<LoadedGraph>>` holding the current immutable snapshot.
//! Readers share the read lock and clone the `Arc` (no torn reads — a
//! query computes against exactly the generation it resolved, and the
//! cache-HIT fast path never serializes on other readers); writers
//! serialize on the per-entry writer lock, apply one atomic mutation
//! batch, take the next snapshot, and swap it in under a brief write lock.
//! Generations observed through [`GraphRegistry::get`] are therefore
//! monotone per dataset.
//!
//! Construction is still coalesced: each entry holds a [`OnceLock`], so N
//! concurrent first-queries on the same dataset build it exactly once while
//! the others block on that build — the same discipline the result cache
//! applies to query computation.
//!
//! With a [`mpds_store::Store`] attached (the CLI's `serve --data-dir`),
//! every entry is also **durable**: accepted batches are WAL-logged before
//! the new snapshot is published (log-before-swap — a crash between the
//! append and the swap replays to the exact state the client was acked),
//! `DeltaGraph` compactions trigger snapshot checkpoints, and first builds
//! recover from the newest valid checkpoint plus the WAL tail instead of
//! the original source.

use mpds_store::{replay_wal, DatasetStore, RecoveryStats, Store};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;
use ugraph::dynamic::DeltaGraph;
use ugraph::{datasets, io, NodeId, UncertainGraph};

/// A loaded dataset snapshot: the shared graph at one generation plus the
/// label of every compact node id (file-backed datasets keep their original
/// labels; built-ins are identity-labeled until an update adds nodes).
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// Registry name.
    pub name: String,
    /// The uncertain graph (CSR; immutable — updates produce a *new*
    /// `LoadedGraph` at the next generation).
    pub graph: Arc<UncertainGraph>,
    /// Original node label per compact id, when the source had its own
    /// labels (`None` means identity).
    pub labels: Option<Vec<u32>>,
    /// The dataset generation this snapshot belongs to (0 = as loaded;
    /// bumped by every applied update batch). Part of every cache key, so
    /// stale cached responses age out of the LRU naturally.
    pub generation: u64,
}

impl LoadedGraph {
    /// The display label of compact node id `v`.
    pub fn label_of(&self, v: NodeId) -> u32 {
        match &self.labels {
            Some(l) => l[v as usize],
            None => v,
        }
    }
}

/// Where a registry entry's graph comes from.
enum Source {
    /// A named constructor over `ugraph::datasets` (deterministic per seed).
    Builtin(fn() -> datasets::Dataset),
    /// A weighted edge-list file (`u v p` per line).
    File(PathBuf),
}

/// Writer-side state of a dynamic entry, serialized by its mutex.
struct Writer {
    delta: DeltaGraph,
    /// Compact id → original label (identity-seeded for built-ins; grows
    /// when updates reference unseen labels).
    labels: Vec<u32>,
    /// Durable storage for this dataset, when the registry has a data dir.
    /// Shares the writer lock, which is what orders WAL appends.
    store: Option<DatasetStore>,
    /// Set when a WAL append or checkpoint failed after the in-memory state
    /// advanced: the writer and the log disagree, so further updates are
    /// refused (reads keep serving the last published snapshot) until a
    /// restart replays the log into a consistent writer again.
    poisoned: Option<String>,
}

/// One built dataset: the current snapshot (swapped atomically under a
/// short-lived lock) plus the writer and metric mirrors.
struct LiveDataset {
    /// Generation-stamped current snapshot. Readers share the read lock —
    /// every query (including the cache-HIT fast path) resolves through
    /// here, so readers must never serialize on each other; only the
    /// writer's swap takes the write lock, briefly.
    current: RwLock<Arc<LoadedGraph>>,
    writer: Mutex<Writer>,
    /// Metric mirrors updated after each batch, readable without touching
    /// the writer lock.
    overlay: AtomicUsize,
    compactions: AtomicU64,
    /// Whether this dataset persists to a data dir (fixed at build time).
    persistent: bool,
    /// WAL record count mirror (current log contents).
    wal_records: AtomicU64,
    /// WAL byte count mirror (current log contents).
    wal_bytes: AtomicU64,
    /// Newest checkpoint generation + 1 (0 = no checkpoint yet).
    checkpoint_gen_plus_one: AtomicU64,
    /// WAL records replayed during this process's boot-time recovery.
    replayed_records: AtomicU64,
    /// Wall-clock milliseconds boot-time recovery took (open + replay).
    recovery_ms: AtomicU64,
}

impl LiveDataset {
    /// Refreshes the lock-free persistence mirrors from the writer-side
    /// store. Called with the writer lock held, read without it.
    fn mirror_store(&self, store: &DatasetStore) {
        self.wal_records
            .store(store.wal_records(), Ordering::Relaxed);
        self.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
        self.checkpoint_gen_plus_one.store(
            store.last_checkpoint_generation().map_or(0, |g| g + 1),
            Ordering::Relaxed,
        );
    }
}

struct Entry {
    source: Source,
    /// Build-once cell; errors are cached too (a bad file stays bad).
    cell: OnceLock<Result<Arc<LiveDataset>, String>>,
}

/// Immutable-after-construction name → dataset table.
///
/// All registration happens before serving starts, so lookups need no lock;
/// the per-entry [`OnceLock`] synchronizes lazy construction and the
/// per-entry snapshot/writer locks synchronize updates.
pub struct GraphRegistry {
    entries: BTreeMap<String, Entry>,
    /// Durable storage root, when serving with `--data-dir`.
    store: Option<Store>,
}

/// Metadata row returned by [`GraphRegistry::list`]. Stats are only present
/// for datasets that have already been built — listing must stay cheap.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Registry name.
    pub name: String,
    /// Whether the graph has been constructed in this process.
    pub loaded: bool,
    /// `(nodes, edges)` of the current snapshot, when loaded.
    pub shape: Option<(usize, usize)>,
    /// Current generation, when loaded.
    pub generation: Option<u64>,
    /// Live mutation-overlay entry count, when loaded.
    pub overlay: Option<usize>,
    /// Overlay compactions performed so far, when loaded.
    pub compactions: Option<u64>,
    /// Records currently in the WAL, when loaded and persistent.
    pub wal_records: Option<u64>,
    /// Bytes currently in the WAL, when loaded and persistent.
    pub wal_bytes: Option<u64>,
    /// Generation of the newest on-disk checkpoint, when one exists.
    pub last_checkpoint_generation: Option<u64>,
    /// WAL records replayed at boot, when loaded and persistent.
    pub replayed_records: Option<u64>,
    /// Wall-clock milliseconds boot recovery took, when loaded and persistent.
    pub recovery_ms: Option<u64>,
}

/// What one applied `/update` batch did (see [`GraphRegistry::apply_update`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The dataset generation after the batch.
    pub generation: u64,
    /// Edges inserted.
    pub inserted: usize,
    /// Edges re-weighted.
    pub reweighted: usize,
    /// Edges deleted.
    pub deleted: usize,
    /// Nodes appended (unseen labels).
    pub nodes_added: usize,
    /// `(nodes, edges)` of the new snapshot.
    pub shape: (usize, usize),
    /// Overlay entries alive after the batch (0 right after a compaction).
    pub overlay: usize,
    /// Total compactions performed on this dataset so far.
    pub compactions: u64,
}

/// What one explicit checkpoint did (see [`GraphRegistry::checkpoint_dataset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// The generation the checkpoint was taken at (the current one).
    pub generation: u64,
    /// Records left in the WAL after truncation.
    pub wal_records: u64,
    /// Bytes left in the WAL after truncation.
    pub wal_bytes: u64,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GraphRegistry {
            entries: BTreeMap::new(),
            store: None,
        }
    }

    /// A registry preloaded with every built-in dataset.
    ///
    /// Names follow the paper's Table II (lower-case, `-like` dropped):
    /// `karate`, `intel-lab`, `lastfm`, `homo-sapiens`, `biomine`,
    /// `twitter`, `friendster`, and the §VI-H accuracy graphs `ba7`/`ba9`/
    /// `er7`/`er9`. All are deterministic: fixed construction seeds, so two
    /// servers hold identical graphs and identical queries return identical
    /// bytes across processes — until updates diverge their generations.
    pub fn with_builtins() -> Self {
        let mut r = GraphRegistry::new();
        r.register_builtin("karate", datasets::karate_club);
        r.register_builtin("intel-lab", || datasets::intel_lab_like(1));
        r.register_builtin("lastfm", || datasets::lastfm_like(1));
        r.register_builtin("homo-sapiens", || datasets::homo_sapiens_like(1));
        r.register_builtin("biomine", || datasets::biomine_like(1));
        r.register_builtin("twitter", || datasets::twitter_like(1));
        r.register_builtin("friendster", || datasets::friendster_like(1));
        r.register_builtin("ba7", || datasets::synthetic_accuracy_graph("BA7", 42));
        r.register_builtin("ba9", || datasets::synthetic_accuracy_graph("BA9", 42));
        r.register_builtin("er7", || datasets::synthetic_accuracy_graph("ER7", 42));
        r.register_builtin("er9", || datasets::synthetic_accuracy_graph("ER9", 42));
        r
    }

    /// Registers a built-in constructor under `name` (replacing any previous
    /// entry of that name).
    pub fn register_builtin(&mut self, name: &str, build: fn() -> datasets::Dataset) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::Builtin(build),
                cell: OnceLock::new(),
            },
        );
    }

    /// Registers a weighted edge-list file under `name`. The file is read
    /// on first query, not here; a missing/corrupt file surfaces as a query
    /// error (and is cached as such).
    pub fn register_file(&mut self, name: &str, path: impl Into<PathBuf>) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::File(path.into()),
                cell: OnceLock::new(),
            },
        );
    }

    /// Attaches durable storage: every dataset built from now on opens a
    /// WAL + checkpoint directory under the store's data dir, recovers any
    /// on-disk state, and logs accepted batches before publishing them.
    /// Must be called before serving starts (like registration).
    pub fn set_store(&mut self, store: Store) {
        self.store = Some(store);
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Whether a data dir is attached (the precondition for checkpoints).
    pub fn persistence_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// Eagerly builds every registered dataset that has durable state on
    /// disk, so a restarted server resumes at its pre-crash generations
    /// before the first query arrives. Returns `(name, recovered
    /// generation)` per recovered dataset; build failures surface as `Err`
    /// strings without aborting the rest.
    pub fn recover_on_boot(&self) -> Vec<(String, Result<u64, String>)> {
        let Some(store) = &self.store else {
            return Vec::new();
        };
        self.entries
            .keys()
            .filter(|name| store.has_state(name))
            .map(|name| (name.clone(), self.get(name).map(|g| g.generation)))
            .collect()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Cheap metadata for every entry (never triggers construction).
    pub fn list(&self) -> Vec<DatasetInfo> {
        self.entries
            .iter()
            .map(|(name, e)| {
                let live = match e.cell.get() {
                    Some(Ok(live)) => Some(live),
                    _ => None,
                };
                let snapshot = live.map(|l| Arc::clone(&*l.current.read().unwrap()));
                let durable = live.filter(|l| l.persistent);
                DatasetInfo {
                    name: name.clone(),
                    loaded: live.is_some(),
                    shape: snapshot
                        .as_ref()
                        .map(|g| (g.graph.num_nodes(), g.graph.num_edges())),
                    generation: snapshot.as_ref().map(|g| g.generation),
                    overlay: live.map(|l| l.overlay.load(Ordering::Relaxed)),
                    compactions: live.map(|l| l.compactions.load(Ordering::Relaxed)),
                    wal_records: durable.map(|l| l.wal_records.load(Ordering::Relaxed)),
                    wal_bytes: durable.map(|l| l.wal_bytes.load(Ordering::Relaxed)),
                    last_checkpoint_generation: durable
                        .map(|l| l.checkpoint_gen_plus_one.load(Ordering::Relaxed))
                        .filter(|&g| g > 0)
                        .map(|g| g - 1),
                    replayed_records: durable.map(|l| l.replayed_records.load(Ordering::Relaxed)),
                    recovery_ms: durable.map(|l| l.recovery_ms.load(Ordering::Relaxed)),
                }
            })
            .collect()
    }

    fn live(&self, name: &str) -> Result<Arc<LiveDataset>, String> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| format!("unknown dataset {name:?} (try /datasets)"))?;
        entry
            .cell
            .get_or_init(|| build(name, &entry.source, self.store.as_ref()))
            .clone()
    }

    /// Fetches (building on first use) the current snapshot of the dataset
    /// named `name`.
    ///
    /// Concurrent first calls coalesce on the entry's `OnceLock`: one
    /// caller builds, the rest block until the build finishes. Afterwards
    /// every call is one short lock + `Arc` clone, and the generations
    /// returned for one dataset are monotone.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedGraph>, String> {
        let live = self.live(name)?;
        let current = live.current.read().unwrap();
        Ok(Arc::clone(&current))
    }

    /// Applies one mutation batch (the `u v p` / `u v -` grammar of
    /// [`ugraph::io::apply_edge_list_delta`], node ids in the dataset's
    /// original label space) atomically: on success the dataset moves to
    /// the next generation and subsequent [`GraphRegistry::get`] calls see
    /// the new snapshot; on error nothing changes.
    ///
    /// Writers for one dataset serialize on its writer lock; readers are
    /// never blocked for longer than the final snapshot swap.
    pub fn apply_update(
        &self,
        name: &str,
        mutations: impl std::io::Read,
    ) -> Result<UpdateOutcome, String> {
        self.apply_update_traced(name, mutations, None)
    }

    /// [`GraphRegistry::apply_update`] with an optional flight recorder:
    /// store-side work (WAL append, fsync, compaction checkpoints) is timed
    /// into `rec`'s stage totals when one is supplied.
    pub fn apply_update_traced(
        &self,
        name: &str,
        mut mutations: impl std::io::Read,
        rec: Option<&mpds_obs::Recorder>,
    ) -> Result<UpdateOutcome, String> {
        let live = self.live(name)?;
        // Buffer the batch body up front: the WAL logs the exact bytes that
        // were applied (bounded by the HTTP body cap on the service path).
        let mut payload = Vec::new();
        mutations
            .read_to_end(&mut payload)
            .map_err(|e| format!("dataset {name:?}: {e}"))?;
        let mut writer = live.writer.lock().unwrap();
        let Writer {
            delta,
            labels,
            store,
            poisoned,
        } = &mut *writer;
        if let Some(msg) = poisoned {
            return Err(format!(
                "dataset {name:?}: persistence failed earlier ({msg}); updates are \
                 refused until a restart recovers the log"
            ));
        }
        let generation_before = delta.generation();
        let compactions_before = delta.compactions();
        let applied = io::apply_edge_list_delta(delta, labels, payload.as_slice())
            .map_err(|e| format!("dataset {name:?}: {e}"))?;
        // Log before swap: the batch must be durable before any client can
        // observe (or be acked) the new generation. Empty batches don't
        // advance the generation and are not logged. On append failure the
        // in-memory writer is ahead of the log, so it is poisoned — the
        // published snapshot stays at the old generation and recovery from
        // the WAL reproduces exactly the acked prefix.
        if applied.generation > generation_before {
            if let Some(ds) = store.as_mut() {
                if let Err(e) = ds.log_batch_traced(applied.generation, &payload, rec) {
                    let msg = format!("WAL append failed: {e}");
                    *poisoned = Some(msg.clone());
                    return Err(format!("dataset {name:?}: {msg}"));
                }
            }
        }
        let compacted = delta.compactions() > compactions_before;
        let snapshot = delta.snapshot();
        let outcome = UpdateOutcome {
            generation: snapshot.generation(),
            inserted: applied.stats.inserted,
            reweighted: applied.stats.reweighted,
            deleted: applied.stats.deleted,
            nodes_added: applied.stats.nodes_added,
            shape: (snapshot.graph().num_nodes(), snapshot.graph().num_edges()),
            overlay: delta.overlay_len(),
            compactions: delta.compactions(),
        };
        let next = Arc::new(LoadedGraph {
            name: name.to_string(),
            graph: snapshot.shared_graph(),
            // Updated snapshots always carry explicit labels: identity
            // built-ins may have gained non-identity labels through appended
            // nodes, and an identity label vector resolves identically
            // either way.
            labels: Some(labels.clone()),
            generation: snapshot.generation(),
        });
        live.overlay.store(outcome.overlay, Ordering::Relaxed);
        live.compactions
            .store(outcome.compactions, Ordering::Relaxed);
        // Swap the published snapshot while still holding the writer lock,
        // so generations published through `current` are monotone.
        *live.current.write().unwrap() = next;
        // Compaction fired: take a checkpoint of the freshly-materialized
        // CSR and truncate the WAL prefix it covers. The batch itself is
        // already durable, so a checkpoint failure only poisons *future*
        // updates, not this (already acked-able) one.
        if compacted {
            if let Some(ds) = store.as_mut() {
                if let Err(e) =
                    ds.checkpoint_traced(snapshot.graph(), labels, snapshot.generation(), rec)
                {
                    *poisoned = Some(format!("checkpoint failed: {e}"));
                }
            }
        }
        if let Some(ds) = store.as_ref() {
            live.mirror_store(ds);
        }
        Ok(outcome)
    }

    /// Forces a compaction + snapshot checkpoint of `name` (the CLI's
    /// `mpds-cli checkpoint`, HTTP's `POST /admin/checkpoint`): the overlay
    /// is folded into a fresh base CSR, written as a checkpoint file, and
    /// the WAL prefix it covers is truncated. The generation is unchanged —
    /// checkpoints are an operational act, not a mutation.
    ///
    /// Errors if the registry has no data dir attached.
    pub fn checkpoint_dataset(&self, name: &str) -> Result<CheckpointOutcome, String> {
        self.checkpoint_dataset_traced(name, None)
    }

    /// [`GraphRegistry::checkpoint_dataset`] with an optional flight
    /// recorder timing the checkpoint write and its fsyncs.
    pub fn checkpoint_dataset_traced(
        &self,
        name: &str,
        rec: Option<&mpds_obs::Recorder>,
    ) -> Result<CheckpointOutcome, String> {
        if self.store.is_none() {
            return Err(format!(
                "dataset {name:?}: persistence is not enabled (serve with --data-dir)"
            ));
        }
        let live = self.live(name)?;
        let mut writer = live.writer.lock().unwrap();
        let Writer {
            delta,
            labels,
            store,
            poisoned,
        } = &mut *writer;
        if let Some(msg) = poisoned {
            return Err(format!(
                "dataset {name:?}: persistence failed earlier ({msg}); restart to recover"
            ));
        }
        let Some(ds) = store.as_mut() else {
            return Err(format!(
                "dataset {name:?}: persistence is not enabled (serve with --data-dir)"
            ));
        };
        delta.compact();
        let snapshot = delta.snapshot();
        ds.checkpoint_traced(snapshot.graph(), labels, snapshot.generation(), rec)
            .map_err(|e| format!("dataset {name:?}: checkpoint failed: {e}"))?;
        let outcome = CheckpointOutcome {
            generation: snapshot.generation(),
            wal_records: ds.wal_records(),
            wal_bytes: ds.wal_bytes(),
        };
        // Publish the compacted snapshot (same generation, fresh CSR) and
        // refresh the mirrors, mirroring the update path's swap discipline.
        let next = Arc::new(LoadedGraph {
            name: name.to_string(),
            graph: snapshot.shared_graph(),
            labels: Some(labels.clone()),
            generation: snapshot.generation(),
        });
        live.overlay.store(delta.overlay_len(), Ordering::Relaxed);
        live.compactions
            .store(delta.compactions(), Ordering::Relaxed);
        *live.current.write().unwrap() = next;
        live.mirror_store(ds);
        Ok(outcome)
    }
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::with_builtins()
    }
}

/// Loads a weighted edge-list file (`u v p` per line) as a [`LoadedGraph`]
/// with the file's original node labels preserved — the single file-loading
/// path shared by [`GraphRegistry`] entries and the CLI.
pub fn load_edge_list_file(name: &str, path: &std::path::Path) -> Result<LoadedGraph, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let (graph, labels) = io::read_weighted_edge_list(file).map_err(|e| e.to_string())?;
    Ok(LoadedGraph {
        name: name.to_string(),
        graph: Arc::new(graph),
        labels: Some(labels),
        generation: 0,
    })
}

fn build(name: &str, source: &Source, store: Option<&Store>) -> Result<Arc<LiveDataset>, String> {
    let started = Instant::now();
    // With durable storage attached, consult the disk first: a checkpoint
    // replaces the source as the base, and the WAL tail is replayed on top.
    let mut opened = match store {
        Some(s) => Some(
            s.open_dataset(name)
                .map_err(|e| format!("dataset {name:?}: {e}"))?,
        ),
        None => None,
    };
    let mut recovery = RecoveryStats::default();
    if let Some(open) = &opened {
        recovery.truncated_bytes = open.truncated_bytes;
        recovery.checkpoints_discarded = open.checkpoints_discarded;
    }
    let (mut delta, mut writer_labels, source_labels) =
        match opened.as_mut().and_then(|o| o.checkpoint.take()) {
            Some(ckpt) => {
                let graph = Arc::new(ckpt.graph);
                let delta = DeltaGraph::new(graph).with_generation(ckpt.generation);
                // Recovered snapshots always carry explicit labels, like
                // updated ones.
                (delta, ckpt.labels.clone(), Some(ckpt.labels))
            }
            None => {
                let (graph, labels) = match source {
                    Source::Builtin(f) => (Arc::new(f().graph), None),
                    Source::File(path) => {
                        let loaded = load_edge_list_file(name, path)
                            .map_err(|e| format!("dataset {name:?}: {e}"))?;
                        (loaded.graph, loaded.labels)
                    }
                };
                let writer_labels = labels
                    .clone()
                    .unwrap_or_else(|| (0..graph.num_nodes() as u32).collect());
                (DeltaGraph::new(graph), writer_labels, labels)
            }
        };
    if let Some(open) = &opened {
        let (replayed, skipped) = replay_wal(&mut delta, &mut writer_labels, &open.wal_records)
            .map_err(|e| format!("dataset {name:?}: {e}"))?;
        recovery.replayed_records = replayed;
        recovery.skipped_records = skipped;
    }
    let generation = delta.generation();
    let snapshot_graph = delta.snapshot().shared_graph();
    let snapshot = Arc::new(LoadedGraph {
        name: name.to_string(),
        graph: snapshot_graph,
        // Replay may have grown the label table past the source's: publish
        // the writer's labels whenever anything was recovered.
        labels: if generation > 0 {
            Some(writer_labels.clone())
        } else {
            source_labels
        },
        generation,
    });
    if opened.is_some() {
        recovery.recovery_ms = started.elapsed().as_millis() as u64;
    }
    let live = LiveDataset {
        current: RwLock::new(snapshot),
        overlay: AtomicUsize::new(delta.overlay_len()),
        compactions: AtomicU64::new(delta.compactions()),
        persistent: opened.is_some(),
        wal_records: AtomicU64::new(0),
        wal_bytes: AtomicU64::new(0),
        checkpoint_gen_plus_one: AtomicU64::new(0),
        replayed_records: AtomicU64::new(recovery.replayed_records),
        recovery_ms: AtomicU64::new(recovery.recovery_ms),
        writer: Mutex::new(Writer {
            delta,
            labels: writer_labels,
            store: opened.map(|o| o.store),
            poisoned: None,
        }),
    };
    if let Some(ds) = &live.writer.lock().unwrap().store {
        live.mirror_store(ds);
    }
    Ok(Arc::new(live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builtin_karate_loads_and_lists() {
        let r = GraphRegistry::with_builtins();
        assert!(r.names().contains(&"karate".to_string()));
        let before = r.list();
        let karate_row = before.iter().find(|d| d.name == "karate").unwrap();
        assert!(!karate_row.loaded, "listing must not trigger construction");
        assert_eq!(karate_row.generation, None);

        let g = r.get("karate").unwrap();
        assert_eq!(g.graph.num_nodes(), 34);
        assert_eq!(g.graph.num_edges(), 78);
        assert_eq!(g.label_of(5), 5);
        assert_eq!(g.generation, 0);

        let after = r.list();
        let karate_row = after.iter().find(|d| d.name == "karate").unwrap();
        assert!(karate_row.loaded);
        assert_eq!(karate_row.shape, Some((34, 78)));
        assert_eq!(karate_row.generation, Some(0));
        assert_eq!(karate_row.overlay, Some(0));
        assert_eq!(karate_row.compactions, Some(0));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let r = GraphRegistry::with_builtins();
        assert!(r.get("nope").unwrap_err().contains("unknown dataset"));
        assert!(r
            .apply_update("nope", "1 2 0.5\n".as_bytes())
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn repeated_gets_share_one_arc() {
        let r = GraphRegistry::with_builtins();
        let a = r.get("ba7").unwrap();
        let b = r.get("ba7").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_first_gets_build_once() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        fn counting_build() -> datasets::Dataset {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            // Slow the build down so racers genuinely overlap.
            std::thread::sleep(std::time::Duration::from_millis(30));
            datasets::karate_club()
        }
        let mut r = GraphRegistry::new();
        r.register_builtin("slow", counting_build);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| r.get("slow").unwrap());
            }
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn file_dataset_roundtrip_and_error_caching() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mpds-registry-test-{}.txt", std::process::id()));
        std::fs::write(&path, "10 20 0.5\n20 30 0.25\n").unwrap();
        let mut r = GraphRegistry::new();
        r.register_file("mine", &path);
        r.register_file("missing", dir.join("definitely-not-here-xyz.txt"));

        let g = r.get("mine").unwrap();
        assert_eq!(g.graph.num_nodes(), 3);
        assert_eq!(g.label_of(0), 10);
        std::fs::remove_file(&path).unwrap();
        // Already built: the deleted file does not matter.
        assert!(r.get("mine").is_ok());

        let e1 = r.get("missing").unwrap_err();
        let e2 = r.get("missing").unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("cannot open"));
    }

    #[test]
    fn apply_update_bumps_generation_and_swaps_snapshot() {
        let r = GraphRegistry::with_builtins();
        let g0 = r.get("karate").unwrap();
        assert_eq!(g0.generation, 0);
        let edges0 = g0.graph.num_edges();

        // Re-weight one edge, insert one edge, delete one edge. Karate is
        // identity-labeled: labels == compact ids.
        let out = r
            .apply_update("karate", "0 1 0.99\n0 9 0.5\n0 2 -\n".as_bytes())
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!((out.inserted, out.reweighted, out.deleted), (1, 1, 1));
        assert_eq!(out.shape.1, edges0);

        let g1 = r.get("karate").unwrap();
        assert_eq!(g1.generation, 1);
        assert_eq!(g1.graph.edge_prob(0, 1), Some(0.99));
        assert_eq!(g1.graph.edge_prob(0, 9), Some(0.5));
        assert_eq!(g1.graph.edge_prob(0, 2), None);
        // The old snapshot is untouched — readers holding it keep serving
        // generation 0.
        assert_eq!(g0.generation, 0);
        assert_ne!(g0.graph.edge_prob(0, 1), Some(0.99));

        // Bad batches change nothing, not even the generation.
        let err = r
            .apply_update("karate", "5 5 0.4\n".as_bytes())
            .unwrap_err();
        assert!(err.contains("self-loop"), "{err}");
        assert_eq!(r.get("karate").unwrap().generation, 1);

        let info = r.list();
        let row = info.iter().find(|d| d.name == "karate").unwrap();
        assert_eq!(row.generation, Some(1));
        assert_eq!(row.overlay, Some(3));
    }

    #[test]
    fn empty_update_batch_keeps_the_generation() {
        let r = GraphRegistry::with_builtins();
        r.apply_update("karate", "0 1 0.5\n".as_bytes()).unwrap();
        let g1 = r.get("karate").unwrap();
        // Comments-only body: zero mutations, zero version churn.
        let out = r
            .apply_update("karate", "# nothing\n\n".as_bytes())
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!((out.inserted, out.reweighted, out.deleted), (0, 0, 0));
        assert_eq!(r.get("karate").unwrap().generation, g1.generation);
    }

    #[test]
    fn durable_updates_recover_after_restart() {
        let data_dir =
            std::env::temp_dir().join(format!("mpds-registry-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let store =
            || Store::create(&data_dir, mpds_store::SyncPolicy::Commit).expect("create store");

        // First process: two durable batches, then a "crash" (drop without
        // checkpointing).
        let mut r = GraphRegistry::with_builtins();
        r.set_store(store());
        r.apply_update("karate", "0 1 0.9\n0 99 0.5\n".as_bytes())
            .unwrap();
        r.apply_update("karate", "0 2 -\n".as_bytes()).unwrap();
        let before = r.get("karate").unwrap();
        assert_eq!(before.generation, 2);
        drop(r);

        // Second process: recovery lands on the exact pre-crash state.
        let mut r2 = GraphRegistry::with_builtins();
        r2.set_store(store());
        let recovered = r2.recover_on_boot();
        assert_eq!(recovered.len(), 1, "only karate has durable state");
        assert_eq!(recovered[0].0, "karate");
        assert_eq!(recovered[0].1.as_ref().unwrap(), &2);
        let after = r2.get("karate").unwrap();
        assert_eq!(after.generation, 2);
        assert_eq!(after.graph.edge_prob(0, 1), Some(0.9));
        assert_eq!(after.graph.edge_prob(0, 2), None);
        let n99 = (0..after.graph.num_nodes() as NodeId)
            .find(|&v| after.label_of(v) == 99)
            .expect("appended label survives recovery");
        assert_eq!(after.graph.edge_prob(0, n99), Some(0.5));
        let row = r2.list().into_iter().find(|d| d.name == "karate").unwrap();
        assert_eq!(row.wal_records, Some(2));
        assert_eq!(row.replayed_records, Some(2));
        assert_eq!(row.last_checkpoint_generation, None);

        // The generation sequence continues, and an explicit checkpoint
        // truncates the WAL without touching the generation.
        let out = r2.apply_update("karate", "0 3 0.7\n".as_bytes()).unwrap();
        assert_eq!(out.generation, 3);
        let ck = r2.checkpoint_dataset("karate").unwrap();
        assert_eq!(ck.generation, 3);
        assert_eq!(ck.wal_records, 0);
        drop(r2);

        // Third process: recovery now comes from the checkpoint alone.
        let mut r3 = GraphRegistry::with_builtins();
        r3.set_store(store());
        r3.recover_on_boot();
        let g3 = r3.get("karate").unwrap();
        assert_eq!(g3.generation, 3);
        assert_eq!(g3.graph.edge_prob(0, 3), Some(0.7));
        let row = r3.list().into_iter().find(|d| d.name == "karate").unwrap();
        assert_eq!(row.last_checkpoint_generation, Some(3));
        assert_eq!(row.replayed_records, Some(0));
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_data_dir() {
        let r = GraphRegistry::with_builtins();
        let err = r.checkpoint_dataset("karate").unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
    }

    #[test]
    fn update_can_add_nodes_with_fresh_labels() {
        let r = GraphRegistry::with_builtins();
        let before = r.get("karate").unwrap();
        let n0 = before.graph.num_nodes();
        let out = r.apply_update("karate", "0 1000 0.5\n".as_bytes()).unwrap();
        assert_eq!(out.nodes_added, 1);
        assert_eq!(out.shape.0, n0 + 1);
        let after = r.get("karate").unwrap();
        assert_eq!(after.label_of(n0 as NodeId), 1000);
        assert_eq!(
            after.graph.edge_prob(0, n0 as NodeId),
            Some(0.5),
            "new-label edge lands on the appended node"
        );
    }
}
