//! Graph registry: named datasets loaded once, shared immutably.
//!
//! The serving layer must never pay dataset construction per query — the
//! registry maps names to lazily-built, `Arc`-shared [`UncertainGraph`]s.
//! Built-ins cover the embedded Karate Club and the deterministic synthetic
//! stand-ins of `ugraph::datasets`; arbitrary weighted-edge-list files can
//! be registered alongside them (the CLI's `serve --dataset NAME=PATH`).
//!
//! Construction is coalesced: each entry holds a [`OnceLock`], so N
//! concurrent first-queries on the same dataset build it exactly once while
//! the others block on that build — the same discipline the result cache
//! applies to query computation.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use ugraph::{datasets, io, NodeId, UncertainGraph};

/// A loaded dataset: the shared graph plus the label of every compact node
/// id (file-backed datasets keep their original labels; built-ins are
/// identity-labeled).
#[derive(Debug)]
pub struct LoadedGraph {
    /// Registry name.
    pub name: String,
    /// The uncertain graph (CSR; immutable).
    pub graph: UncertainGraph,
    /// Original node label per compact id, when the source had its own
    /// labels (`None` means identity).
    pub labels: Option<Vec<u32>>,
}

impl LoadedGraph {
    /// The display label of compact node id `v`.
    pub fn label_of(&self, v: NodeId) -> u32 {
        match &self.labels {
            Some(l) => l[v as usize],
            None => v,
        }
    }
}

/// Where a registry entry's graph comes from.
enum Source {
    /// A named constructor over `ugraph::datasets` (deterministic per seed).
    Builtin(fn() -> datasets::Dataset),
    /// A weighted edge-list file (`u v p` per line).
    File(PathBuf),
}

struct Entry {
    source: Source,
    /// Build-once cell; errors are cached too (a bad file stays bad).
    cell: OnceLock<Result<Arc<LoadedGraph>, String>>,
}

/// Immutable-after-construction name → dataset table.
///
/// All registration happens before serving starts, so lookups need no lock;
/// only the per-entry [`OnceLock`] synchronizes lazy construction.
pub struct GraphRegistry {
    entries: BTreeMap<String, Entry>,
}

/// Metadata row returned by [`GraphRegistry::list`]. Stats are only present
/// for datasets that have already been built — listing must stay cheap.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Registry name.
    pub name: String,
    /// Whether the graph has been constructed in this process.
    pub loaded: bool,
    /// `(nodes, edges)` when loaded.
    pub shape: Option<(usize, usize)>,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GraphRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry preloaded with every built-in dataset.
    ///
    /// Names follow the paper's Table II (lower-case, `-like` dropped):
    /// `karate`, `intel-lab`, `lastfm`, `homo-sapiens`, `biomine`,
    /// `twitter`, `friendster`, and the §VI-H accuracy graphs `ba7`/`ba9`/
    /// `er7`/`er9`. All are deterministic: fixed construction seeds, so two
    /// servers hold identical graphs and identical queries return identical
    /// bytes across processes.
    pub fn with_builtins() -> Self {
        let mut r = GraphRegistry::new();
        r.register_builtin("karate", datasets::karate_club);
        r.register_builtin("intel-lab", || datasets::intel_lab_like(1));
        r.register_builtin("lastfm", || datasets::lastfm_like(1));
        r.register_builtin("homo-sapiens", || datasets::homo_sapiens_like(1));
        r.register_builtin("biomine", || datasets::biomine_like(1));
        r.register_builtin("twitter", || datasets::twitter_like(1));
        r.register_builtin("friendster", || datasets::friendster_like(1));
        r.register_builtin("ba7", || datasets::synthetic_accuracy_graph("BA7", 42));
        r.register_builtin("ba9", || datasets::synthetic_accuracy_graph("BA9", 42));
        r.register_builtin("er7", || datasets::synthetic_accuracy_graph("ER7", 42));
        r.register_builtin("er9", || datasets::synthetic_accuracy_graph("ER9", 42));
        r
    }

    /// Registers a built-in constructor under `name` (replacing any previous
    /// entry of that name).
    pub fn register_builtin(&mut self, name: &str, build: fn() -> datasets::Dataset) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::Builtin(build),
                cell: OnceLock::new(),
            },
        );
    }

    /// Registers a weighted edge-list file under `name`. The file is read
    /// on first query, not here; a missing/corrupt file surfaces as a query
    /// error (and is cached as such).
    pub fn register_file(&mut self, name: &str, path: impl Into<PathBuf>) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::File(path.into()),
                cell: OnceLock::new(),
            },
        );
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Cheap metadata for every entry (never triggers construction).
    pub fn list(&self) -> Vec<DatasetInfo> {
        self.entries
            .iter()
            .map(|(name, e)| {
                let loaded = matches!(e.cell.get(), Some(Ok(_)));
                let shape = match e.cell.get() {
                    Some(Ok(g)) => Some((g.graph.num_nodes(), g.graph.num_edges())),
                    _ => None,
                };
                DatasetInfo {
                    name: name.clone(),
                    loaded,
                    shape,
                }
            })
            .collect()
    }

    /// Fetches (building on first use) the dataset named `name`.
    ///
    /// Concurrent first calls coalesce on the entry's `OnceLock`: one
    /// caller builds, the rest block until the build finishes and share the
    /// same `Arc`.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedGraph>, String> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| format!("unknown dataset {name:?} (try /datasets)"))?;
        entry
            .cell
            .get_or_init(|| build(name, &entry.source))
            .clone()
    }
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::with_builtins()
    }
}

/// Loads a weighted edge-list file (`u v p` per line) as a [`LoadedGraph`]
/// with the file's original node labels preserved — the single file-loading
/// path shared by [`GraphRegistry`] entries and the CLI.
pub fn load_edge_list_file(name: &str, path: &std::path::Path) -> Result<LoadedGraph, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let (graph, labels) = io::read_weighted_edge_list(file).map_err(|e| e.to_string())?;
    Ok(LoadedGraph {
        name: name.to_string(),
        graph,
        labels: Some(labels),
    })
}

fn build(name: &str, source: &Source) -> Result<Arc<LoadedGraph>, String> {
    match source {
        Source::Builtin(f) => {
            let d = f();
            Ok(Arc::new(LoadedGraph {
                name: name.to_string(),
                graph: d.graph,
                labels: None,
            }))
        }
        Source::File(path) => load_edge_list_file(name, path)
            .map(Arc::new)
            .map_err(|e| format!("dataset {name:?}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builtin_karate_loads_and_lists() {
        let r = GraphRegistry::with_builtins();
        assert!(r.names().contains(&"karate".to_string()));
        let before = r.list();
        let karate_row = before.iter().find(|d| d.name == "karate").unwrap();
        assert!(!karate_row.loaded, "listing must not trigger construction");

        let g = r.get("karate").unwrap();
        assert_eq!(g.graph.num_nodes(), 34);
        assert_eq!(g.graph.num_edges(), 78);
        assert_eq!(g.label_of(5), 5);

        let after = r.list();
        let karate_row = after.iter().find(|d| d.name == "karate").unwrap();
        assert!(karate_row.loaded);
        assert_eq!(karate_row.shape, Some((34, 78)));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let r = GraphRegistry::with_builtins();
        assert!(r.get("nope").unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn repeated_gets_share_one_arc() {
        let r = GraphRegistry::with_builtins();
        let a = r.get("ba7").unwrap();
        let b = r.get("ba7").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_first_gets_build_once() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        fn counting_build() -> datasets::Dataset {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            // Slow the build down so racers genuinely overlap.
            std::thread::sleep(std::time::Duration::from_millis(30));
            datasets::karate_club()
        }
        let mut r = GraphRegistry::new();
        r.register_builtin("slow", counting_build);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| r.get("slow").unwrap());
            }
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn file_dataset_roundtrip_and_error_caching() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mpds-registry-test-{}.txt", std::process::id()));
        std::fs::write(&path, "10 20 0.5\n20 30 0.25\n").unwrap();
        let mut r = GraphRegistry::new();
        r.register_file("mine", &path);
        r.register_file("missing", dir.join("definitely-not-here-xyz.txt"));

        let g = r.get("mine").unwrap();
        assert_eq!(g.graph.num_nodes(), 3);
        assert_eq!(g.label_of(0), 10);
        std::fs::remove_file(&path).unwrap();
        // Already built: the deleted file does not matter.
        assert!(r.get("mine").is_ok());

        let e1 = r.get("missing").unwrap_err();
        let e2 = r.get("missing").unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("cannot open"));
    }
}
