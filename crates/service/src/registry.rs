//! Graph registry: named datasets loaded once, served as generation-stamped
//! immutable snapshots, mutable through batched updates.
//!
//! The serving layer must never pay dataset construction per query — the
//! registry maps names to lazily-built datasets. Built-ins cover the
//! embedded Karate Club and the deterministic synthetic stand-ins of
//! `ugraph::datasets`; arbitrary weighted-edge-list files can be registered
//! alongside them (the CLI's `serve --dataset NAME=PATH`).
//!
//! Since PR 5 every entry is **dynamic**: behind the one-time build sits a
//! [`ugraph::dynamic::DeltaGraph`] writer plus an `ArcSwap`-style
//! `RwLock<Arc<LoadedGraph>>` holding the current immutable snapshot.
//! Readers share the read lock and clone the `Arc` (no torn reads — a
//! query computes against exactly the generation it resolved, and the
//! cache-HIT fast path never serializes on other readers); writers
//! serialize on the per-entry writer lock, apply one atomic mutation
//! batch, take the next snapshot, and swap it in under a brief write lock.
//! Generations observed through [`GraphRegistry::get`] are therefore
//! monotone per dataset.
//!
//! Construction is still coalesced: each entry holds a [`OnceLock`], so N
//! concurrent first-queries on the same dataset build it exactly once while
//! the others block on that build — the same discipline the result cache
//! applies to query computation.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use ugraph::dynamic::DeltaGraph;
use ugraph::{datasets, io, NodeId, UncertainGraph};

/// A loaded dataset snapshot: the shared graph at one generation plus the
/// label of every compact node id (file-backed datasets keep their original
/// labels; built-ins are identity-labeled until an update adds nodes).
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// Registry name.
    pub name: String,
    /// The uncertain graph (CSR; immutable — updates produce a *new*
    /// `LoadedGraph` at the next generation).
    pub graph: Arc<UncertainGraph>,
    /// Original node label per compact id, when the source had its own
    /// labels (`None` means identity).
    pub labels: Option<Vec<u32>>,
    /// The dataset generation this snapshot belongs to (0 = as loaded;
    /// bumped by every applied update batch). Part of every cache key, so
    /// stale cached responses age out of the LRU naturally.
    pub generation: u64,
}

impl LoadedGraph {
    /// The display label of compact node id `v`.
    pub fn label_of(&self, v: NodeId) -> u32 {
        match &self.labels {
            Some(l) => l[v as usize],
            None => v,
        }
    }
}

/// Where a registry entry's graph comes from.
enum Source {
    /// A named constructor over `ugraph::datasets` (deterministic per seed).
    Builtin(fn() -> datasets::Dataset),
    /// A weighted edge-list file (`u v p` per line).
    File(PathBuf),
}

/// Writer-side state of a dynamic entry, serialized by its mutex.
struct Writer {
    delta: DeltaGraph,
    /// Compact id → original label (identity-seeded for built-ins; grows
    /// when updates reference unseen labels).
    labels: Vec<u32>,
}

/// One built dataset: the current snapshot (swapped atomically under a
/// short-lived lock) plus the writer and metric mirrors.
struct LiveDataset {
    /// Generation-stamped current snapshot. Readers share the read lock —
    /// every query (including the cache-HIT fast path) resolves through
    /// here, so readers must never serialize on each other; only the
    /// writer's swap takes the write lock, briefly.
    current: RwLock<Arc<LoadedGraph>>,
    writer: Mutex<Writer>,
    /// Metric mirrors updated after each batch, readable without touching
    /// the writer lock.
    overlay: AtomicUsize,
    compactions: AtomicU64,
}

struct Entry {
    source: Source,
    /// Build-once cell; errors are cached too (a bad file stays bad).
    cell: OnceLock<Result<Arc<LiveDataset>, String>>,
}

/// Immutable-after-construction name → dataset table.
///
/// All registration happens before serving starts, so lookups need no lock;
/// the per-entry [`OnceLock`] synchronizes lazy construction and the
/// per-entry snapshot/writer locks synchronize updates.
pub struct GraphRegistry {
    entries: BTreeMap<String, Entry>,
}

/// Metadata row returned by [`GraphRegistry::list`]. Stats are only present
/// for datasets that have already been built — listing must stay cheap.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Registry name.
    pub name: String,
    /// Whether the graph has been constructed in this process.
    pub loaded: bool,
    /// `(nodes, edges)` of the current snapshot, when loaded.
    pub shape: Option<(usize, usize)>,
    /// Current generation, when loaded.
    pub generation: Option<u64>,
    /// Live mutation-overlay entry count, when loaded.
    pub overlay: Option<usize>,
    /// Overlay compactions performed so far, when loaded.
    pub compactions: Option<u64>,
}

/// What one applied `/update` batch did (see [`GraphRegistry::apply_update`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The dataset generation after the batch.
    pub generation: u64,
    /// Edges inserted.
    pub inserted: usize,
    /// Edges re-weighted.
    pub reweighted: usize,
    /// Edges deleted.
    pub deleted: usize,
    /// Nodes appended (unseen labels).
    pub nodes_added: usize,
    /// `(nodes, edges)` of the new snapshot.
    pub shape: (usize, usize),
    /// Overlay entries alive after the batch (0 right after a compaction).
    pub overlay: usize,
    /// Total compactions performed on this dataset so far.
    pub compactions: u64,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GraphRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry preloaded with every built-in dataset.
    ///
    /// Names follow the paper's Table II (lower-case, `-like` dropped):
    /// `karate`, `intel-lab`, `lastfm`, `homo-sapiens`, `biomine`,
    /// `twitter`, `friendster`, and the §VI-H accuracy graphs `ba7`/`ba9`/
    /// `er7`/`er9`. All are deterministic: fixed construction seeds, so two
    /// servers hold identical graphs and identical queries return identical
    /// bytes across processes — until updates diverge their generations.
    pub fn with_builtins() -> Self {
        let mut r = GraphRegistry::new();
        r.register_builtin("karate", datasets::karate_club);
        r.register_builtin("intel-lab", || datasets::intel_lab_like(1));
        r.register_builtin("lastfm", || datasets::lastfm_like(1));
        r.register_builtin("homo-sapiens", || datasets::homo_sapiens_like(1));
        r.register_builtin("biomine", || datasets::biomine_like(1));
        r.register_builtin("twitter", || datasets::twitter_like(1));
        r.register_builtin("friendster", || datasets::friendster_like(1));
        r.register_builtin("ba7", || datasets::synthetic_accuracy_graph("BA7", 42));
        r.register_builtin("ba9", || datasets::synthetic_accuracy_graph("BA9", 42));
        r.register_builtin("er7", || datasets::synthetic_accuracy_graph("ER7", 42));
        r.register_builtin("er9", || datasets::synthetic_accuracy_graph("ER9", 42));
        r
    }

    /// Registers a built-in constructor under `name` (replacing any previous
    /// entry of that name).
    pub fn register_builtin(&mut self, name: &str, build: fn() -> datasets::Dataset) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::Builtin(build),
                cell: OnceLock::new(),
            },
        );
    }

    /// Registers a weighted edge-list file under `name`. The file is read
    /// on first query, not here; a missing/corrupt file surfaces as a query
    /// error (and is cached as such).
    pub fn register_file(&mut self, name: &str, path: impl Into<PathBuf>) {
        self.entries.insert(
            name.to_string(),
            Entry {
                source: Source::File(path.into()),
                cell: OnceLock::new(),
            },
        );
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Cheap metadata for every entry (never triggers construction).
    pub fn list(&self) -> Vec<DatasetInfo> {
        self.entries
            .iter()
            .map(|(name, e)| {
                let live = match e.cell.get() {
                    Some(Ok(live)) => Some(live),
                    _ => None,
                };
                let snapshot = live.map(|l| Arc::clone(&*l.current.read().unwrap()));
                DatasetInfo {
                    name: name.clone(),
                    loaded: live.is_some(),
                    shape: snapshot
                        .as_ref()
                        .map(|g| (g.graph.num_nodes(), g.graph.num_edges())),
                    generation: snapshot.as_ref().map(|g| g.generation),
                    overlay: live.map(|l| l.overlay.load(Ordering::Relaxed)),
                    compactions: live.map(|l| l.compactions.load(Ordering::Relaxed)),
                }
            })
            .collect()
    }

    fn live(&self, name: &str) -> Result<Arc<LiveDataset>, String> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| format!("unknown dataset {name:?} (try /datasets)"))?;
        entry
            .cell
            .get_or_init(|| build(name, &entry.source))
            .clone()
    }

    /// Fetches (building on first use) the current snapshot of the dataset
    /// named `name`.
    ///
    /// Concurrent first calls coalesce on the entry's `OnceLock`: one
    /// caller builds, the rest block until the build finishes. Afterwards
    /// every call is one short lock + `Arc` clone, and the generations
    /// returned for one dataset are monotone.
    pub fn get(&self, name: &str) -> Result<Arc<LoadedGraph>, String> {
        let live = self.live(name)?;
        let current = live.current.read().unwrap();
        Ok(Arc::clone(&current))
    }

    /// Applies one mutation batch (the `u v p` / `u v -` grammar of
    /// [`ugraph::io::apply_edge_list_delta`], node ids in the dataset's
    /// original label space) atomically: on success the dataset moves to
    /// the next generation and subsequent [`GraphRegistry::get`] calls see
    /// the new snapshot; on error nothing changes.
    ///
    /// Writers for one dataset serialize on its writer lock; readers are
    /// never blocked for longer than the final snapshot swap.
    pub fn apply_update(
        &self,
        name: &str,
        mutations: impl std::io::Read,
    ) -> Result<UpdateOutcome, String> {
        let live = self.live(name)?;
        let mut writer = live.writer.lock().unwrap();
        let Writer { delta, labels } = &mut *writer;
        let applied = io::apply_edge_list_delta(delta, labels, mutations)
            .map_err(|e| format!("dataset {name:?}: {e}"))?;
        let snapshot = writer.delta.snapshot();
        // Updated snapshots always carry explicit labels: identity built-ins
        // may have gained non-identity labels through appended nodes, and an
        // identity label vector resolves identically either way.
        let labels = Some(writer.labels.clone());
        let outcome = UpdateOutcome {
            generation: snapshot.generation(),
            inserted: applied.stats.inserted,
            reweighted: applied.stats.reweighted,
            deleted: applied.stats.deleted,
            nodes_added: applied.stats.nodes_added,
            shape: (snapshot.graph().num_nodes(), snapshot.graph().num_edges()),
            overlay: writer.delta.overlay_len(),
            compactions: writer.delta.compactions(),
        };
        let next = Arc::new(LoadedGraph {
            name: name.to_string(),
            graph: snapshot.shared_graph(),
            labels,
            generation: snapshot.generation(),
        });
        live.overlay.store(outcome.overlay, Ordering::Relaxed);
        live.compactions
            .store(outcome.compactions, Ordering::Relaxed);
        // Swap the published snapshot while still holding the writer lock,
        // so generations published through `current` are monotone.
        *live.current.write().unwrap() = next;
        Ok(outcome)
    }
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::with_builtins()
    }
}

/// Loads a weighted edge-list file (`u v p` per line) as a [`LoadedGraph`]
/// with the file's original node labels preserved — the single file-loading
/// path shared by [`GraphRegistry`] entries and the CLI.
pub fn load_edge_list_file(name: &str, path: &std::path::Path) -> Result<LoadedGraph, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let (graph, labels) = io::read_weighted_edge_list(file).map_err(|e| e.to_string())?;
    Ok(LoadedGraph {
        name: name.to_string(),
        graph: Arc::new(graph),
        labels: Some(labels),
        generation: 0,
    })
}

fn build(name: &str, source: &Source) -> Result<Arc<LiveDataset>, String> {
    let (graph, labels) = match source {
        Source::Builtin(f) => (Arc::new(f().graph), None),
        Source::File(path) => {
            let loaded =
                load_edge_list_file(name, path).map_err(|e| format!("dataset {name:?}: {e}"))?;
            (loaded.graph, loaded.labels)
        }
    };
    let writer_labels = labels
        .clone()
        .unwrap_or_else(|| (0..graph.num_nodes() as u32).collect());
    let snapshot = Arc::new(LoadedGraph {
        name: name.to_string(),
        graph: Arc::clone(&graph),
        labels,
        generation: 0,
    });
    Ok(Arc::new(LiveDataset {
        current: RwLock::new(snapshot),
        writer: Mutex::new(Writer {
            delta: DeltaGraph::new(graph),
            labels: writer_labels,
        }),
        overlay: AtomicUsize::new(0),
        compactions: AtomicU64::new(0),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builtin_karate_loads_and_lists() {
        let r = GraphRegistry::with_builtins();
        assert!(r.names().contains(&"karate".to_string()));
        let before = r.list();
        let karate_row = before.iter().find(|d| d.name == "karate").unwrap();
        assert!(!karate_row.loaded, "listing must not trigger construction");
        assert_eq!(karate_row.generation, None);

        let g = r.get("karate").unwrap();
        assert_eq!(g.graph.num_nodes(), 34);
        assert_eq!(g.graph.num_edges(), 78);
        assert_eq!(g.label_of(5), 5);
        assert_eq!(g.generation, 0);

        let after = r.list();
        let karate_row = after.iter().find(|d| d.name == "karate").unwrap();
        assert!(karate_row.loaded);
        assert_eq!(karate_row.shape, Some((34, 78)));
        assert_eq!(karate_row.generation, Some(0));
        assert_eq!(karate_row.overlay, Some(0));
        assert_eq!(karate_row.compactions, Some(0));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let r = GraphRegistry::with_builtins();
        assert!(r.get("nope").unwrap_err().contains("unknown dataset"));
        assert!(r
            .apply_update("nope", "1 2 0.5\n".as_bytes())
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn repeated_gets_share_one_arc() {
        let r = GraphRegistry::with_builtins();
        let a = r.get("ba7").unwrap();
        let b = r.get("ba7").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_first_gets_build_once() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        fn counting_build() -> datasets::Dataset {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            // Slow the build down so racers genuinely overlap.
            std::thread::sleep(std::time::Duration::from_millis(30));
            datasets::karate_club()
        }
        let mut r = GraphRegistry::new();
        r.register_builtin("slow", counting_build);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| r.get("slow").unwrap());
            }
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn file_dataset_roundtrip_and_error_caching() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mpds-registry-test-{}.txt", std::process::id()));
        std::fs::write(&path, "10 20 0.5\n20 30 0.25\n").unwrap();
        let mut r = GraphRegistry::new();
        r.register_file("mine", &path);
        r.register_file("missing", dir.join("definitely-not-here-xyz.txt"));

        let g = r.get("mine").unwrap();
        assert_eq!(g.graph.num_nodes(), 3);
        assert_eq!(g.label_of(0), 10);
        std::fs::remove_file(&path).unwrap();
        // Already built: the deleted file does not matter.
        assert!(r.get("mine").is_ok());

        let e1 = r.get("missing").unwrap_err();
        let e2 = r.get("missing").unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.contains("cannot open"));
    }

    #[test]
    fn apply_update_bumps_generation_and_swaps_snapshot() {
        let r = GraphRegistry::with_builtins();
        let g0 = r.get("karate").unwrap();
        assert_eq!(g0.generation, 0);
        let edges0 = g0.graph.num_edges();

        // Re-weight one edge, insert one edge, delete one edge. Karate is
        // identity-labeled: labels == compact ids.
        let out = r
            .apply_update("karate", "0 1 0.99\n0 9 0.5\n0 2 -\n".as_bytes())
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!((out.inserted, out.reweighted, out.deleted), (1, 1, 1));
        assert_eq!(out.shape.1, edges0);

        let g1 = r.get("karate").unwrap();
        assert_eq!(g1.generation, 1);
        assert_eq!(g1.graph.edge_prob(0, 1), Some(0.99));
        assert_eq!(g1.graph.edge_prob(0, 9), Some(0.5));
        assert_eq!(g1.graph.edge_prob(0, 2), None);
        // The old snapshot is untouched — readers holding it keep serving
        // generation 0.
        assert_eq!(g0.generation, 0);
        assert_ne!(g0.graph.edge_prob(0, 1), Some(0.99));

        // Bad batches change nothing, not even the generation.
        let err = r
            .apply_update("karate", "5 5 0.4\n".as_bytes())
            .unwrap_err();
        assert!(err.contains("self-loop"), "{err}");
        assert_eq!(r.get("karate").unwrap().generation, 1);

        let info = r.list();
        let row = info.iter().find(|d| d.name == "karate").unwrap();
        assert_eq!(row.generation, Some(1));
        assert_eq!(row.overlay, Some(3));
    }

    #[test]
    fn empty_update_batch_keeps_the_generation() {
        let r = GraphRegistry::with_builtins();
        r.apply_update("karate", "0 1 0.5\n".as_bytes()).unwrap();
        let g1 = r.get("karate").unwrap();
        // Comments-only body: zero mutations, zero version churn.
        let out = r
            .apply_update("karate", "# nothing\n\n".as_bytes())
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!((out.inserted, out.reweighted, out.deleted), (0, 0, 0));
        assert_eq!(r.get("karate").unwrap().generation, g1.generation);
    }

    #[test]
    fn update_can_add_nodes_with_fresh_labels() {
        let r = GraphRegistry::with_builtins();
        let before = r.get("karate").unwrap();
        let n0 = before.graph.num_nodes();
        let out = r.apply_update("karate", "0 1000 0.5\n".as_bytes()).unwrap();
        assert_eq!(out.nodes_added, 1);
        assert_eq!(out.shape.0, n0 + 1);
        let after = r.get("karate").unwrap();
        assert_eq!(after.label_of(n0 as NodeId), 1000);
        assert_eq!(
            after.graph.edge_prob(0, n0 as NodeId),
            Some(0.5),
            "new-label edge lands on the appended node"
        );
    }
}
