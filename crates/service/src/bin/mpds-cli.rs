//! Command-line front end: run top-k MPDS or NDS on a weighted edge list,
//! or serve the query API over HTTP.
//!
//! ```text
//! mpds-cli <command> ...
//!
//! commands:
//!   mpds <edge-list> [opts]   top-k most probable densest subgraphs (Alg. 1)
//!   nds <edge-list> [opts]    top-k nucleus densest subgraphs (Alg. 5)
//!   stats <edge-list> [--json]  dataset summary
//!   serve [serve-opts]        start the HTTP query server
//!   update [update-opts]      POST a mutation batch to a running server
//!   batch [batch-opts]        POST a multi-query spec to a running server
//!   diff [diff-opts]          diff one query across two datasets (CRN)
//!   checkpoint [ckpt-opts]    force a durable checkpoint on a running server
//!
//! mpds/nds options:
//!   --theta N       number of sampled worlds        [default 320]
//!   --k N           result count                    [default 5]
//!   --lm N          minimum NDS size                [default 2]
//!   --density D     edge | Nclique | 2star | 3star | c3star | diamond
//!                                                   [default edge]
//!   --seed N        sampler seed                    [default 42]
//!   --threads N     estimator worker threads        [default 1 = serial]
//!   --heuristic     use the core-based heuristic per world
//!   --stop P        termination policy: fixed | stable    [default fixed]
//!   --window N      stable-stop window (requires --stop stable) [default 32]
//!   --budget-ms N   wall-clock budget; returns best-so-far on expiry
//!   --json          emit the server's JSON response body instead of text
//!                   (plus a `wall_ms` entry in its `stats` block)
//!
//! serve options:
//!   --bind ADDR           listen address            [default 127.0.0.1:7878]
//!   --threads N           worker threads            [default 4]
//!   --cache-capacity N    result-cache entries      [default 256]
//!   --queue N             admission queue bound     [default 64]
//!   --dataset NAME=PATH   register an edge-list file (repeatable)
//!   --mutable             serve POST /update (off by default)
//!   --access-log PATH     append one JSON line per request (off by default)
//!   --slow-ms N           echo requests taking ≥ N ms to stderr, and promote
//!                         them into the /debug/slow ring (ring threshold
//!                         defaults to 1000 ms when this flag is off)
//!   --data-dir PATH       persist datasets (WAL + checkpoints) under PATH and
//!                         recover them on boot (off by default)
//!   --wal-sync MODE       commit = fsync per accepted batch (default),
//!                         interval = coalesce fsyncs to about one per second
//!   --no-flight           disable the per-request flight recorder (/debug/*
//!                         rings stay empty; X-Trace-Id is still returned)
//!   --flight-capacity N   completed-request ring size   [default 256]
//!   --slow-capacity N     slow-query ring size          [default 64]
//!   --slo SPEC            score an SLO (repeatable):
//!                         ENDPOINT:latency:MILLIS:TARGET or
//!                         ENDPOINT:availability:TARGET; replaces the default
//!                         set (query latency 250ms@0.99, query/update
//!                         availability@0.999)
//!
//! update options:
//!   --dataset NAME        target dataset            (required)
//!   --file PATH           mutation file: `u v p` upserts the edge,
//!                         `u v -` deletes it        (required)
//!   --addr HOST:PORT      server address            [default 127.0.0.1:7878]
//!
//! batch options:
//!   --file PATH           JSON spec file — the `POST /batch` body: one
//!                         object with `dataset`, shared `theta`/`seed`,
//!                         and a `members` array of per-query
//!                         `{algo, notion, k, lm, heuristic}` objects
//!                                                   (required)
//!   --addr HOST:PORT      server address            [default 127.0.0.1:7878]
//!   --json                emit the raw batch envelope instead of text
//!
//! diff options:
//!   --dataset NAME        the *after* dataset       (required)
//!   --against NAME        the baseline dataset      (required)
//!   --algo A, --theta N, --k N, --lm N, --density D, --seed N,
//!   --heuristic           as for mpds/nds
//!   --addr HOST:PORT      server address            [default 127.0.0.1:7878]
//!   --json                emit the raw diff response instead of text
//!
//! checkpoint options:
//!   --dataset NAME        target dataset            (required)
//!   --addr HOST:PORT      server address            [default 127.0.0.1:7878]
//! ```
//!
//! The edge-list format is one `u v p` triple per line (`#` comments
//! allowed); node labels are arbitrary u32s. Unknown or duplicate flags are
//! rejected with a usage message. `--json` and the server share one
//! serialization path ([`mpds_service::engine`]), so a CLI run and a served
//! query with equal parameters produce identical bytes.

use mpds::control::RunControl;
use mpds_service::engine::{
    parse_notion, render_query_response_with_wall, render_stats, run_query, Algo, QueryRequest,
    StopSpec, DEFAULT_STABLE_WINDOW,
};
use mpds_service::json::JsonValue;
use mpds_service::registry::{GraphRegistry, LoadedGraph};
use mpds_service::{EngineConfig, QueryEngine, Server, ServerConfig};
use mpds_store::{Store, SyncPolicy};
use std::collections::HashSet;
use std::process::ExitCode;
use std::sync::Arc;

/// A parsed invocation.
#[derive(Debug)]
enum Command {
    /// `mpds` / `nds` / `stats` over an edge-list file.
    Run(RunOptions),
    /// `serve`.
    Serve(ServeOptions),
    /// `update` against a running server.
    Update(UpdateOptions),
    /// `batch` against a running server.
    Batch(BatchOptions),
    /// `diff` against a running server.
    Diff(DiffOptions),
    /// `checkpoint` against a running server.
    Checkpoint(CheckpointOptions),
}

#[derive(Debug)]
struct RunOptions {
    command: String,
    path: String,
    theta: usize,
    k: usize,
    lm: usize,
    density: String,
    seed: u64,
    threads: usize,
    heuristic: bool,
    stop: StopSpec,
    budget_ms: Option<u64>,
    json: bool,
}

#[derive(Debug)]
struct ServeOptions {
    bind: String,
    threads: usize,
    cache_capacity: usize,
    queue: usize,
    datasets: Vec<(String, String)>,
    mutable: bool,
    access_log: Option<String>,
    slow_ms: Option<u64>,
    data_dir: Option<String>,
    wal_sync: SyncPolicy,
    flight: bool,
    flight_capacity: usize,
    slow_capacity: usize,
    slo: Vec<mpds_obs::SloObjective>,
}

#[derive(Debug)]
struct CheckpointOptions {
    dataset: String,
    addr: String,
}

#[derive(Debug)]
struct UpdateOptions {
    dataset: String,
    file: String,
    addr: String,
}

#[derive(Debug)]
struct BatchOptions {
    file: String,
    addr: String,
    json: bool,
}

#[derive(Debug)]
struct DiffOptions {
    dataset: String,
    against: String,
    algo: String,
    theta: usize,
    k: usize,
    lm: usize,
    density: String,
    seed: u64,
    heuristic: bool,
    addr: String,
    json: bool,
}

const USAGE: &str = "usage: mpds-cli <mpds|nds|stats> <edge-list> \\
  [--theta N] [--k N] [--lm N] [--density D] [--seed N] [--threads N] \\
  [--heuristic] [--stop fixed|stable] [--window N] [--budget-ms N] [--json]
   or: mpds-cli serve [--bind ADDR] [--threads N] [--cache-capacity N] \\
  [--queue N] [--dataset NAME=PATH]... [--mutable] [--data-dir PATH] \\
  [--wal-sync commit|interval]
   or: mpds-cli update --dataset NAME --file delta.txt [--addr HOST:PORT]
   or: mpds-cli checkpoint --dataset NAME [--addr HOST:PORT]
   or: mpds-cli batch --file spec.json [--addr HOST:PORT] [--json]
   or: mpds-cli diff --dataset AFTER --against BEFORE [--algo A] [--theta N] \\
  [--k N] [--lm N] [--density D] [--seed N] [--heuristic] [--addr HOST:PORT] \\
  [--json]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Command, String> {
    let command = args.next().ok_or("missing command")?;
    match command.as_str() {
        "mpds" | "nds" | "stats" => parse_run_args(command, args).map(Command::Run),
        "serve" => parse_serve_args(args).map(Command::Serve),
        "update" => parse_update_args(args).map(Command::Update),
        "batch" => parse_batch_args(args).map(Command::Batch),
        "diff" => parse_diff_args(args).map(Command::Diff),
        "checkpoint" => parse_checkpoint_args(args).map(Command::Checkpoint),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Tracks flags already seen so repeats are rejected instead of silently
/// last-one-wins (repeatable flags like `--dataset` skip the check and
/// enforce their own uniqueness rule).
struct SeenFlags(HashSet<String>);

impl SeenFlags {
    fn new() -> Self {
        SeenFlags(HashSet::new())
    }

    fn check(&mut self, flag: &str) -> Result<(), String> {
        if !self.0.insert(flag.to_string()) {
            return Err(format!("duplicate option {flag:?}"));
        }
        Ok(())
    }
}

fn parse_run_args(
    command: String,
    mut args: impl Iterator<Item = String>,
) -> Result<RunOptions, String> {
    let path = args.next().ok_or("missing edge-list path")?;
    if path.starts_with("--") {
        return Err(format!("missing edge-list path (found option {path:?})"));
    }
    let mut o = RunOptions {
        command,
        path,
        theta: 320,
        k: 5,
        lm: 2,
        density: "edge".to_string(),
        seed: 42,
        threads: 1,
        heuristic: false,
        stop: StopSpec::Fixed,
        budget_ms: None,
        json: false,
    };
    let mut stop: Option<String> = None;
    let mut window: Option<u32> = None;
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        seen.check(&flag)?;
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--theta" => {
                o.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--k" => o.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--lm" => o.lm = val("--lm")?.parse().map_err(|e| format!("--lm: {e}"))?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                o.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if o.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--density" => {
                let d = val("--density")?;
                parse_notion(&d)?; // fail fast, before any file I/O
                o.density = d;
            }
            "--heuristic" => o.heuristic = true,
            "--stop" => stop = Some(val("--stop")?),
            "--window" => {
                window = Some(
                    val("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?,
                )
            }
            "--budget-ms" => {
                o.budget_ms = Some(
                    val("--budget-ms")?
                        .parse()
                        .map_err(|e| format!("--budget-ms: {e}"))?,
                )
            }
            "--json" => o.json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    o.stop = stop_spec(stop.as_deref(), window)?;
    Ok(o)
}

/// Combines `--stop` and `--window` into a [`StopSpec`] — the same rules
/// the server applies to its `stop`/`window` query parameters.
fn stop_spec(stop: Option<&str>, window: Option<u32>) -> Result<StopSpec, String> {
    match (stop, window) {
        (None, None) | (Some("fixed"), None) => Ok(StopSpec::Fixed),
        (Some("stable"), w) => Ok(StopSpec::Stable {
            window: w.unwrap_or(DEFAULT_STABLE_WINDOW),
        }),
        (None, Some(_)) | (Some("fixed"), Some(_)) => {
            Err("--window requires --stop stable".to_string())
        }
        (Some(other), _) => Err(format!(
            "--stop: unknown policy {other:?} (expected fixed|stable)"
        )),
    }
}

fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<ServeOptions, String> {
    let mut o = ServeOptions {
        bind: "127.0.0.1:7878".to_string(),
        threads: 4,
        cache_capacity: 256,
        queue: 64,
        datasets: Vec::new(),
        mutable: false,
        access_log: None,
        slow_ms: None,
        data_dir: None,
        wal_sync: SyncPolicy::Commit,
        flight: true,
        flight_capacity: 256,
        slow_capacity: 64,
        slo: Vec::new(),
    };
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        if flag != "--dataset" && flag != "--slo" {
            seen.check(&flag)?;
        }
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--bind" => o.bind = val("--bind")?,
            "--threads" => {
                o.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if o.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--cache-capacity" => {
                o.cache_capacity = val("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--queue" => {
                o.queue = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
                if o.queue == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--dataset" => {
                let spec = val("--dataset")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--dataset wants NAME=PATH, got {spec:?}"))?;
                if name.is_empty() || path.is_empty() {
                    return Err(format!("--dataset wants NAME=PATH, got {spec:?}"));
                }
                if o.datasets.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate dataset name {name:?}"));
                }
                o.datasets.push((name.to_string(), path.to_string()));
            }
            "--mutable" => o.mutable = true,
            "--access-log" => o.access_log = Some(val("--access-log")?),
            "--slow-ms" => {
                o.slow_ms = Some(
                    val("--slow-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                )
            }
            "--data-dir" => o.data_dir = Some(val("--data-dir")?),
            "--no-flight" => o.flight = false,
            "--flight-capacity" => {
                o.flight_capacity = val("--flight-capacity")?
                    .parse()
                    .map_err(|e| format!("--flight-capacity: {e}"))?
            }
            "--slow-capacity" => {
                o.slow_capacity = val("--slow-capacity")?
                    .parse()
                    .map_err(|e| format!("--slow-capacity: {e}"))?
            }
            "--slo" => {
                let spec = val("--slo")?;
                let objective =
                    mpds_obs::SloObjective::parse_spec(&spec).map_err(|e| format!("--slo: {e}"))?;
                if o.slo.iter().any(|s| s.name == objective.name) {
                    return Err(format!("duplicate SLO {:?}", objective.name));
                }
                o.slo.push(objective);
            }
            "--wal-sync" => {
                // Fail fast on the value, before any socket or file I/O.
                o.wal_sync = SyncPolicy::parse(&val("--wal-sync")?)
                    .map_err(|e| format!("--wal-sync: {e}"))?
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn parse_checkpoint_args(
    mut args: impl Iterator<Item = String>,
) -> Result<CheckpointOptions, String> {
    let mut dataset: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        seen.check(&flag)?;
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--dataset" => dataset = Some(val("--dataset")?),
            "--addr" => addr = val("--addr")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(CheckpointOptions {
        dataset: dataset.ok_or("checkpoint requires --dataset NAME")?,
        addr,
    })
}

fn parse_update_args(mut args: impl Iterator<Item = String>) -> Result<UpdateOptions, String> {
    let mut dataset: Option<String> = None;
    let mut file: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        seen.check(&flag)?;
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--dataset" => dataset = Some(val("--dataset")?),
            "--file" => file = Some(val("--file")?),
            "--addr" => addr = val("--addr")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(UpdateOptions {
        dataset: dataset.ok_or("update requires --dataset NAME")?,
        file: file.ok_or("update requires --file PATH")?,
        addr,
    })
}

fn parse_batch_args(mut args: impl Iterator<Item = String>) -> Result<BatchOptions, String> {
    let mut file: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut json = false;
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        seen.check(&flag)?;
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--file" => file = Some(val("--file")?),
            "--addr" => addr = val("--addr")?,
            "--json" => json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(BatchOptions {
        file: file.ok_or("batch requires --file SPEC.json")?,
        addr,
        json,
    })
}

fn parse_diff_args(mut args: impl Iterator<Item = String>) -> Result<DiffOptions, String> {
    let mut o = DiffOptions {
        dataset: String::new(),
        against: String::new(),
        algo: "mpds".to_string(),
        theta: 320,
        k: 5,
        lm: 2,
        density: "edge".to_string(),
        seed: 42,
        heuristic: false,
        addr: "127.0.0.1:7878".to_string(),
        json: false,
    };
    let mut seen = SeenFlags::new();
    while let Some(flag) = args.next() {
        seen.check(&flag)?;
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--dataset" => o.dataset = val("--dataset")?,
            "--against" => o.against = val("--against")?,
            "--algo" => {
                let a = val("--algo")?;
                Algo::parse(&a)?; // fail fast, before the request
                o.algo = a;
            }
            "--theta" => {
                o.theta = val("--theta")?
                    .parse()
                    .map_err(|e| format!("--theta: {e}"))?
            }
            "--k" => o.k = val("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--lm" => o.lm = val("--lm")?.parse().map_err(|e| format!("--lm: {e}"))?,
            "--density" => {
                let d = val("--density")?;
                parse_notion(&d)?;
                o.density = d;
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--heuristic" => o.heuristic = true,
            "--addr" => o.addr = val("--addr")?,
            "--json" => o.json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if o.dataset.is_empty() {
        return Err("diff requires --dataset NAME (the after side)".to_string());
    }
    if o.against.is_empty() {
        return Err("diff requires --against NAME (the baseline)".to_string());
    }
    Ok(o)
}

fn load_file(path: &str) -> Result<LoadedGraph, String> {
    mpds_service::registry::load_edge_list_file(path, std::path::Path::new(path))
}

fn run_command(o: &RunOptions) -> Result<(), String> {
    let loaded = load_file(&o.path)?;
    if o.command == "stats" {
        if o.json {
            println!("{}", render_stats(&o.path, &loaded.graph));
        } else {
            let (mean, std, q) = ugraph::probability::prob_stats(loaded.graph.probs());
            println!("nodes: {}", loaded.graph.num_nodes());
            println!("edges: {}", loaded.graph.num_edges());
            println!("probabilities: mean {mean:.4}, std {std:.4}, quartiles {q:?}");
        }
        return Ok(());
    }

    let req = QueryRequest {
        dataset: o.path.clone(),
        algo: Algo::parse(&o.command)?,
        notion: o.density.clone(),
        theta: o.theta,
        k: o.k,
        lm: o.lm,
        seed: o.seed,
        heuristic: o.heuristic,
        threads: o.threads,
        stop: o.stop,
        timeout_ms: None,
        budget_ms: o.budget_ms,
        profile: false,
    };
    let started = std::time::Instant::now();
    let payload = run_query(&loaded, &req, &RunControl::unbounded()).map_err(|e| e.to_string())?;
    let wall_ms = started.elapsed().as_millis() as u64;
    if o.json {
        println!(
            "{}",
            render_query_response_with_wall(&req, &payload, wall_ms)
        );
        return Ok(());
    }

    let show = |set: &[u32]| -> String {
        let named: Vec<String> = set.iter().map(|v| v.to_string()).collect();
        format!("{{{}}}", named.join(", "))
    };
    let notion = parse_notion(&o.density).expect("validated in parse_args");
    match req.algo {
        Algo::Mpds => {
            println!(
                "top-{} MPDS ({} density, theta = {}):",
                o.k,
                notion.label(),
                o.theta
            );
            for (i, (set, tau)) in payload.rows.iter().enumerate() {
                println!("  #{:<2} tau_hat = {:.4}  {}", i + 1, tau, show(set));
            }
            if payload.rows.is_empty() {
                println!("  (no sampled world contained an instance)");
            }
        }
        Algo::Nds => {
            println!(
                "top-{} NDS ({} density, theta = {}, lm = {}):",
                o.k,
                notion.label(),
                o.theta,
                o.lm
            );
            for (i, (set, gamma)) in payload.rows.iter().enumerate() {
                println!("  #{:<2} gamma_hat = {:.4}  {}", i + 1, gamma, show(set));
            }
        }
    }
    let converged = match payload.converged_at {
        Some(w) => format!(", converged at world {w}"),
        None => String::new(),
    };
    println!(
        "sampled {} worlds in {} ms (stop: {}{converged})",
        payload.worlds_sampled, wall_ms, payload.stop_reason
    );
    Ok(())
}

fn serve_command(o: &ServeOptions) -> Result<(), String> {
    let mut registry = GraphRegistry::with_builtins();
    for (name, path) in &o.datasets {
        registry.register_file(name, path);
    }
    if let Some(dir) = &o.data_dir {
        let store = Store::create(std::path::Path::new(dir), o.wal_sync)
            .map_err(|e| format!("data dir {dir}: {e}"))?;
        registry.set_store(store);
    }
    let engine = Arc::new(QueryEngine::new(
        registry,
        &EngineConfig {
            cache_capacity: o.cache_capacity,
            cache_shards: 8,
        },
    ));
    // Recover durable datasets before the listener binds, so the first
    // request already sees pre-crash state. A dataset that fails recovery is
    // a fatal error — serving it empty would silently drop acknowledged
    // mutations.
    if engine.registry().persistence_enabled() {
        for (name, outcome) in engine.registry().recover_on_boot() {
            match outcome {
                Ok(generation) => println!("recovered dataset {name:?} at generation {generation}"),
                Err(e) => return Err(format!("recover dataset {name:?}: {e}")),
            }
        }
    }
    let cfg = ServerConfig {
        threads: o.threads,
        queue_capacity: o.queue,
        mutable: o.mutable,
        access_log: o.access_log.as_ref().map(std::path::PathBuf::from),
        slow_ms: o.slow_ms,
        flight: o.flight,
        flight_capacity: o.flight_capacity,
        slow_capacity: o.slow_capacity,
        slo: if o.slo.is_empty() {
            mpds_service::http::default_slo_objectives()
        } else {
            o.slo.clone()
        },
        ..ServerConfig::default()
    };
    let server =
        Server::bind(o.bind.as_str(), engine, &cfg).map_err(|e| format!("bind {}: {e}", o.bind))?;
    println!(
        "mpds-service listening on http://{} ({} workers, queue {}, cache {}{})",
        server.local_addr(),
        o.threads,
        o.queue,
        o.cache_capacity,
        if o.mutable { ", mutable" } else { "" }
    );
    if let Some(path) = &o.access_log {
        println!("access log: {path}");
    }
    if let Some(dir) = &o.data_dir {
        println!(
            "durable datasets under {dir} (wal-sync {})",
            match o.wal_sync {
                SyncPolicy::Commit => "commit",
                SyncPolicy::Interval => "interval",
            }
        );
    }
    // Serve until killed; the Server's own threads do all the work.
    loop {
        std::thread::park();
    }
}

fn resolve_addr(addr: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or_else(|| format!("cannot resolve --addr {addr:?}"))
}

fn update_command(o: &UpdateOptions) -> Result<(), String> {
    let addr = resolve_addr(&o.addr)?;
    let body = std::fs::read(&o.file).map_err(|e| format!("read {}: {e}", o.file))?;
    let path = format!("/update?dataset={}", o.dataset);
    let ex =
        mpds_service::harness::http_post(addr, &path, &body, std::time::Duration::from_secs(120))
            .map_err(|e| format!("POST {path} to {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&ex.body);
    if ex.status != 200 {
        return Err(format!("server answered {}: {text}", ex.status));
    }
    println!("{text}");
    Ok(())
}

fn checkpoint_command(o: &CheckpointOptions) -> Result<(), String> {
    let addr = resolve_addr(&o.addr)?;
    let path = format!("/admin/checkpoint?dataset={}", o.dataset);
    let ex =
        mpds_service::harness::http_post(addr, &path, &[], std::time::Duration::from_secs(120))
            .map_err(|e| format!("POST {path} to {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&ex.body);
    if ex.status != 200 {
        return Err(format!("server answered {}: {text}", ex.status));
    }
    println!("{text}");
    Ok(())
}

/// Renders a JSON `[1,3,7]` nodes array as `{1, 3, 7}`.
fn show_nodes(v: &JsonValue) -> String {
    let items = match v {
        JsonValue::Array(items) => items
            .iter()
            .map(|n| match n {
                JsonValue::Number(raw) => raw.clone(),
                other => format!("{other:?}"),
            })
            .collect::<Vec<_>>(),
        other => vec![format!("{other:?}")],
    };
    format!("{{{}}}", items.join(", "))
}

/// The raw text of a JSON number field (scores are displayed verbatim —
/// the server already rendered them deterministically).
fn raw_number(v: &JsonValue) -> String {
    match v {
        JsonValue::Number(raw) => raw.clone(),
        other => format!("{other:?}"),
    }
}

fn batch_command(o: &BatchOptions) -> Result<(), String> {
    let addr = resolve_addr(&o.addr)?;
    let body = std::fs::read(&o.file).map_err(|e| format!("read {}: {e}", o.file))?;
    let ex = mpds_service::harness::http_post(
        addr,
        "/batch",
        &body,
        std::time::Duration::from_secs(120),
    )
    .map_err(|e| format!("POST /batch to {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&ex.body).into_owned();
    if ex.status != 200 {
        return Err(format!("server answered {}: {text}", ex.status));
    }
    if o.json {
        println!("{text}");
        return Ok(());
    }
    let doc = JsonValue::parse(&text).map_err(|e| format!("batch response: {e}"))?;
    let field = |key: &str| -> Result<&JsonValue, String> {
        doc.get(key)?
            .ok_or_else(|| format!("batch response has no {key:?}"))
    };
    println!(
        "batch over {}: {} members (theta {}, seed {}), {} computed on one shared world stream",
        field("dataset")?.as_str("dataset")?,
        field("members")?.as_usize("members")?,
        raw_number(field("theta")?),
        raw_number(field("seed")?),
        field("computed")?.as_usize("computed")?,
    );
    let results = field("results")?.as_array("results")?;
    let sources = field("sources")?.as_array("sources")?;
    for (i, member) in results.iter().enumerate() {
        let mfield = |key: &str| -> Result<&JsonValue, String> {
            member
                .get(key)
                .map_err(|e| format!("member {i}: {e}"))?
                .ok_or_else(|| format!("member {i} has no {key:?}"))
        };
        let source = sources
            .get(i)
            .and_then(|s| s.as_str("source").ok())
            .unwrap_or("?");
        let rows = mfield("results")?.as_array("rows")?;
        let top = match rows.first() {
            Some(row) => {
                let rfield = |key: &str| -> Result<&JsonValue, String> {
                    row.get(key)
                        .map_err(|e| format!("member {i} row: {e}"))?
                        .ok_or_else(|| format!("member {i} row has no {key:?}"))
                };
                format!(
                    "top {} = {}",
                    show_nodes(rfield("nodes")?),
                    raw_number(rfield("score")?)
                )
            }
            None => "no instance in any sampled world".to_string(),
        };
        println!(
            "  #{:<2} {} k={} [{source}]: {} rows, {top}",
            i + 1,
            mfield("algo")?.as_str("algo")?,
            mfield("k")?.as_usize("k")?,
            rows.len(),
        );
    }
    Ok(())
}

fn diff_command(o: &DiffOptions) -> Result<(), String> {
    let addr = resolve_addr(&o.addr)?;
    let path = format!(
        "/diff?dataset={}&against={}&algo={}&notion={}&theta={}&k={}&lm={}&seed={}{}",
        o.dataset,
        o.against,
        o.algo,
        o.density,
        o.theta,
        o.k,
        o.lm,
        o.seed,
        if o.heuristic { "&heuristic=true" } else { "" }
    );
    let ex = mpds_service::harness::http_get(addr, &path, std::time::Duration::from_secs(120))
        .map_err(|e| format!("GET {path} from {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&ex.body).into_owned();
    if ex.status != 200 {
        return Err(format!("server answered {}: {text}", ex.status));
    }
    if o.json {
        println!("{text}");
        return Ok(());
    }
    let doc = JsonValue::parse(&text).map_err(|e| format!("diff response: {e}"))?;
    let field = |key: &str| -> Result<&JsonValue, String> {
        doc.get(key)?
            .ok_or_else(|| format!("diff response has no {key:?}"))
    };
    println!(
        "diff {} vs {} ({}, theta {}, k {}, seed {}, common random numbers):",
        o.dataset,
        o.against,
        o.algo,
        raw_number(field("theta")?),
        raw_number(field("k")?),
        raw_number(field("seed")?),
    );
    let rows = |key: &str, sign: &str| -> Result<usize, String> {
        let rows = field(key)?.as_array(key)?;
        for row in rows {
            let rfield = |k: &str| -> Result<&JsonValue, String> {
                row.get(k)
                    .map_err(|e| format!("{key} row: {e}"))?
                    .ok_or_else(|| format!("{key} row has no {k:?}"))
            };
            println!(
                "  {sign} {}  score {}",
                show_nodes(rfield("nodes")?),
                raw_number(rfield("score")?)
            );
        }
        Ok(rows.len())
    };
    let entered = rows("entered", "+")?;
    let left = rows("left", "-")?;
    let mut reranked = 0usize;
    for row in field("common")?.as_array("common")? {
        let rfield = |k: &str| -> Result<&JsonValue, String> {
            row.get(k)
                .map_err(|e| format!("common row: {e}"))?
                .ok_or_else(|| format!("common row has no {k:?}"))
        };
        let before = rfield("rank_before")?.as_usize("rank_before")?;
        let after = rfield("rank_after")?.as_usize("rank_after")?;
        if before != after {
            reranked += 1;
            println!(
                "  ~ {}  rank {} -> {}, score {} -> {}",
                show_nodes(rfield("nodes")?),
                before + 1,
                after + 1,
                raw_number(rfield("score_before")?),
                raw_number(rfield("score_after")?)
            );
        }
    }
    if field("unchanged")?.as_bool("unchanged")? {
        println!("  top-k unchanged");
    } else {
        println!("  {entered} entered, {left} left, {reranked} re-ranked");
    }
    println!(
        "  max |score delta| over common sets: {}",
        raw_number(field("max_abs_score_delta")?)
    );
    Ok(())
}

fn main() -> ExitCode {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &cmd {
        Command::Run(o) => run_command(o),
        Command::Serve(o) => serve_command(o),
        Command::Update(o) => update_command(o),
        Command::Batch(o) => batch_command(o),
        Command::Diff(o) => diff_command(o),
        Command::Checkpoint(o) => checkpoint_command(o),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    fn parse_run(args: &[&str]) -> Result<RunOptions, String> {
        match parse(args)? {
            Command::Run(o) => Ok(o),
            _ => panic!("expected run command"),
        }
    }

    fn parse_serve(args: &[&str]) -> Result<ServeOptions, String> {
        match parse(args)? {
            Command::Serve(o) => Ok(o),
            _ => panic!("expected serve command"),
        }
    }

    fn parse_update(args: &[&str]) -> Result<UpdateOptions, String> {
        match parse(args)? {
            Command::Update(o) => Ok(o),
            _ => panic!("expected update command"),
        }
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse_run(&["mpds", "g.txt"]).unwrap();
        assert_eq!((o.theta, o.k, o.lm, o.seed), (320, 5, 2, 42));
        assert_eq!(o.threads, 1);
        assert!(!o.heuristic && !o.json);
        let o = parse_run(&[
            "nds",
            "g.txt",
            "--theta",
            "99",
            "--k",
            "2",
            "--lm",
            "3",
            "--seed",
            "7",
            "--heuristic",
            "--json",
        ])
        .unwrap();
        assert_eq!((o.theta, o.k, o.lm, o.seed), (99, 2, 3, 7));
        assert!(o.heuristic && o.json);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = parse_run(&["mpds", "g.txt", "--bogus"]).unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--theta", "5", "--verbose"]).unwrap_err();
        assert!(e.contains("unknown option \"--verbose\""), "{e}");
        let e = parse_serve(&["serve", "--bogus"]).unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
    }

    #[test]
    fn run_threads_flag_is_parsed_and_validated() {
        // Previously parallel execution was unreachable from the CLI;
        // --threads wires Exec::Threads through the query engine.
        let o = parse_run(&["mpds", "g.txt", "--threads", "4"]).unwrap();
        assert_eq!(o.threads, 4);
        let e = parse_run(&["mpds", "g.txt", "--threads", "0"]).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse_run(&["nds", "g.txt", "--threads", "x"]).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--threads", "2", "--threads", "3"]).unwrap_err();
        assert!(e.contains("duplicate option \"--threads\""), "{e}");
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let e = parse_run(&["mpds", "g.txt", "--theta", "5", "--theta", "6"]).unwrap_err();
        assert!(e.contains("duplicate option \"--theta\""), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--heuristic", "--heuristic"]).unwrap_err();
        assert!(e.contains("duplicate option"), "{e}");
        let e = parse_serve(&["serve", "--threads", "2", "--threads", "4"]).unwrap_err();
        assert!(e.contains("duplicate option"), "{e}");
    }

    #[test]
    fn missing_values_and_paths_are_rejected() {
        assert!(parse_run(&["mpds", "g.txt", "--theta"])
            .unwrap_err()
            .contains("missing value"));
        assert!(parse_run(&["mpds"])
            .unwrap_err()
            .contains("missing edge-list path"));
        assert!(parse_run(&["mpds", "--theta"])
            .unwrap_err()
            .contains("missing edge-list path"));
        assert!(parse(&["bogus", "x"])
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn stop_budget_and_window_flags() {
        let o = parse_run(&["mpds", "g.txt"]).unwrap();
        assert_eq!(o.stop, StopSpec::Fixed);
        assert_eq!(o.budget_ms, None);
        let o = parse_run(&["mpds", "g.txt", "--stop", "stable"]).unwrap();
        assert_eq!(
            o.stop,
            StopSpec::Stable {
                window: DEFAULT_STABLE_WINDOW
            }
        );
        let o = parse_run(&[
            "nds",
            "g.txt",
            "--stop",
            "stable",
            "--window",
            "8",
            "--budget-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(o.stop, StopSpec::Stable { window: 8 });
        assert_eq!(o.budget_ms, Some(250));
        // --window without --stop stable is an error, as on the server.
        let e = parse_run(&["mpds", "g.txt", "--window", "8"]).unwrap_err();
        assert!(e.contains("requires --stop stable"), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--stop", "fixed", "--window", "8"]).unwrap_err();
        assert!(e.contains("requires --stop stable"), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--stop", "eventually"]).unwrap_err();
        assert!(e.contains("expected fixed|stable"), "{e}");
        let e = parse_run(&["mpds", "g.txt", "--budget-ms", "x"]).unwrap_err();
        assert!(e.contains("--budget-ms"), "{e}");
    }

    #[test]
    fn bad_density_fails_in_parse() {
        assert!(parse_run(&["mpds", "g.txt", "--density", "tesseract"])
            .unwrap_err()
            .contains("unknown density"));
        assert!(parse_run(&["mpds", "g.txt", "--density", "9clique"])
            .unwrap_err()
            .contains("outside 2..=8"));
        assert!(parse_run(&["mpds", "g.txt", "--density", "3clique"]).is_ok());
    }

    #[test]
    fn serve_defaults_and_datasets() {
        let o = parse_serve(&["serve"]).unwrap();
        assert_eq!(o.bind, "127.0.0.1:7878");
        assert_eq!((o.threads, o.cache_capacity, o.queue), (4, 256, 64));
        let o = parse_serve(&[
            "serve",
            "--bind",
            "0.0.0.0:0",
            "--threads",
            "2",
            "--dataset",
            "a=/tmp/a.txt",
            "--dataset",
            "b=/tmp/b.txt",
        ])
        .unwrap();
        assert_eq!(o.datasets.len(), 2);
        // --dataset is repeatable, but names must be unique and well-formed.
        assert!(
            parse_serve(&["serve", "--dataset", "a=/x", "--dataset", "a=/y"])
                .unwrap_err()
                .contains("duplicate dataset name")
        );
        assert!(parse_serve(&["serve", "--dataset", "nopath"])
            .unwrap_err()
            .contains("NAME=PATH"));
        assert!(parse_serve(&["serve", "--threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn serve_observability_flags() {
        let o = parse_serve(&["serve"]).unwrap();
        assert_eq!(o.access_log, None);
        assert_eq!(o.slow_ms, None);
        let o = parse_serve(&[
            "serve",
            "--access-log",
            "/tmp/access.jsonl",
            "--slow-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(o.access_log.as_deref(), Some("/tmp/access.jsonl"));
        assert_eq!(o.slow_ms, Some(250));
        assert!(parse_serve(&["serve", "--slow-ms", "soon"])
            .unwrap_err()
            .contains("--slow-ms"));
        assert!(parse_serve(&["serve", "--slow-ms", "1", "--slow-ms", "2"])
            .unwrap_err()
            .contains("duplicate option"));
    }

    #[test]
    fn serve_flight_and_slo_flags() {
        let o = parse_serve(&["serve"]).unwrap();
        assert!(o.flight);
        assert_eq!(o.flight_capacity, 256);
        assert_eq!(o.slow_capacity, 64);
        assert!(o.slo.is_empty());
        let o = parse_serve(&[
            "serve",
            "--no-flight",
            "--flight-capacity",
            "16",
            "--slow-capacity",
            "4",
            "--slo",
            "query:latency:100:0.95",
            "--slo",
            "update:availability:0.999",
        ])
        .unwrap();
        assert!(!o.flight);
        assert_eq!(o.flight_capacity, 16);
        assert_eq!(o.slow_capacity, 4);
        assert_eq!(o.slo.len(), 2);
        assert_eq!(o.slo[0].name, "query-latency-100ms");
        assert_eq!(o.slo[1].name, "update-availability");
        assert!(parse_serve(&["serve", "--flight-capacity", "many"])
            .unwrap_err()
            .contains("--flight-capacity"));
        assert!(parse_serve(&["serve", "--slo", "query:nonsense"])
            .unwrap_err()
            .contains("--slo"));
        // --slo is repeatable, but derived names must be unique.
        assert!(parse_serve(&[
            "serve",
            "--slo",
            "query:availability:0.9",
            "--slo",
            "query:availability:0.99",
        ])
        .unwrap_err()
        .contains("duplicate SLO"));
        assert!(parse_serve(&["serve", "--no-flight", "--no-flight"])
            .unwrap_err()
            .contains("duplicate option"));
    }

    #[test]
    fn serve_mutable_flag() {
        assert!(!parse_serve(&["serve"]).unwrap().mutable);
        assert!(parse_serve(&["serve", "--mutable"]).unwrap().mutable);
        // Duplicate and unknown rejection apply to the new flag too.
        assert!(parse_serve(&["serve", "--mutable", "--mutable"])
            .unwrap_err()
            .contains("duplicate option \"--mutable\""));
        assert!(parse_serve(&["serve", "--immutable"])
            .unwrap_err()
            .contains("unknown option"));
    }

    #[test]
    fn serve_durability_flags() {
        let o = parse_serve(&["serve"]).unwrap();
        assert_eq!(o.data_dir, None);
        assert_eq!(o.wal_sync, SyncPolicy::Commit);
        let o =
            parse_serve(&["serve", "--data-dir", "/tmp/mpds", "--wal-sync", "interval"]).unwrap();
        assert_eq!(o.data_dir.as_deref(), Some("/tmp/mpds"));
        assert_eq!(o.wal_sync, SyncPolicy::Interval);
        assert_eq!(
            parse_serve(&["serve", "--wal-sync", "commit"])
                .unwrap()
                .wal_sync,
            SyncPolicy::Commit
        );
        // Unknown sync values fail in parse, before any file or socket I/O.
        let e = parse_serve(&["serve", "--wal-sync", "always"]).unwrap_err();
        assert!(e.contains("--wal-sync"), "{e}");
        assert!(e.contains("expected"), "{e}");
        assert!(parse_serve(&["serve", "--wal-sync"])
            .unwrap_err()
            .contains("missing value"));
        // The new flags get the same duplicate rejection as the rest.
        assert!(
            parse_serve(&["serve", "--data-dir", "/a", "--data-dir", "/b"])
                .unwrap_err()
                .contains("duplicate option \"--data-dir\"")
        );
        assert!(
            parse_serve(&["serve", "--wal-sync", "commit", "--wal-sync", "interval"])
                .unwrap_err()
                .contains("duplicate option \"--wal-sync\"")
        );
    }

    fn parse_checkpoint(args: &[&str]) -> Result<CheckpointOptions, String> {
        match parse(args)? {
            Command::Checkpoint(o) => Ok(o),
            _ => panic!("expected checkpoint command"),
        }
    }

    #[test]
    fn checkpoint_args_parse_and_validate() {
        let o = parse_checkpoint(&["checkpoint", "--dataset", "karate"]).unwrap();
        assert_eq!(o.dataset, "karate");
        assert_eq!(o.addr, "127.0.0.1:7878");
        let o = parse_checkpoint(&["checkpoint", "--dataset", "x", "--addr", "h:1"]).unwrap();
        assert_eq!(o.addr, "h:1");
        assert!(parse_checkpoint(&["checkpoint"])
            .unwrap_err()
            .contains("requires --dataset"));
        assert!(
            parse_checkpoint(&["checkpoint", "--dataset", "a", "--dataset", "b"])
                .unwrap_err()
                .contains("duplicate option \"--dataset\"")
        );
        assert!(
            parse_checkpoint(&["checkpoint", "--dataset", "a", "--bogus"])
                .unwrap_err()
                .contains("unknown option")
        );
        assert!(parse_checkpoint(&["checkpoint", "--dataset"])
            .unwrap_err()
            .contains("missing value"));
    }

    fn parse_batch(args: &[&str]) -> Result<BatchOptions, String> {
        match parse(args)? {
            Command::Batch(o) => Ok(o),
            _ => panic!("expected batch command"),
        }
    }

    fn parse_diff(args: &[&str]) -> Result<DiffOptions, String> {
        match parse(args)? {
            Command::Diff(o) => Ok(o),
            _ => panic!("expected diff command"),
        }
    }

    #[test]
    fn batch_args_parse_and_validate() {
        let o = parse_batch(&["batch", "--file", "spec.json"]).unwrap();
        assert_eq!(o.file, "spec.json");
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert!(!o.json);
        let o = parse_batch(&["batch", "--file", "s", "--addr", "h:1", "--json"]).unwrap();
        assert_eq!(o.addr, "h:1");
        assert!(o.json);
        assert!(parse_batch(&["batch"])
            .unwrap_err()
            .contains("requires --file"));
        assert!(parse_batch(&["batch", "--file", "a", "--file", "b"])
            .unwrap_err()
            .contains("duplicate option \"--file\""));
        assert!(parse_batch(&["batch", "--file", "a", "--bogus"])
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_batch(&["batch", "--file"])
            .unwrap_err()
            .contains("missing value"));
    }

    #[test]
    fn diff_args_parse_and_validate() {
        let o = parse_diff(&["diff", "--dataset", "after", "--against", "before"]).unwrap();
        assert_eq!(o.dataset, "after");
        assert_eq!(o.against, "before");
        assert_eq!((o.theta, o.k, o.lm, o.seed), (320, 5, 2, 42));
        assert_eq!(o.algo, "mpds");
        assert!(!o.heuristic && !o.json);
        let o = parse_diff(&[
            "diff",
            "--dataset",
            "a",
            "--against",
            "b",
            "--algo",
            "nds",
            "--theta",
            "99",
            "--k",
            "2",
            "--density",
            "3clique",
            "--heuristic",
            "--json",
        ])
        .unwrap();
        assert_eq!(o.algo, "nds");
        assert_eq!((o.theta, o.k), (99, 2));
        assert!(o.heuristic && o.json);
        assert!(parse_diff(&["diff", "--against", "b"])
            .unwrap_err()
            .contains("requires --dataset"));
        assert!(parse_diff(&["diff", "--dataset", "a"])
            .unwrap_err()
            .contains("requires --against"));
        assert!(
            parse_diff(&["diff", "--dataset", "a", "--against", "b", "--threads", "2"])
                .unwrap_err()
                .contains("unknown option \"--threads\""),
            "diffs are serial; the flag must not exist"
        );
        assert!(parse_diff(&[
            "diff",
            "--dataset",
            "a",
            "--against",
            "b",
            "--k",
            "1",
            "--k",
            "2"
        ])
        .unwrap_err()
        .contains("duplicate option \"--k\""));
        assert!(
            parse_diff(&["diff", "--dataset", "a", "--against", "b", "--algo", "x"])
                .unwrap_err()
                .contains("algo"),
        );
        assert!(parse_diff(&[
            "diff",
            "--dataset",
            "a",
            "--against",
            "b",
            "--density",
            "tesseract"
        ])
        .unwrap_err()
        .contains("unknown density"));
    }

    #[test]
    fn update_args_parse_and_validate() {
        let o = parse_update(&["update", "--dataset", "karate", "--file", "d.txt"]).unwrap();
        assert_eq!(o.dataset, "karate");
        assert_eq!(o.file, "d.txt");
        assert_eq!(o.addr, "127.0.0.1:7878");
        let o = parse_update(&[
            "update",
            "--addr",
            "10.0.0.1:80",
            "--dataset",
            "x",
            "--file",
            "f",
        ])
        .unwrap();
        assert_eq!(o.addr, "10.0.0.1:80");
        // Required flags, duplicates, unknowns, missing values.
        assert!(parse_update(&["update", "--file", "d.txt"])
            .unwrap_err()
            .contains("requires --dataset"));
        assert!(parse_update(&["update", "--dataset", "karate"])
            .unwrap_err()
            .contains("requires --file"));
        assert!(
            parse_update(&["update", "--dataset", "a", "--dataset", "b", "--file", "f"])
                .unwrap_err()
                .contains("duplicate option \"--dataset\"")
        );
        assert!(parse_update(&["update", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_update(&["update", "--dataset"])
            .unwrap_err()
            .contains("missing value"));
    }
}
