//! Loopback load harness for `mpds-cli serve` — emits `BENCH_pr3.json`
//! (read workload) or, with `--churn`, `BENCH_pr5.json` (update/read mix).
//!
//! ```text
//! mpds-load [--addr HOST:PORT] [--clients N] [--requests N]
//!           [--server-threads N] [--dataset D] [--theta N] [--k N]
//!           [--out PATH] [--wait-secs S] [--check]
//!           [--churn] [--updates N] [--batch-edges N] [--reads-per-round N]
//!           [--batch] [--members N] [--rounds N]
//!           [--anytime] [--window N] [--budget-ms N]
//!           [--obs] [--flight]
//!           [--kill-recover --server-bin PATH --data-dir PATH]
//!           [--rounds-before N] [--rounds-after N]
//! ```
//!
//! Default mode drives `--clients` concurrent clients, each issuing
//! `--requests` requests split into a cold phase (distinct seeds; every
//! request is a real estimator run) and a repeat phase (one identical
//! query; the cache and in-flight coalescing must absorb it). Writes the
//! JSON report to `--out` (default `target/BENCH_pr3.json`).
//!
//! `--churn` instead interleaves `--updates` mutation batches (POSTed to
//! `/update`, so the server must run `serve --mutable`) with concurrent
//! read bursts, measuring read p50/p99, update latency, and post-update
//! cache-hit recovery; default `--out` becomes `target/BENCH_pr5.json`.
//!
//! `--batch` instead measures `POST /batch` amortization against sequential
//! `/query` calls (emits `BENCH_pr6.json`): per round it issues `--members`
//! member queries standalone under one seed, then the same member set as a
//! single batch under another, comparing worlds-materialized-per-member off
//! `/metrics`, and re-issues every member as a point query that must HIT the
//! batch-filled cache with bytes embedded verbatim in the batch envelope.
//!
//! `--anytime` instead exercises the anytime stop-policy API (emits
//! `BENCH_pr7.json`): a cold fixed-θ phase, a cold `stop=stable` phase that
//! must beat it at the median, a tight-`--budget-ms` phase where every
//! response must be a 200 best-so-far body (zero 504s), and a follow-up
//! phase polling each budget query until the server's background refinement
//! tier republishes a converged body under the same cache key.
//!
//! `--obs` instead drives the observability harness (emits
//! `BENCH_pr8.json`): the cold/repeat read shape with server-side p50/p99
//! reconstructed from Prometheus `/metrics` histogram scrapes bracketing
//! each phase, cross-checked against the client-side timings, plus a
//! `?profile=1` probe asserting stage timings appear without perturbing the
//! cached body.
//!
//! `--flight` instead drives the flight-recorder harness (emits
//! `BENCH_pr10.json`). It needs no running server: it binds two in-process
//! servers — flight recorder enabled vs disabled — drives the identical
//! cold/repeat workload against both, and probes the enabled one's
//! `/debug/requests`, `/debug/slow`, and `/debug/trace/<id>` endpoints,
//! resolving a Prometheus histogram exemplar to a per-stage breakdown.
//!
//! `--kill-recover` instead drives the durability harness (emits
//! `BENCH_pr9.json`). Unlike the other modes it spawns the server itself
//! (`--server-bin` must point at an `mpds-cli` binary, `--data-dir` at the
//! durability directory): it churns `--rounds-before` update batches,
//! SIGKILLs the server mid-stream, restarts it from the same `--data-dir`,
//! and then churns `--rounds-after` more.
//!
//! `--check` turns the report's invariants into an exit code (the CI
//! `service-smoke` / `churn-smoke` / `batch-smoke` / `anytime-smoke` /
//! `obs-smoke` / `durability-smoke` gates): zero non-2xx responses plus, in
//! flight mode, an enabled/disabled throughput ratio of at least 0.95 with
//! every debug probe and the exemplar resolution holding — and, in
//! read mode, bytewise-identical repeat bodies and a repeat-phase cache hit
//! rate above 0.9 — in churn mode, strictly monotone generations — in batch
//! mode, an amortization ratio of at least 2 and all follow-up point
//! queries served from cache — in anytime mode, zero 504s, a stable-phase
//! median speedup, real budget truncation, and every budget query
//! eventually refined — in obs mode, server-side windows counting exactly
//! the requests sent and percentiles agreeing with client-side timings
//! within the log2 tolerance band — in kill-recover mode, the restarted
//! server recovering the exact pre-SIGKILL generation with a byte-identical
//! canonical read and gap-free post-restart generations.

use mpds_service::harness::{
    self, AnytimeConfig, BatchConfig, ChurnConfig, FlightConfig, HarnessConfig, KillRecoverConfig,
    ObsConfig,
};
use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut cfg = HarnessConfig::default();
    let mut addr_spec = "127.0.0.1:7878".to_string();
    let mut out_path: Option<String> = None;
    let mut wait_secs = 30u64;
    let mut check = false;
    let mut churn = false;
    let mut updates = 8usize;
    let mut batch_edges = 16usize;
    let mut reads_per_round = 4usize;
    let mut batch = false;
    let mut members = 8usize;
    let mut rounds = 4usize;
    let mut anytime = false;
    let mut window = AnytimeConfig::default().window;
    let mut budget_ms = AnytimeConfig::default().budget_ms;
    let mut obs = false;
    let mut flight = false;
    let mut kill_recover = false;
    let mut server_bin: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let kr_defaults = KillRecoverConfig::default();
    let mut rounds_before = kr_defaults.rounds_before_kill;
    let mut rounds_after = kr_defaults.rounds_after_restart;
    let mut theta_set = false;
    let mut rounds_set = false;

    let mut args = std::env::args().skip(1);
    let fail = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: mpds-load [--addr HOST:PORT] [--clients N] [--requests N] \
             [--server-threads N] [--dataset D] [--theta N] [--k N] [--out PATH] \
             [--wait-secs S] [--check] [--churn] [--updates N] [--batch-edges N] \
             [--reads-per-round N] [--batch] [--members N] [--rounds N] \
             [--anytime] [--window N] [--budget-ms N] [--obs] [--flight] \
             [--kill-recover --server-bin PATH --data-dir PATH] \
             [--rounds-before N] [--rounds-after N]"
        );
        ExitCode::FAILURE
    };
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed = (|| -> Result<(), String> {
            match flag.as_str() {
                "--addr" => addr_spec = val("--addr")?,
                "--clients" => {
                    cfg.clients = val("--clients")?.parse().map_err(|e| format!("{e}"))?
                }
                "--requests" => {
                    cfg.requests_per_client =
                        val("--requests")?.parse().map_err(|e| format!("{e}"))?
                }
                "--server-threads" => {
                    cfg.server_threads = val("--server-threads")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--dataset" => cfg.dataset = val("--dataset")?,
                "--theta" => {
                    cfg.theta = val("--theta")?.parse().map_err(|e| format!("{e}"))?;
                    theta_set = true;
                }
                "--k" => cfg.k = val("--k")?.parse().map_err(|e| format!("{e}"))?,
                "--out" => out_path = Some(val("--out")?),
                "--wait-secs" => {
                    wait_secs = val("--wait-secs")?.parse().map_err(|e| format!("{e}"))?
                }
                "--check" => check = true,
                "--churn" => churn = true,
                "--updates" => updates = val("--updates")?.parse().map_err(|e| format!("{e}"))?,
                "--batch-edges" => {
                    batch_edges = val("--batch-edges")?.parse().map_err(|e| format!("{e}"))?
                }
                "--reads-per-round" => {
                    reads_per_round = val("--reads-per-round")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--batch" => batch = true,
                "--members" => members = val("--members")?.parse().map_err(|e| format!("{e}"))?,
                "--rounds" => {
                    rounds = val("--rounds")?.parse().map_err(|e| format!("{e}"))?;
                    rounds_set = true;
                }
                "--anytime" => anytime = true,
                "--window" => window = val("--window")?.parse().map_err(|e| format!("{e}"))?,
                "--budget-ms" => {
                    budget_ms = val("--budget-ms")?.parse().map_err(|e| format!("{e}"))?
                }
                "--obs" => obs = true,
                "--flight" => flight = true,
                "--kill-recover" => kill_recover = true,
                "--server-bin" => server_bin = Some(val("--server-bin")?),
                "--data-dir" => data_dir = Some(val("--data-dir")?),
                "--rounds-before" => {
                    rounds_before = val("--rounds-before")?
                        .parse()
                        .map_err(|e| format!("{e}"))?
                }
                "--rounds-after" => {
                    rounds_after = val("--rounds-after")?.parse().map_err(|e| format!("{e}"))?
                }
                other => return Err(format!("unknown option {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            return fail(e);
        }
    }

    cfg.addr = match addr_spec.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => return fail(format!("cannot resolve --addr {addr_spec:?}")),
    };
    if [batch, churn, anytime, obs, flight, kill_recover]
        .iter()
        .filter(|&&m| m)
        .count()
        > 1
    {
        return fail(
            "--batch, --churn, --anytime, --obs, --flight, and --kill-recover are mutually \
             exclusive"
                .to_string(),
        );
    }
    let out_path = out_path.unwrap_or_else(|| {
        if kill_recover {
            "target/BENCH_pr9.json".to_string()
        } else if flight {
            "target/BENCH_pr10.json".to_string()
        } else if obs {
            "target/BENCH_pr8.json".to_string()
        } else if anytime {
            "target/BENCH_pr7.json".to_string()
        } else if batch {
            "target/BENCH_pr6.json".to_string()
        } else if churn {
            "target/BENCH_pr5.json".to_string()
        } else {
            "target/BENCH_pr3.json".to_string()
        }
    });

    // Kill-recover owns the server process itself, and the flight harness
    // binds its own in-process pair; every other mode expects an
    // already-running server at --addr.
    if !kill_recover && !flight {
        if let Err(e) = harness::wait_until_healthy(cfg.addr, Duration::from_secs(wait_secs)) {
            return fail(e);
        }
    }

    let (json, violations) = if kill_recover {
        let (Some(server_bin), Some(data_dir)) = (server_bin, data_dir) else {
            return fail(
                "--kill-recover requires --server-bin PATH and --data-dir PATH".to_string(),
            );
        };
        let kcfg = KillRecoverConfig {
            server_bin,
            data_dir,
            bind: addr_spec.clone(),
            addr: cfg.addr,
            rounds_before_kill: rounds_before,
            rounds_after_restart: rounds_after,
            batch_edges,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: cfg.theta,
            k: cfg.k,
        };
        println!(
            "kill-recover: {} rounds, SIGKILL, restart, {} rounds against {} (data dir {}, dataset {}, theta {}, k {})",
            kcfg.rounds_before_kill,
            kcfg.rounds_after_restart,
            kcfg.bind,
            kcfg.data_dir,
            kcfg.dataset,
            kcfg.theta,
            kcfg.k
        );
        let report = harness::run_kill_recover(&kcfg);
        println!(
            "  updates {:>3}+{:>3}, {:>3} errors, p50 {:>8.3} ms; reads p50 {:>8.3} ms",
            report.updates_before,
            report.updates_after,
            report.update_errors,
            report.update_p50_ms,
            report.read_p50_ms
        );
        println!(
            "  recovery: generation {} -> {} in {:.1} ms wall ({} records replayed, {} ms server-side)",
            report.pre_kill_generation,
            report.recovered_generation,
            report.recovery_wall_ms,
            report.replayed_records,
            report.server_recovery_ms
        );
        println!(
            "  reads identical: {}; generations continuous: {}",
            report.reads_identical, report.generations_continuous
        );
        (
            harness::render_kill_recover_report(&report),
            report.violations.clone(),
        )
    } else if flight {
        let defaults = FlightConfig::default();
        let fcfg = FlightConfig {
            clients: cfg.clients,
            queries_per_client: if rounds_set {
                rounds
            } else {
                defaults.queries_per_client
            },
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: if theta_set { cfg.theta } else { defaults.theta },
            k: cfg.k,
        };
        println!(
            "flight: {} clients x {} queries/phase against two in-process servers, recorder enabled vs disabled (dataset {}, theta {}, k {})",
            fcfg.clients, fcfg.queries_per_client, fcfg.dataset, fcfg.theta, fcfg.k
        );
        let report = harness::run_flight(&fcfg);
        for (name, side) in [("enabled", &report.enabled), ("disabled", &report.disabled)] {
            println!(
                "  {name:<8} {:>9.1} req/s overall; cold p50 {:>8.3} ms, repeat p50 {:>8.3} ms, {} errors",
                side.overall_rps,
                side.cold.p50_ms,
                side.repeat.p50_ms,
                side.cold.errors + side.repeat.errors
            );
        }
        println!(
            "  overhead ratio {:.3} (floor {}), debug/requests {}, slow ring {} records, exemplar {}",
            report.overhead_ratio,
            harness::OVERHEAD_RATIO_FLOOR,
            if report.debug_requests_ok {
                "ok"
            } else {
                "FAILED"
            },
            report.debug_slow_len,
            if report.exemplar_resolved {
                format!("{} resolved", report.exemplar_trace)
            } else {
                "UNRESOLVED".to_string()
            }
        );
        (
            harness::render_flight_report(&report),
            report.violations.clone(),
        )
    } else if obs {
        let ocfg = ObsConfig {
            addr: cfg.addr,
            clients: cfg.clients,
            queries_per_client: rounds,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: if theta_set {
                cfg.theta
            } else {
                ObsConfig::default().theta
            },
            k: cfg.k,
        };
        println!(
            "obs: {} clients x {} queries/phase against http://{} (dataset {}, theta {}, k {})",
            ocfg.clients, ocfg.queries_per_client, ocfg.addr, ocfg.dataset, ocfg.theta, ocfg.k
        );
        let report = harness::run_obs(&ocfg);
        for (name, p, s) in [
            ("cold", &report.cold, &report.server_cold),
            ("repeat", &report.repeat, &report.server_repeat),
        ] {
            println!(
                "  {name:<7} {:>5} reqs, {:>3} errors, client p50 {:>8.3} / p99 {:>8.3} ms, server p50 {:>8.3} / p99 {:>8.3} ms ({} observed)",
                p.requests, p.errors, p.p50_ms, p.p99_ms, s.p50_ms, s.p99_ms, s.requests
            );
        }
        println!(
            "  profile probe: {}",
            if report.profile_ok { "ok" } else { "FAILED" }
        );
        (
            harness::render_obs_report(&report),
            report.violations.clone(),
        )
    } else if anytime {
        let acfg = AnytimeConfig {
            addr: cfg.addr,
            clients: cfg.clients,
            queries_per_client: rounds,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: if theta_set {
                cfg.theta
            } else {
                AnytimeConfig::default().theta
            },
            k: cfg.k,
            window,
            budget_ms,
        };
        println!(
            "anytime: {} clients x {} queries/phase against http://{} (dataset {}, theta {}, k {}, window {}, budget {} ms)",
            acfg.clients,
            acfg.queries_per_client,
            acfg.addr,
            acfg.dataset,
            acfg.theta,
            acfg.k,
            acfg.window,
            acfg.budget_ms
        );
        let report = harness::run_anytime(&acfg);
        for (name, p) in [
            ("fixed", &report.fixed),
            ("stable", &report.stable),
            ("budget", &report.budget),
        ] {
            println!(
                "  {name:<7} {:>5} reqs, {:>3} errors, p50 {:>8.3} ms, p99 {:>8.3} ms",
                p.requests, p.errors, p.p50_ms, p.p99_ms
            );
        }
        println!(
            "  stable speedup {:.2}x, {} budget-truncated, {} 504s, refined {}/{} (wait p50 {:.1} ms)",
            report.stable_speedup,
            report.budget_truncated,
            report.budget_504s,
            report.refined_hits,
            report.refined_followups,
            report.refined_wait_p50_ms
        );
        (
            harness::render_anytime_report(&report),
            report.violations.clone(),
        )
    } else if batch {
        let bcfg = BatchConfig {
            addr: cfg.addr,
            members,
            rounds,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: if theta_set {
                cfg.theta
            } else {
                BatchConfig::default().theta
            },
        };
        println!(
            "batch: {} rounds x {} members against http://{} (dataset {}, theta {})",
            bcfg.rounds, bcfg.members, bcfg.addr, bcfg.dataset, bcfg.theta
        );
        let report = harness::run_batch(&bcfg);
        for (name, p) in [("standalone", &report.standalone), ("batch", &report.batch)] {
            println!(
                "  {name:<10} {:>5} reqs, {:>3} errors, p50 {:>8.3} ms, p99 {:>8.3} ms",
                p.requests, p.errors, p.p50_ms, p.p99_ms
            );
        }
        println!(
            "  worlds/member: standalone {:.1}, batch {:.1} — amortization {:.2}x",
            report.standalone_worlds_per_member,
            report.batch_worlds_per_member,
            report.amortization_ratio
        );
        println!(
            "  follow-up cache hit rate: {:.3}",
            report.followup_hit_rate
        );
        (
            harness::render_batch_report(&report),
            report.violations.clone(),
        )
    } else if churn {
        let ccfg = ChurnConfig {
            addr: cfg.addr,
            clients: cfg.clients,
            update_batches: updates,
            batch_edges,
            reads_per_round,
            server_threads: cfg.server_threads,
            dataset: cfg.dataset.clone(),
            theta: cfg.theta,
            k: cfg.k,
        };
        println!(
            "churn: {} update batches x {} edges, {} clients x {} reads/round against http://{} (dataset {}, theta {}, k {})",
            ccfg.update_batches,
            ccfg.batch_edges,
            ccfg.clients,
            ccfg.reads_per_round,
            ccfg.addr,
            ccfg.dataset,
            ccfg.theta,
            ccfg.k
        );
        let report = harness::run_churn(&ccfg);
        println!(
            "  reads   {:>5} reqs, {:>3} errors, p50 {:>8.3} ms, p99 {:>8.3} ms",
            report.reads.requests, report.reads.errors, report.reads.p50_ms, report.reads.p99_ms
        );
        println!(
            "  updates {:>5} reqs, {:>3} errors, p50 {:>8.3} ms, p99 {:>8.3} ms, generations {}..{} ({})",
            report.updates,
            report.update_errors,
            report.update_p50_ms,
            report.update_p99_ms,
            report.first_generation,
            report.last_generation,
            if report.generations_monotone {
                "monotone"
            } else {
                "NOT MONOTONE"
            }
        );
        println!(
            "  post-update cache-hit recovery: {:.3}",
            report.post_update_hit_recovery
        );
        (
            harness::render_churn_report(&report),
            report.violations.clone(),
        )
    } else {
        println!(
            "load: {} clients x {} requests ({} cold + {} repeat) against http://{} (dataset {}, theta {}, k {})",
            cfg.clients,
            cfg.requests_per_client,
            cfg.requests_per_client / 2,
            cfg.requests_per_client - cfg.requests_per_client / 2,
            cfg.addr,
            cfg.dataset,
            cfg.theta,
            cfg.k
        );
        let report = harness::run(&cfg);
        for (name, p) in [("cold", &report.cold), ("repeat", &report.repeat)] {
            println!(
                "  {name:<7} {:>5} reqs, {:>3} errors, {:>9.1} req/s, p50 {:>8.3} ms, p99 {:>8.3} ms",
                p.requests, p.errors, p.throughput_rps, p.p50_ms, p.p99_ms
            );
        }
        println!(
            "  repeat-phase cache hit rate: {:.3}",
            report.repeat_cache_hit_rate
        );
        (harness::render_report(&report), report.violations.clone())
    };

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        return fail(format!("write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    if violations.is_empty() {
        if check {
            println!("check: OK");
        }
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        if check {
            eprintln!("check: FAILED");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
