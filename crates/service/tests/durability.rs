//! End-to-end durability tests: kill a durable server mid-churn, restart it
//! from the same `--data-dir`, and hold it to the uninterrupted twin's
//! bytes.
//!
//! The crash is simulated by dropping the [`Server`] (and its registry)
//! without any checkpoint or graceful flush — with fsync-on-commit the WAL
//! already contains every acknowledged batch, so a drop and a SIGKILL leave
//! the same on-disk state. The real-SIGKILL path is exercised by the CI
//! `durability-smoke` job (`mpds-load --kill-recover`).

use mpds_service::harness::{churn_batch, http_get, http_post, Exchange};
use mpds_service::{EngineConfig, GraphRegistry, QueryEngine, Server, ServerConfig};
use mpds_store::{Store, SyncPolicy};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "/query?dataset=karate&theta=48&k=3&seed=7";
const BATCH_EDGES: usize = 6;

fn start_server(data_dir: Option<&Path>, mutable: bool) -> Server {
    let mut registry = GraphRegistry::with_builtins();
    if let Some(dir) = data_dir {
        registry.set_store(Store::create(dir, SyncPolicy::Commit).expect("create store"));
        // The serve command's boot sequence: recover every dataset with
        // on-disk state before the listener accepts traffic.
        for (name, outcome) in registry.recover_on_boot() {
            outcome.unwrap_or_else(|e| panic!("recover {name:?}: {e}"));
        }
    }
    let engine = Arc::new(QueryEngine::new(registry, &EngineConfig::default()));
    let cfg = ServerConfig {
        mutable,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, &cfg).expect("bind ephemeral port")
}

fn get(server: &Server, path: &str) -> Exchange {
    http_get(server.local_addr(), path, Duration::from_secs(60)).expect("http_get")
}

fn post(server: &Server, path: &str, body: &str) -> Exchange {
    http_post(
        server.local_addr(),
        path,
        body.as_bytes(),
        Duration::from_secs(60),
    )
    .expect("http_post")
}

/// Applies churn round `round` to `server`, asserting the acknowledged
/// generation.
fn apply(server: &Server, round: usize, expect_generation: u64) {
    let e = post(
        server,
        "/update?dataset=karate",
        &churn_batch(round, BATCH_EDGES),
    );
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let body = String::from_utf8_lossy(&e.body);
    assert!(
        body.contains(&format!("\"generation\":{expect_generation}")),
        "round {round}: expected generation {expect_generation}: {body}"
    );
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpds-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_recover_matches_uninterrupted_twin() {
    let dir = temp_dir("twin");

    // The twin never crashes and never persists — the reference run.
    let twin = start_server(None, true);
    // Server A persists every acknowledged batch under `dir`.
    let server_a = start_server(Some(&dir), true);

    for round in 0..3 {
        apply(&server_a, round, round as u64 + 1);
        apply(&twin, round, round as u64 + 1);
    }
    // Both sides answer the canonical query identically before the crash
    // (same base graph, same batches, deterministic estimator).
    let read_a = get(&server_a, QUERY);
    let read_twin = get(&twin, QUERY);
    assert_eq!(read_a.status, 200);
    assert_eq!(read_a.body, read_twin.body, "pre-crash twin divergence");

    // Crash: no checkpoint was ever taken, so recovery is WAL-only.
    drop(server_a);

    let server_b = start_server(Some(&dir), true);
    let listing = String::from_utf8(get(&server_b, "/datasets").body).unwrap();
    assert!(listing.contains("\"generation\":3"), "{listing}");
    assert!(listing.contains("\"replayed_records\":3"), "{listing}");
    let read_b = get(&server_b, QUERY);
    assert_eq!(
        read_b.body, read_twin.body,
        "recovered server must serve byte-identical query responses"
    );

    // Checkpoint, then keep churning on both sides. Generation continuity:
    // the first post-restart ack is exactly pre-crash + 1.
    let ckpt = post(&server_b, "/admin/checkpoint?dataset=karate", "");
    assert_eq!(ckpt.status, 200, "{}", String::from_utf8_lossy(&ckpt.body));
    let ckpt_body = String::from_utf8_lossy(&ckpt.body);
    assert!(ckpt_body.contains("\"generation\":3"), "{ckpt_body}");
    assert!(ckpt_body.contains("\"wal_records\":0"), "{ckpt_body}");
    for round in 3..5 {
        apply(&server_b, round, round as u64 + 1);
        apply(&twin, round, round as u64 + 1);
    }

    // Second crash: recovery is now checkpoint + WAL tail.
    drop(server_b);
    let server_c = start_server(Some(&dir), true);
    let listing = String::from_utf8(get(&server_c, "/datasets").body).unwrap();
    assert!(listing.contains("\"generation\":5"), "{listing}");
    assert!(
        listing.contains("\"last_checkpoint_generation\":3"),
        "{listing}"
    );
    assert!(listing.contains("\"replayed_records\":2"), "{listing}");
    let read_c = get(&server_c, QUERY);
    let read_twin = get(&twin, QUERY);
    assert_eq!(
        read_c.body, read_twin.body,
        "checkpoint+tail recovery must serve byte-identical query responses"
    );

    // And the recovered server keeps accepting updates at the next
    // generation.
    apply(&server_c, 5, 6);

    drop(server_c);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_endpoint_is_gated() {
    // Immutable servers refuse the admin endpoint outright.
    let server = start_server(None, false);
    let e = post(&server, "/admin/checkpoint?dataset=karate", "");
    assert_eq!(e.status, 403, "{}", String::from_utf8_lossy(&e.body));
    assert!(String::from_utf8_lossy(&e.body).contains("--mutable"));
    drop(server);

    // Mutable but non-durable: a clear 400 pointing at --data-dir.
    let server = start_server(None, true);
    let e = post(&server, "/admin/checkpoint?dataset=karate", "");
    assert_eq!(e.status, 400, "{}", String::from_utf8_lossy(&e.body));
    assert!(String::from_utf8_lossy(&e.body).contains("--data-dir"));
    // Missing dataset parameter.
    let e = post(&server, "/admin/checkpoint", "");
    assert_eq!(e.status, 400);
    drop(server);

    // Durable and mutable: the happy path, visible in /metrics.
    let dir = temp_dir("gate");
    let server = start_server(Some(&dir), true);
    apply(&server, 0, 1);
    let e = post(&server, "/admin/checkpoint?dataset=karate", "");
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(metrics.contains("\"checkpoints\":1"), "{metrics}");
    assert!(metrics.contains("\"wal_records\":0"), "{metrics}");
    assert!(
        metrics.contains("\"last_checkpoint_generation\":1"),
        "{metrics}"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_sync_interval_mode_still_recovers_acknowledged_batches_on_clean_drop() {
    // Interval mode coalesces fsyncs but still *writes* every record before
    // the ack; a clean process exit (drop flushes OS buffers via File drop +
    // the page cache) must still recover everything. This pins the weaker
    // guarantee the README documents for `--wal-sync interval`.
    let dir = temp_dir("interval");
    {
        let mut registry = GraphRegistry::with_builtins();
        registry.set_store(Store::create(&dir, SyncPolicy::Interval).expect("create store"));
        let engine = Arc::new(QueryEngine::new(registry, &EngineConfig::default()));
        let cfg = ServerConfig {
            mutable: true,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", engine, &cfg).expect("bind");
        apply(&server, 0, 1);
        apply(&server, 1, 2);
    }
    let server = start_server(Some(&dir), true);
    let listing = String::from_utf8(get(&server, "/datasets").body).unwrap();
    assert!(listing.contains("\"generation\":2"), "{listing}");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
