//! Integration tests for the `mpds-cli` binary.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpds-cli"))
}

fn demo_file() -> tempfile::TempPath {
    // The Fig. 1 example with labels 1..4 (A=1, B=2, C=3, D=4).
    let mut f = tempfile::NamedTempFile::new();
    writeln!(f.file, "# fig1 demo").unwrap();
    writeln!(f.file, "1 2 0.4").unwrap();
    writeln!(f.file, "1 3 0.4").unwrap();
    writeln!(f.file, "2 4 0.7").unwrap();
    f.into_path()
}

/// Minimal replacement for the tempfile crate (not a dependency): a real
/// temp file deleted on drop.
mod tempfile {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct NamedTempFile {
        pub file: std::fs::File,
        path: PathBuf,
    }

    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> Self {
            let path = std::env::temp_dir().join(format!(
                "mpds-cli-test-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed),
            ));
            let file = std::fs::File::create(&path).unwrap();
            NamedTempFile { file, path }
        }

        pub fn into_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn stats_command() {
    let path = demo_file();
    let out = cli().args(["stats", path.as_str()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("nodes: 4"));
    assert!(text.contains("edges: 3"));
}

#[test]
fn stats_json_flag() {
    let path = demo_file();
    let out = cli()
        .args(["stats", path.as_str(), "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"nodes\":4"), "{text}");
    assert!(text.contains("\"edges\":3"), "{text}");
}

#[test]
fn mpds_command_finds_bd() {
    let path = demo_file();
    let out = cli()
        .args(["mpds", path.as_str(), "--theta", "3000", "--k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // The MPDS is {B, D} = labels {2, 4}.
    assert!(text.contains("{2, 4}"), "{text}");
}

#[test]
fn mpds_json_flag_is_deterministic() {
    let path = demo_file();
    let run = || {
        let out = cli()
            .args([
                "mpds",
                path.as_str(),
                "--theta",
                "500",
                "--k",
                "2",
                "--seed",
                "7",
                "--json",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        out.stdout
    };
    // `--json` adds a CLI-only `wall_ms` to the stats block; everything
    // else must be byte-identical across runs with the same seed.
    let strip_wall = |bytes: Vec<u8>| {
        let text = String::from_utf8(bytes).unwrap();
        let i = text
            .find("\"wall_ms\":")
            .unwrap_or_else(|| panic!("stats block must carry wall_ms: {text}"));
        let tail = &text[i + "\"wall_ms\":".len()..];
        let digits = tail.find(|c: char| !c.is_ascii_digit()).unwrap();
        assert!(digits > 0, "wall_ms must be a number: {text}");
        format!("{}{}", &text[..i], &tail[digits..])
    };
    let a = strip_wall(run());
    let b = strip_wall(run());
    assert_eq!(a, b, "same seed must give identical JSON modulo wall_ms");
    let text = a;
    assert!(text.contains("\"algo\":\"mpds\""), "{text}");
    assert!(text.contains("\"score\":\"tau_hat\""), "{text}");
    assert!(text.contains("\"stats\":{\"worlds_sampled\":500"), "{text}");
    assert!(text.contains("\"stop_reason\":\"completed\""), "{text}");
    // Results use the file's original labels (2 and 4 are B and D).
    assert!(text.contains("\"nodes\":[2,4]"), "{text}");
}

#[test]
fn stable_stop_ends_early_and_reports_stats() {
    let path = demo_file();
    let out = cli()
        .args([
            "mpds",
            path.as_str(),
            "--theta",
            "3000",
            "--k",
            "1",
            "--seed",
            "7",
            "--stop",
            "stable",
            "--window",
            "64",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // On the tiny fig1 graph the top-1 set stabilizes long before 3000
    // worlds; the body must echo the policy and report the early stop.
    assert!(text.contains("\"stop\":\"stable\",\"window\":64"), "{text}");
    assert!(text.contains("\"stop_reason\":\"stable\""), "{text}");
    assert!(text.contains("\"converged_at\":"), "{text}");

    // Human output carries the same run summary.
    let out = cli()
        .args([
            "mpds",
            path.as_str(),
            "--theta",
            "3000",
            "--k",
            "1",
            "--seed",
            "7",
            "--stop",
            "stable",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stop: stable, converged at world"), "{text}");
}

#[test]
fn nds_command_runs() {
    let path = demo_file();
    let out = cli()
        .args([
            "nds",
            path.as_str(),
            "--theta",
            "1000",
            "--k",
            "2",
            "--lm",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("gamma_hat"));
}

#[test]
fn nds_json_flag() {
    let path = demo_file();
    let out = cli()
        .args(["nds", path.as_str(), "--theta", "200", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"score\":\"gamma_hat\""), "{text}");
    assert!(text.contains("\"lm\":2"), "{text}");
}

#[test]
fn clique_density_flag() {
    let path = demo_file();
    let out = cli()
        .args([
            "mpds",
            path.as_str(),
            "--density",
            "3clique",
            "--theta",
            "50",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // The demo graph has no triangle, so no world has an instance.
    assert!(text.contains("no sampled world"), "{text}");
}

#[test]
fn bad_arguments_fail_gracefully() {
    let out = cli().args(["bogus", "/nonexistent"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));

    let out = cli()
        .args(["mpds", "/nonexistent-file-xyz"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let path = demo_file();
    let out = cli()
        .args(["mpds", path.as_str(), "--density", "tesseract"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_and_duplicate_flags_fail_with_usage() {
    let path = demo_file();
    let out = cli()
        .args(["mpds", path.as_str(), "--bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown option"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    let out = cli()
        .args(["mpds", path.as_str(), "--theta", "5", "--theta", "6"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("duplicate option"), "{err}");
}
