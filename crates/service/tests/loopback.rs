//! End-to-end loopback tests: a real server on an ephemeral port, real HTTP
//! requests from client threads.

use mpds_service::harness::{http_get, http_post, wait_until_healthy, Exchange};
use mpds_service::{EngineConfig, GraphRegistry, QueryEngine, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start_server(engine_cfg: &EngineConfig, server_cfg: &ServerConfig) -> Server {
    let engine = Arc::new(QueryEngine::new(GraphRegistry::with_builtins(), engine_cfg));
    Server::bind("127.0.0.1:0", engine, server_cfg).expect("bind ephemeral port")
}

fn get(server: &Server, path: &str) -> Exchange {
    http_get(server.local_addr(), path, Duration::from_secs(60)).expect("http_get")
}

#[test]
fn health_datasets_and_errors() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    wait_until_healthy(server.local_addr(), Duration::from_secs(5)).unwrap();

    let e = get(&server, "/healthz");
    assert_eq!(e.status, 200);
    assert_eq!(e.body, b"{\"status\":\"ok\"}");

    let e = get(&server, "/datasets");
    assert_eq!(e.status, 200);
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("\"name\":\"karate\""), "{text}");
    assert!(text.contains("\"name\":\"intel-lab\""), "{text}");

    // Forcing stats loads the dataset.
    let e = get(&server, "/dataset?name=karate");
    assert_eq!(e.status, 200);
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("\"nodes\":34"), "{text}");
    assert!(text.contains("\"edges\":78"), "{text}");

    assert_eq!(get(&server, "/nope").status, 404);
    assert_eq!(get(&server, "/dataset?name=ghost").status, 400);
    assert_eq!(get(&server, "/query?dataset=ghost").status, 400);
    assert_eq!(get(&server, "/query?dataset=karate&theta=0").status, 400);
    assert_eq!(get(&server, "/query?dataset=karate&bogus=1").status, 400);
    assert_eq!(
        get(&server, "/query?dataset=karate&theta=1&theta=2").status,
        400
    );
}

#[test]
fn identical_queries_return_identical_bytes_from_concurrent_clients() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let path = "/query?dataset=karate&theta=200&k=3&seed=9";

    let clients = 12;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let e = get(&server, path);
                    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
                    e.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bodies {
        assert_eq!(b, &bodies[0], "all responses must be bytewise identical");
    }
    // Sequential repeat is also identical (served from cache).
    let again = get(&server, path);
    assert_eq!(again.body, bodies[0]);

    // /metrics shows exactly one computation for the whole burst.
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(metrics.contains("\"computed\":1"), "{metrics}");
}

#[test]
fn timeout_parameter_maps_to_504() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let e = get(
        &server,
        "/query?dataset=karate&theta=1000000&seed=123456&timeout_ms=0",
    );
    assert_eq!(e.status, 504, "{}", String::from_utf8_lossy(&e.body));
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("deadline exceeded"), "{text}");
}

#[test]
fn saturated_bounded_queue_answers_503() {
    // 1 worker + queue bound 1: with one slow query computing and one
    // queued, every further concurrent connection must be turned away with
    // 503 at the admission gate.
    let server = start_server(
        &EngineConfig::default(),
        &ServerConfig {
            threads: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    );
    // Distinct seeds (and distinct thetas) so nothing coalesces: each
    // accepted request is a real multi-second-ish computation.
    let flood = 8;
    let server_ref = &server;
    let results: Vec<u16> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..flood)
            .map(|i| {
                s.spawn(move || {
                    let path = format!("/query?dataset=lastfm&theta=40&k=3&seed={}", 500 + i);
                    get(server_ref, &path).status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = results.iter().filter(|&&s| s == 200).count();
    let rejected = results.iter().filter(|&&s| s == 503).count();
    assert_eq!(
        ok + rejected,
        flood,
        "only 200 or 503 expected: {results:?}"
    );
    assert!(ok >= 1, "at least the first request must be served");
    assert!(
        rejected >= 1,
        "a saturated 1-worker/1-slot server must shed load: {results:?}"
    );
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(
        metrics.contains(&format!("\"rejected\":{rejected}")),
        "{metrics}"
    );
}

#[test]
fn harness_runs_clean_against_adequately_provisioned_server() {
    // A miniature version of the CI smoke run: enough queue for the client
    // burst, 4 workers, cold + repeat phases, all invariants checked.
    let server = start_server(
        &EngineConfig {
            cache_capacity: 512,
            cache_shards: 8,
        },
        &ServerConfig {
            threads: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    );
    let cfg = mpds_service::harness::HarnessConfig {
        addr: server.local_addr(),
        clients: 8,
        requests_per_client: 10,
        server_threads: 4,
        dataset: "karate".to_string(),
        theta: 32,
        k: 3,
    };
    let report = mpds_service::harness::run(&cfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.cold.requests, 8 * 5);
    assert_eq!(report.repeat.requests, 8 * 5);
    assert!(report.repeat_cache_hit_rate > 0.9);
    let rendered = mpds_service::harness::render_report(&report);
    assert!(rendered.contains("\"schema\":\"mpds-service/load_harness/v1\""));
}

#[test]
fn batch_bytes_match_sequential_queries_and_fill_the_cache() {
    // Two independent servers: `standalone` answers each member as its own
    // /query (its own full estimator run per member); `batched` answers the
    // same member set as one POST /batch over a shared world stream. The
    // member bodies must agree byte for byte across the two processes'
    // worth of state — the QuerySet determinism contract over real HTTP.
    let standalone = start_server(&EngineConfig::default(), &ServerConfig::default());
    let batched = start_server(&EngineConfig::default(), &ServerConfig::default());
    let member_path = |k: usize| format!("/query?dataset=karate&theta=100&k={k}&seed=31");

    let body = br#"{"dataset":"karate","theta":100,"seed":31,
        "members":[{"k":2},{"k":3},{"k":4}]}"#;
    let e = http_post(
        batched.local_addr(),
        "/batch",
        body,
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let envelope = String::from_utf8(e.body).unwrap();
    assert!(envelope.contains("\"members\":3"), "{envelope}");
    assert!(envelope.contains("\"computed\":3"), "{envelope}");
    assert!(
        envelope.contains("\"sources\":[\"MISS\",\"MISS\",\"MISS\"]"),
        "{envelope}"
    );

    for k in [2, 3, 4] {
        let seq = get(&standalone, &member_path(k));
        assert_eq!(seq.status, 200);
        let seq_body = String::from_utf8(seq.body).unwrap();
        assert!(
            envelope.contains(&seq_body),
            "batch member k={k} bytes differ from the standalone /query bytes:\n\
             standalone: {seq_body}\nenvelope: {envelope}"
        );
        // The batch populated the cache: the point query is a HIT with the
        // same bytes.
        let followup = get(&batched, &member_path(k));
        assert_eq!(followup.status, 200);
        assert_eq!(followup.x_cache.as_deref(), Some("HIT"), "k={k}");
        assert_eq!(String::from_utf8(followup.body).unwrap(), seq_body);
    }

    // One shared stream: the batch sampled theta worlds once, not three
    // times (the standalone server's counter shows the unamortized cost).
    let metrics = String::from_utf8(get(&batched, "/metrics").body).unwrap();
    assert!(metrics.contains("\"worlds_sampled\":100"), "{metrics}");
    assert!(metrics.contains("\"batches\":1"), "{metrics}");
    let metrics = String::from_utf8(get(&standalone, "/metrics").body).unwrap();
    assert!(metrics.contains("\"worlds_sampled\":300"), "{metrics}");

    // Protocol edges: GET /batch is 405, malformed bodies are 400.
    assert_eq!(get(&batched, "/batch").status, 405);
    let e = http_post(
        batched.local_addr(),
        "/batch",
        b"not json",
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(e.status, 400);
}

#[test]
fn diff_endpoint_reports_no_change_against_itself() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let e = get(&server, "/diff?dataset=karate&against=karate&theta=64&k=3");
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("\"dataset\":\"karate\",\"against\":\"karate\""));
    assert!(text.contains("\"unchanged\":true"), "{text}");
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(metrics.contains("\"diffs\":1"), "{metrics}");

    assert_eq!(get(&server, "/diff?dataset=karate").status, 400);
    assert_eq!(
        get(&server, "/diff?dataset=karate&against=ghost").status,
        400
    );
    assert_eq!(
        get(&server, "/diff?dataset=karate&against=karate&threads=2").status,
        400
    );
}

#[test]
fn batch_harness_runs_clean_and_measures_amortization() {
    // Miniature of the CI batch-smoke run: the --check invariants must hold
    // (zero non-2xx, ratio >= 2, follow-up HITs embedded in the envelope).
    let server = start_server(
        &EngineConfig {
            cache_capacity: 512,
            cache_shards: 8,
        },
        &ServerConfig {
            threads: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    );
    let cfg = mpds_service::harness::BatchConfig {
        addr: server.local_addr(),
        members: 6,
        rounds: 2,
        server_threads: 4,
        dataset: "karate".to_string(),
        theta: 64,
    };
    let report = mpds_service::harness::run_batch(&cfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    // Loopback is exact: 6 members standalone = 6 theta, batched = theta.
    assert_eq!(report.standalone_worlds_per_member, 64.0);
    assert!((report.batch_worlds_per_member - 64.0 / 6.0).abs() < 1e-9);
    assert!((report.amortization_ratio - 6.0).abs() < 1e-9);
    assert_eq!(report.followup_hit_rate, 1.0);
    let rendered = mpds_service::harness::render_batch_report(&report);
    assert!(rendered.contains("\"schema\":\"mpds-service/batch_harness/v1\""));
}

#[test]
fn anytime_budget_serves_200_then_refines_to_the_same_cache_key() {
    // The anytime contract over real HTTP: a budget-truncated query answers
    // 200 with a best-so-far body (never 504), and the background refinement
    // tier republishes a converged body under the same URL so a follow-up is
    // a cache HIT without the budget marker.
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let path = "/query?dataset=karate&theta=2000&k=3&seed=41&budget_ms=1";

    let e = get(&server, path);
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("\"stop_reason\":\"budget\""), "{text}");

    // Poll the identical URL (budget_ms is not part of the cache key) until
    // the refinement worker has swapped in the converged body.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let refined = loop {
        let e = get(&server, path);
        assert_eq!(e.status, 200);
        let body = String::from_utf8(e.body).unwrap();
        if e.x_cache.as_deref() == Some("HIT") && !body.contains("\"stop_reason\":\"budget\"") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no refined body within the deadline; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        refined.contains("\"stop_reason\":\"completed\""),
        "{refined}"
    );
    assert!(refined.contains("\"worlds_sampled\":2000"), "{refined}");
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(metrics.contains("\"refined\":1"), "{metrics}");

    // A stable-stop query converges early and says so in its stats block.
    let e = get(
        &server,
        "/query?dataset=karate&theta=3000&k=1&seed=7&stop=stable&window=64",
    );
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let text = String::from_utf8(e.body).unwrap();
    assert!(text.contains("\"stop\":\"stable\",\"window\":64"), "{text}");
    assert!(text.contains("\"stop_reason\":\"stable\""), "{text}");
    assert!(text.contains("\"converged_at\":"), "{text}");
}

#[test]
fn shutdown_cancels_inflight_queries() {
    let mut server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let addr = server.local_addr();
    // Launch a long query, give it a moment to start, then shut down: the
    // cooperative cancel must terminate it promptly with a 503 (not hang).
    let handle = std::thread::spawn(move || {
        http_get(
            addr,
            "/query?dataset=lastfm&theta=100000&seed=77",
            Duration::from_secs(60),
        )
    });
    std::thread::sleep(Duration::from_millis(300));
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "shutdown must not wait for the full 100k-world query"
    );
    // A transport error is also acceptable: the worker may tear the
    // connection down mid-exchange.
    if let Ok(e) = handle.join().unwrap() {
        assert_eq!(e.status, 503, "{}", String::from_utf8_lossy(&e.body));
    }
}
