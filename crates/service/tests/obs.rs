//! End-to-end observability tests: `?profile=1` cache neutrality, `/metrics`
//! content negotiation, refinement-queue drain, and access-log output — all
//! over real loopback HTTP.

use mpds_obs::scrape;
use mpds_service::harness::{http_get, http_get_accept, Exchange};
use mpds_service::{EngineConfig, GraphRegistry, QueryEngine, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start_server(engine_cfg: &EngineConfig, server_cfg: &ServerConfig) -> Server {
    let engine = Arc::new(QueryEngine::new(GraphRegistry::with_builtins(), engine_cfg));
    Server::bind("127.0.0.1:0", engine, server_cfg).expect("bind ephemeral port")
}

fn get(server: &Server, path: &str) -> Exchange {
    http_get(server.local_addr(), path, Duration::from_secs(60)).expect("http_get")
}

const STAGES: [&str; 6] = [
    "snapshot_resolve",
    "cache_probe",
    "world_materialize",
    "estimator_accumulate",
    "stable_tracker",
    "json_render",
];

#[test]
fn profile_block_rides_along_without_perturbing_cached_bytes() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let path = "/query?dataset=karate&theta=100&k=3&seed=17";

    // Cold profiled request: a MISS that computes, caches the *unprofiled*
    // bytes, and splices the stage breakdown into its own response only.
    let profiled = get(&server, &format!("{path}&profile=1"));
    assert_eq!(
        profiled.status,
        200,
        "{}",
        String::from_utf8_lossy(&profiled.body)
    );
    assert_eq!(profiled.x_cache.as_deref(), Some("MISS"));
    let profiled_body = String::from_utf8(profiled.body).unwrap();
    assert!(profiled_body.contains("\"profile\":{"), "{profiled_body}");
    assert!(profiled_body.contains("\"stages\":{"), "{profiled_body}");
    for stage in STAGES {
        assert!(
            profiled_body.contains(&format!("\"{stage}\":{{")),
            "missing stage {stage}: {profiled_body}"
        );
    }
    // The splice must still be valid JSON under the server's own parser.
    mpds_service::json::JsonValue::parse(&profiled_body).expect("profiled body parses");

    // The unprofiled re-issue is a cache HIT with no trace of the profile.
    let plain = get(&server, path);
    assert_eq!(plain.status, 200);
    assert_eq!(plain.x_cache.as_deref(), Some("HIT"));
    let plain_body = String::from_utf8(plain.body).unwrap();
    assert!(!plain_body.contains("profile"), "{plain_body}");
    // Splice contract: profiled bytes are the cached body minus its closing
    // brace, plus the appended profile object.
    assert!(
        profiled_body.starts_with(&plain_body[..plain_body.len() - 1]),
        "profiled body is not a suffix-splice of the cached body:\n\
         profiled: {profiled_body}\nplain: {plain_body}"
    );

    // A profiled re-issue is itself a HIT (profile is not part of the key)
    // and says so in its breakdown.
    let again = get(&server, &format!("{path}&profile=1"));
    assert_eq!(again.x_cache.as_deref(), Some("HIT"));
    let again_body = String::from_utf8(again.body).unwrap();
    assert!(
        again_body.contains("\"profile\":{\"source\":\"HIT\""),
        "{again_body}"
    );

    // Both profiled requests were counted, and their stage timings
    // aggregated into the Prometheus per-stage totals.
    let legacy = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert_eq!(scrape::json_uint(&legacy, "profiled"), Some(2), "{legacy}");
    let prom_text = {
        let e = http_get_accept(
            server.local_addr(),
            "/metrics",
            "text/plain",
            Duration::from_secs(10),
        )
        .unwrap();
        String::from_utf8(e.body).unwrap()
    };
    assert_eq!(
        scrape::prom_value(&prom_text, "mpds_profiled_requests_total", &[]),
        Some(2.0)
    );
    // The MISS ran the estimator: its accumulate stage must show up.
    let accumulate = scrape::prom_value(
        &prom_text,
        "mpds_stage_invocations_total",
        &[("stage", "estimator_accumulate")],
    );
    assert!(accumulate.is_some_and(|v| v >= 1.0), "{prom_text}");
}

#[test]
fn metrics_content_negotiation_selects_prometheus_text() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    // Seed one query so the request-duration family has samples.
    let e = get(&server, "/query?dataset=karate&theta=32&k=3&seed=5");
    assert_eq!(e.status, 200);

    // Default Accept (none at all): the legacy JSON body, byte-compatible
    // with what pre-PR8 scrapers key-scan.
    let legacy = get(&server, "/metrics");
    assert_eq!(legacy.status, 200);
    let legacy_body = String::from_utf8(legacy.body).unwrap();
    assert!(
        legacy_body.starts_with("{\"cache\":{\"hits\":"),
        "{legacy_body}"
    );
    assert!(scrape::json_uint(&legacy_body, "computed").is_some());

    // Accept: text/plain → Prometheus text exposition.
    let prom = http_get_accept(
        server.local_addr(),
        "/metrics",
        "text/plain",
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(prom.status, 200);
    let prom_body = String::from_utf8(prom.body).unwrap();
    assert!(prom_body.starts_with("# HELP "), "{prom_body}");
    assert!(
        prom_body.contains("# TYPE mpds_http_request_duration_microseconds histogram"),
        "{prom_body}"
    );

    // The query that just ran is reconstructible as an exact histogram
    // window: one 2xx /query observation across all 64 buckets.
    let hist = scrape::prom_histogram(
        &prom_body,
        "mpds_http_request_duration_microseconds",
        &[("endpoint", "query"), ("status", "2xx")],
    )
    .expect("query histogram present");
    assert_eq!(hist.count(), 1);
    assert!(hist.sum() > 0);

    // Scalar families mirror the legacy counters exactly.
    assert_eq!(
        scrape::prom_value(&prom_body, "mpds_queries_computed_total", &[]),
        scrape::json_uint(&legacy_body, "computed").map(|v| v as f64)
    );
    // A Prometheus-ish Accept string also negotiates.
    let prom2 = http_get_accept(
        server.local_addr(),
        "/metrics",
        "application/openmetrics-text;version=1.0.0",
        Duration::from_secs(10),
    )
    .unwrap();
    assert!(String::from_utf8(prom2.body)
        .unwrap()
        .starts_with("# HELP "));
}

#[test]
fn refine_queue_reports_depth_and_drains_to_zero() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    // A budget-truncated query enqueues a background refinement job.
    let e = get(
        &server,
        "/query?dataset=karate&theta=2000&k=3&seed=23&budget_ms=1",
    );
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    assert!(String::from_utf8_lossy(&e.body).contains("\"stop_reason\":\"budget\""));

    // Poll the legacy body until the worker finishes: `refined` increments
    // and the queue-depth gauge returns to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let legacy = loop {
        let m = String::from_utf8(get(&server, "/metrics").body).unwrap();
        if scrape::json_uint(&m, "refined") == Some(1)
            && scrape::json_uint(&m, "refine_queue_depth") == Some(0)
        {
            break m;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "refinement did not drain within the deadline; last: {m}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(scrape::json_uint(&legacy, "refine_ok"), Some(1));
    assert_eq!(scrape::json_uint(&legacy, "refine_failed"), Some(0));

    // The Prometheus view agrees: one completed run, one latency
    // observation, drained gauge.
    let prom = http_get_accept(
        server.local_addr(),
        "/metrics",
        "text/plain",
        Duration::from_secs(10),
    )
    .unwrap();
    let text = String::from_utf8(prom.body).unwrap();
    assert_eq!(
        scrape::prom_value(&text, "mpds_refine_runs_total", &[("outcome", "ok")]),
        Some(1.0)
    );
    assert_eq!(
        scrape::prom_value(&text, "mpds_refine_queue_depth", &[]),
        Some(0.0)
    );
    let refine_hist =
        scrape::prom_histogram(&text, "mpds_refine_duration_microseconds", &[]).unwrap();
    assert_eq!(refine_hist.count(), 1);
}

#[test]
fn access_log_records_each_request_as_jsonl() {
    let log_path = std::env::temp_dir().join(format!(
        "mpds-obs-access-{}-{}.jsonl",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let server = start_server(
        &EngineConfig::default(),
        &ServerConfig {
            access_log: Some(log_path.clone()),
            ..ServerConfig::default()
        },
    );

    assert_eq!(get(&server, "/healthz").status, 200);
    let q = get(&server, "/query?dataset=karate&theta=32&k=3&seed=11");
    assert_eq!(q.status, 200);
    assert_eq!(get(&server, "/nope").status, 404);

    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines {
        // Every line is valid JSON under the server's own parser and starts
        // with a monotone request id.
        assert!(line.starts_with("{\"id\":"), "{line}");
        mpds_service::json::JsonValue::parse(line).expect("log line parses");
    }
    assert!(
        lines[0].contains("\"endpoint\":\"healthz\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"method\":\"GET\""), "{}", lines[0]);
    assert!(lines[0].contains("\"status\":200"), "{}", lines[0]);
    assert!(lines[0].contains("\"wall_us\":"), "{}", lines[0]);

    // The query line carries the full provenance: cache source, dataset,
    // generation, stop reason, and worlds sampled.
    assert!(lines[1].contains("\"endpoint\":\"query\""), "{}", lines[1]);
    assert!(lines[1].contains("\"source\":\"MISS\""), "{}", lines[1]);
    assert!(lines[1].contains("\"dataset\":\"karate\""), "{}", lines[1]);
    assert!(lines[1].contains("\"generation\":"), "{}", lines[1]);
    assert!(
        lines[1].contains("\"stop_reason\":\"completed\""),
        "{}",
        lines[1]
    );
    assert!(lines[1].contains("\"worlds_sampled\":32"), "{}", lines[1]);

    assert!(lines[2].contains("\"endpoint\":\"other\""), "{}", lines[2]);
    assert!(lines[2].contains("\"status\":404"), "{}", lines[2]);

    drop(server);
    let _ = std::fs::remove_file(&log_path);
}

/// The store-side stages an `/update` against a durable dataset must record.
const STORE_STAGES: [&str; 2] = ["wal_append", "wal_fsync"];

#[test]
fn every_response_carries_a_trace_id_that_resolves_via_debug_trace() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());

    // A computed query (stable stop, so every engine-side stage fires —
    // the trace record omits zero-count stages): the header trace id
    // resolves to a completed record with the full per-stage breakdown.
    let q = get(
        &server,
        "/query?dataset=karate&theta=200&k=3&seed=31&stop=stable&window=8",
    );
    assert_eq!(q.status, 200);
    let trace = q.trace_id.clone().expect("X-Trace-Id on /query");
    assert_eq!(trace.len(), 16, "{trace}");
    assert!(
        trace
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')),
        "{trace}"
    );

    let t = get(&server, &format!("/debug/trace/{trace}"));
    assert_eq!(t.status, 200, "{}", String::from_utf8_lossy(&t.body));
    let body = String::from_utf8(t.body).unwrap();
    assert!(
        body.contains(&format!("\"trace_id\":\"{trace}\"")),
        "{body}"
    );
    assert!(body.contains("\"state\":\"completed\""), "{body}");
    assert!(body.contains("\"endpoint\":\"query\""), "{body}");
    assert!(body.contains("\"status\":200"), "{body}");
    assert!(body.contains("\"wall_us\":"), "{body}");
    for stage in STAGES {
        assert!(
            body.contains(&format!("\"{stage}\":{{\"count\":")),
            "missing stage {stage}: {body}"
        );
    }
    mpds_service::json::JsonValue::parse(&body).expect("trace body parses");

    // Error responses are traced too.
    let nf = get(&server, "/nope");
    assert_eq!(nf.status, 404);
    assert!(nf.trace_id.is_some());

    // Trace id 0 is never minted, so it is deterministically unknown; a
    // malformed id is a 400. Both failures still mint their own trace ids.
    let missing = get(&server, "/debug/trace/0000000000000000");
    assert_eq!(missing.status, 404);
    assert!(missing.trace_id.is_some());
    let bad = get(&server, "/debug/trace/not-a-trace-id");
    assert_eq!(bad.status, 400);
    assert!(bad.trace_id.is_some());
}

#[test]
fn profile_stages_agree_with_debug_trace() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let e = get(
        &server,
        "/query?dataset=karate&theta=200&k=3&seed=37&stop=stable&window=8&profile=1",
    );
    assert_eq!(e.status, 200);
    let trace = e.trace_id.clone().expect("X-Trace-Id on profiled query");
    let profiled = String::from_utf8(e.body).unwrap();

    let t = get(&server, &format!("/debug/trace/{trace}"));
    assert_eq!(t.status, 200, "{}", String::from_utf8_lossy(&t.body));
    let trace_body = String::from_utf8(t.body).unwrap();

    // Both views of the same request expose the same engine-side stages —
    // the ?profile=1 splice and the flight record come from one recorder.
    for stage in STAGES {
        let key = format!("\"{stage}\":{{\"count\":");
        assert!(
            profiled.contains(&key),
            "profile missing {stage}: {profiled}"
        );
        assert!(
            trace_body.contains(&key),
            "trace missing {stage}: {trace_body}"
        );
    }
}

#[test]
fn zero_threshold_promotes_queries_but_never_debug_self_traffic() {
    let server = start_server(
        &EngineConfig::default(),
        &ServerConfig {
            slow_ms: Some(0),
            ..ServerConfig::default()
        },
    );

    // /debug/requests registers before it routes, so the snapshot it
    // renders always contains its own in-flight trace.
    let dr = get(&server, "/debug/requests");
    assert_eq!(dr.status, 200);
    let own = dr.trace_id.clone().expect("X-Trace-Id on /debug/requests");
    let dr_body = String::from_utf8(dr.body).unwrap();
    assert!(
        dr_body.contains(&format!("\"trace_id\":\"{own}\"")),
        "{dr_body}"
    );
    assert!(dr_body.contains("\"state\":\"in_flight\""), "{dr_body}");

    // One query under the zero threshold: promoted into the slow ring.
    let q = get(&server, "/query?dataset=karate&theta=32&k=3&seed=41");
    assert_eq!(q.status, 200);
    let q_trace = q.trace_id.clone().unwrap();

    let slow = get(&server, "/debug/slow");
    assert_eq!(slow.status, 200);
    let slow_body = String::from_utf8(slow.body).unwrap();
    assert!(
        slow_body.contains(&format!("\"trace_id\":\"{q_trace}\"")),
        "{slow_body}"
    );
    assert!(slow_body.contains("\"slow\":true"), "{slow_body}");
    // Self-observation traffic (/debug/*, /metrics) is never promoted, even
    // at a zero threshold.
    assert!(!slow_body.contains(&own), "{slow_body}");

    // The promotion counter is visible in both /metrics flavors.
    let legacy = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(
        scrape::json_uint(&legacy, "slow_queries").is_some_and(|v| v >= 1),
        "{legacy}"
    );
    let prom = http_get_accept(
        server.local_addr(),
        "/metrics",
        "text/plain",
        Duration::from_secs(10),
    )
    .unwrap();
    let text = String::from_utf8(prom.body).unwrap();
    assert!(
        scrape::prom_value(&text, "mpds_slow_queries_total", &[]).is_some_and(|v| v >= 1.0),
        "{text}"
    );
}

#[test]
fn update_traces_record_wal_and_fsync_stages() {
    let dir = std::env::temp_dir().join(format!(
        "mpds-obs-trace-store-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let mut registry = GraphRegistry::with_builtins();
    registry.set_store(
        mpds_store::Store::create(&dir, mpds_store::SyncPolicy::Commit).expect("create store"),
    );
    let engine = Arc::new(QueryEngine::new(registry, &EngineConfig::default()));
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        &ServerConfig {
            mutable: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");

    let e = mpds_service::harness::http_post(
        server.local_addr(),
        "/update?dataset=karate",
        b"0 1 0.9\n",
        Duration::from_secs(60),
    )
    .expect("http_post");
    assert_eq!(e.status, 200, "{}", String::from_utf8_lossy(&e.body));
    let trace = e.trace_id.clone().expect("X-Trace-Id on /update");

    let t = get(&server, &format!("/debug/trace/{trace}"));
    assert_eq!(t.status, 200, "{}", String::from_utf8_lossy(&t.body));
    let body = String::from_utf8(t.body).unwrap();
    assert!(body.contains("\"endpoint\":\"update\""), "{body}");
    for stage in STORE_STAGES {
        assert!(
            body.contains(&format!("\"{stage}\":{{\"count\":")),
            "missing store stage {stage}: {body}"
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn histogram_exemplars_carry_the_latest_trace_id() {
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let q = get(&server, "/query?dataset=karate&theta=32&k=3&seed=91");
    assert_eq!(q.status, 200);
    let trace = q.trace_id.clone().unwrap();

    let prom = http_get_accept(
        server.local_addr(),
        "/metrics",
        "text/plain",
        Duration::from_secs(10),
    )
    .unwrap();
    let text = String::from_utf8(prom.body).unwrap();
    let exemplars = scrape::prom_exemplars(
        &text,
        "mpds_http_request_duration_microseconds",
        &[("endpoint", "query"), ("status", "2xx")],
    );
    assert_eq!(exemplars.len(), 1, "{text}");
    assert_eq!(
        exemplars[0].1.trace_id(),
        mpds_obs::flight::parse_trace_id(&trace),
        "{text}"
    );
}

#[test]
fn slo_families_expose_targets_and_burn_rates() {
    // Default objectives: query latency p99 < 250 ms at 0.99, plus 0.999
    // availability on /query and /update.
    let server = start_server(&EngineConfig::default(), &ServerConfig::default());
    let q = get(&server, "/query?dataset=karate&theta=16&k=3&seed=51");
    assert_eq!(q.status, 200);

    let prom = http_get_accept(
        server.local_addr(),
        "/metrics",
        "text/plain",
        Duration::from_secs(10),
    )
    .unwrap();
    let text = String::from_utf8(prom.body).unwrap();

    assert_eq!(
        scrape::prom_value(&text, "mpds_slo_target", &[("slo", "query-latency-250ms")]),
        Some(0.99),
        "{text}"
    );
    assert_eq!(
        scrape::prom_value(&text, "mpds_slo_target", &[("slo", "query-availability")]),
        Some(0.999),
        "{text}"
    );
    // The one fast 200 scored good on both query objectives; /update saw no
    // traffic at all.
    for slo in ["query-latency-250ms", "query-availability"] {
        assert_eq!(
            scrape::prom_value(
                &text,
                "mpds_slo_requests_total",
                &[("slo", slo), ("verdict", "good")]
            ),
            Some(1.0),
            "{slo}: {text}"
        );
        assert_eq!(
            scrape::prom_value(
                &text,
                "mpds_slo_requests_total",
                &[("slo", slo), ("verdict", "bad")]
            ),
            Some(0.0),
            "{slo}: {text}"
        );
    }
    assert_eq!(
        scrape::prom_value(
            &text,
            "mpds_slo_requests_total",
            &[("slo", "update-availability"), ("verdict", "good")]
        ),
        Some(0.0),
        "{text}"
    );
    // No bad requests anywhere: every burn rate reads exactly zero.
    for window in ["5m", "1h"] {
        assert_eq!(
            scrape::prom_value(
                &text,
                "mpds_slo_burn_rate",
                &[("slo", "query-availability"), ("window", window)]
            ),
            Some(0.0),
            "{window}: {text}"
        );
    }
}

#[test]
fn flight_harness_mini_run_resolves_an_exemplar() {
    // A miniature of the CI flight-smoke run. The throughput-ratio gate is
    // meaningless at this sample size, so only non-throughput violations
    // count here.
    let cfg = mpds_service::harness::FlightConfig {
        clients: 2,
        queries_per_client: 2,
        server_threads: 2,
        dataset: "karate".to_string(),
        theta: 32,
        k: 3,
    };
    let report = mpds_service::harness::run_flight(&cfg);
    let hard: Vec<&String> = report
        .violations
        .iter()
        .filter(|v| !v.contains("throughput"))
        .collect();
    assert!(hard.is_empty(), "violations: {hard:?}");
    assert!(report.debug_requests_ok);
    assert!(report.debug_slow_len >= 1);
    assert!(report.exemplar_resolved, "{}", report.exemplar_trace);
    assert_eq!(report.enabled.cold.errors + report.enabled.repeat.errors, 0);
    assert_eq!(
        report.disabled.cold.errors + report.disabled.repeat.errors,
        0
    );
    let rendered = mpds_service::harness::render_flight_report(&report);
    assert!(rendered.contains("\"schema\":\"mpds-service/flight_harness/v1\""));
}

#[test]
fn obs_harness_runs_clean_with_server_side_percentiles() {
    // Miniature of the CI obs-smoke run: server-side histogram windows must
    // count exactly the traffic sent and agree with client-side timings.
    let server = start_server(
        &EngineConfig {
            cache_capacity: 512,
            cache_shards: 8,
        },
        &ServerConfig {
            threads: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    );
    let cfg = mpds_service::harness::ObsConfig {
        addr: server.local_addr(),
        clients: 4,
        queries_per_client: 3,
        server_threads: 4,
        dataset: "karate".to_string(),
        theta: 32,
        k: 3,
    };
    let report = mpds_service::harness::run_obs(&cfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.server_cold.requests, 12);
    assert_eq!(report.server_repeat.requests, 12);
    assert!(report.profile_ok);
    assert!(report.server_cold.p50_ms > 0.0);
    let rendered = mpds_service::harness::render_obs_report(&report);
    assert!(rendered.contains("\"schema\":\"mpds-service/obs_harness/v1\""));
}
