//! Dynamic-graph serving tests: live updates over the loopback server and
//! reader/writer consistency under concurrency.

use mpds_service::engine::{QueryRequest, ResponseSource};
use mpds_service::harness::{http_get, http_post, Exchange};
use mpds_service::{EngineConfig, GraphRegistry, QueryEngine, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start_server(mutable: bool) -> Server {
    let engine = Arc::new(QueryEngine::new(
        GraphRegistry::with_builtins(),
        &EngineConfig::default(),
    ));
    let cfg = ServerConfig {
        mutable,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", engine, &cfg).expect("bind ephemeral port")
}

fn get(server: &Server, path: &str) -> Exchange {
    http_get(server.local_addr(), path, Duration::from_secs(60)).expect("http_get")
}

fn post(server: &Server, path: &str, body: &str) -> Exchange {
    http_post(
        server.local_addr(),
        path,
        body.as_bytes(),
        Duration::from_secs(60),
    )
    .expect("http_post")
}

#[test]
fn query_update_query_roundtrip_over_http() {
    let server = start_server(true);
    let path = "/query?dataset=karate&theta=64&k=3&seed=9";

    // Generation 0: compute, then hit.
    let first = get(&server, path);
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(first.x_cache.as_deref(), Some("MISS"));
    let cached = get(&server, path);
    assert_eq!(cached.x_cache.as_deref(), Some("HIT"));
    assert_eq!(cached.body, first.body);

    // Apply a decisive update: a certain 6-clique denser than any karate
    // subgraph in any world.
    let mut batch = String::new();
    for a in 200..206u32 {
        for b in (a + 1)..206 {
            batch.push_str(&format!("{a} {b} 1.0\n"));
        }
    }
    let updated = post(&server, "/update?dataset=karate", &batch);
    assert_eq!(
        updated.status,
        200,
        "{}",
        String::from_utf8_lossy(&updated.body)
    );
    let text = String::from_utf8(updated.body).unwrap();
    assert!(text.contains("\"generation\":1"), "{text}");
    assert!(text.contains("\"inserted\":15"), "{text}");
    assert!(text.contains("\"nodes_added\":6"), "{text}");

    // The identical query must recompute under generation 1 — the stale
    // cache entry is never served after the bump.
    let after = get(&server, path);
    assert_eq!(after.status, 200);
    assert_eq!(
        after.x_cache.as_deref(),
        Some("MISS"),
        "post-update read must not hit the generation-0 cache entry"
    );
    assert_ne!(after.body, first.body, "new generation, new answer");
    let after_text = String::from_utf8(after.body.clone()).unwrap();
    assert!(
        after_text.contains("200,201,202,203,204,205"),
        "the inserted certain clique must dominate: {after_text}"
    );
    // And the new generation is cacheable under its own key.
    let again = get(&server, path);
    assert_eq!(again.x_cache.as_deref(), Some("HIT"));
    assert_eq!(again.body, after.body);

    // Observability: /datasets and /metrics surface the dynamic state.
    let datasets = String::from_utf8(get(&server, "/datasets").body).unwrap();
    assert!(datasets.contains("\"name\":\"karate\""), "{datasets}");
    assert!(datasets.contains("\"generation\":1"), "{datasets}");
    let metrics = String::from_utf8(get(&server, "/metrics").body).unwrap();
    assert!(metrics.contains("\"updates\":1"), "{metrics}");
    assert!(metrics.contains("\"generation\":1"), "{metrics}");
    assert!(metrics.contains("\"overlay\":"), "{metrics}");
    assert!(metrics.contains("\"compactions\":"), "{metrics}");
}

#[test]
fn update_is_gated_and_validated() {
    // Immutable server (the default): /update is forbidden.
    let server = start_server(false);
    let e = post(&server, "/update?dataset=karate", "0 1 0.5\n");
    assert_eq!(e.status, 403, "{}", String::from_utf8_lossy(&e.body));
    assert!(String::from_utf8_lossy(&e.body).contains("--mutable"));
    drop(server);

    let server = start_server(true);
    // GET on /update is a method error, POST elsewhere too.
    assert_eq!(get(&server, "/update?dataset=karate").status, 405);
    assert_eq!(post(&server, "/query?dataset=karate", "").status, 405);
    // Missing dataset parameter, unknown dataset, bad batches.
    assert_eq!(post(&server, "/update", "0 1 0.5\n").status, 400);
    assert_eq!(
        post(&server, "/update?dataset=ghost", "0 1 0.5\n").status,
        400
    );
    let bad = post(&server, "/update?dataset=karate", "0 0 0.5\n");
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("self-loop"));
    let dup = post(&server, "/update?dataset=karate", "0 1 0.5\n1 0 0.6\n");
    assert_eq!(dup.status, 400);
    assert!(String::from_utf8_lossy(&dup.body).contains("line 2"));
    // Rejected batches never bump the generation.
    let ok = post(&server, "/update?dataset=karate", "0 1 0.5\n");
    assert!(String::from_utf8_lossy(&ok.body).contains("\"generation\":1"));
}

/// Sends raw bytes and returns (status, body) — for requests `http_post`
/// cannot produce (malformed headers, truncated heads).
fn raw(server: &Server, bytes: &[u8]) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (status, text)
}

#[test]
fn malformed_and_truncated_requests_are_handled() {
    let server = start_server(true);
    // A malformed Content-Length must be a 400, never silently zero (which
    // would apply an empty batch and claim success).
    let (status, text) = raw(
        &server,
        b"POST /update?dataset=karate HTTP/1.1\r\nContent-Length: 10x\r\n\r\n0 1 0.5\n",
    );
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("Content-Length"), "{text}");
    assert!(
        !String::from_utf8_lossy(&get(&server, "/datasets").body).contains("\"generation\":1"),
        "the malformed update must not have bumped anything"
    );
    // A head that ends at EOF without \r\n\r\n still routes correctly.
    let (status, _) = raw(&server, b"GET /healthz HTTP/1.1\r\nHost: x");
    assert_eq!(status, 200);
    // Empty update bodies are a no-op, not a version bump.
    let ok = post(&server, "/update?dataset=karate", "# nothing\n");
    assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
    assert!(String::from_utf8_lossy(&ok.body).contains("\"generation\":0"));
    // An immutable server still delivers its 403 when the POST has a body
    // (drained, not buffered).
    drop(server);
    let server = start_server(false);
    let e = post(&server, "/update?dataset=karate", &"0 1 0.5\n".repeat(500));
    assert_eq!(e.status, 403);
}

#[test]
fn churn_harness_runs_clean_against_mutable_server() {
    // A miniature of the CI churn-smoke run: update batches interleaved
    // with read bursts, every invariant checked.
    let engine = Arc::new(QueryEngine::new(
        GraphRegistry::with_builtins(),
        &EngineConfig {
            cache_capacity: 512,
            cache_shards: 8,
        },
    ));
    let cfg = ServerConfig {
        threads: 4,
        queue_capacity: 256,
        mutable: true,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", engine, &cfg).expect("bind");
    let ccfg = mpds_service::harness::ChurnConfig {
        addr: server.local_addr(),
        clients: 4,
        update_batches: 3,
        batch_edges: 4,
        reads_per_round: 3,
        server_threads: 4,
        dataset: "karate".to_string(),
        theta: 32,
        k: 3,
    };
    let report = mpds_service::harness::run_churn(&ccfg);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report.violations
    );
    assert!(report.generations_monotone);
    assert_eq!(report.first_generation, 1);
    assert_eq!(report.last_generation, 3);
    assert_eq!(report.update_errors, 0);
    assert_eq!(report.reads.errors, 0);
    assert!(
        (report.post_update_hit_recovery - 1.0).abs() < 1e-9,
        "every round must MISS then HIT: {}",
        report.post_update_hit_recovery
    );
    let rendered = mpds_service::harness::render_churn_report(&report);
    assert!(rendered.contains("\"schema\":\"mpds-service/churn_harness/v1\""));
}

/// The probability the writer assigns edge (0, 1) at generation `g` — the
/// readers' consistency oracle: a snapshot claiming generation `g` must
/// carry exactly this probability, anything else is a torn read.
fn prob_at(generation: u64) -> f64 {
    (generation % 9 + 1) as f64 / 10.0
}

#[test]
fn readers_see_consistent_monotone_snapshots_while_writer_updates() {
    let registry = GraphRegistry::with_builtins();
    let registry = &registry;
    let rounds = 40u64;
    let readers = 6;
    let base_prob = registry.get("karate").unwrap().graph.edge_prob(0, 1);

    std::thread::scope(|s| {
        // One writer: each batch re-weights (0, 1) to prob_at(g) where g is
        // the generation the batch produces, plus churn on a side edge.
        s.spawn(move || {
            for i in 0..rounds {
                let g = i + 1;
                let side = if i % 2 == 0 {
                    "900 901 0.5\n"
                } else {
                    "900 901 -\n"
                };
                let batch = format!("0 1 {}\n{side}", prob_at(g));
                let out = registry
                    .apply_update("karate", batch.as_bytes())
                    .expect("writer batch");
                assert_eq!(out.generation, g, "writer generations are sequential");
            }
        });
        // N readers: snapshots must be internally consistent (the edge
        // probability matches the generation stamp) and generations must be
        // monotone per reader.
        for _ in 0..readers {
            s.spawn(move || {
                let mut last_gen = 0u64;
                let mut observed_new = 0usize;
                while observed_new < 200 && last_gen < rounds {
                    let snap = registry.get("karate").unwrap();
                    assert!(
                        snap.generation >= last_gen,
                        "generation went backwards: {} < {last_gen}",
                        snap.generation
                    );
                    last_gen = snap.generation;
                    let p = snap.graph.edge_prob(0, 1);
                    if snap.generation == 0 {
                        assert_eq!(p, base_prob, "generation 0 must be the base");
                    } else {
                        assert_eq!(
                            p,
                            Some(prob_at(snap.generation)),
                            "torn read: generation {} with wrong probability",
                            snap.generation
                        );
                    }
                    observed_new += 1;
                }
            });
        }
    });
}

#[test]
fn inflight_query_keyed_to_old_generation_completes_after_update() {
    let engine = Arc::new(QueryEngine::new(
        GraphRegistry::with_builtins(),
        &EngineConfig::default(),
    ));
    let mut req = QueryRequest::new("karate");
    req.theta = 500; // slow enough in a debug build to overlap the update
    req.k = 3;

    let (leader, follower) = std::thread::scope(|s| {
        let leader = s.spawn(|| engine.execute(&req).unwrap());
        // Let the leader register as in-flight, then join it and update.
        std::thread::sleep(Duration::from_millis(200));
        let follower = s.spawn(|| engine.execute(&req).unwrap());
        std::thread::sleep(Duration::from_millis(100));
        engine
            .apply_update("karate", "0 1 0.9\n".as_bytes())
            .unwrap();
        (leader.join().unwrap(), follower.join().unwrap())
    });
    // Both the generation-0 leader and its coalesced follower completed
    // despite the mid-flight generation bump, with identical bytes.
    assert_eq!(leader.1, ResponseSource::Miss);
    assert_eq!(leader.0, follower.0);
    // A fresh request now computes against generation 1 — different key.
    let (gen1, src) = engine.execute(&req).unwrap();
    assert_eq!(src, ResponseSource::Miss);
    assert!(!Arc::ptr_eq(&gen1, &leader.0));
}
