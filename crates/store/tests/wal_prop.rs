//! Property tests for WAL framing and torn-tail recovery.
//!
//! Two invariants back the durability story:
//!
//! 1. encode → decode is the identity for any record;
//! 2. arbitrary tail corruption (truncation or a byte flip at a random
//!    offset) never yields anything *other* than a valid prefix of the
//!    original records — and replaying that prefix lands an in-memory
//!    oracle [`DeltaGraph`] on exactly the state the intact records built.

use mpds_store::{
    decode_record, encode_record, replay_wal, DecodeStep, SyncPolicy, Wal, WalRecord,
};
use proptest::prelude::*;
use ugraph::dynamic::DeltaGraph;
use ugraph::io::apply_edge_list_delta;
use ugraph::UncertainGraph;

/// The shared seed graph: identity labels over five nodes.
fn seed() -> (DeltaGraph, Vec<u32>) {
    let base = UncertainGraph::from_weighted_edges(5, &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]);
    (DeltaGraph::from_graph(base), (0..5).collect())
}

/// Turns one round of raw fuzz triples into a batch that is valid against
/// the oracle's current state: self-loops and duplicate keys are dropped,
/// deletes of absent edges become upserts. Returns `None` for an empty
/// batch (which the service never logs — no generation bump).
fn valid_batch(oracle: &DeltaGraph, labels: &[u32], raw: &[(u32, u32, u32)]) -> Option<String> {
    let mut seen = std::collections::HashSet::new();
    let mut body = String::new();
    for &(u, v, action) in raw {
        if u == v || !seen.insert(if u < v { (u, v) } else { (v, u) }) {
            continue;
        }
        let id_of = |label: u32| labels.iter().position(|&l| l == label);
        let present = match (id_of(u), id_of(v)) {
            (Some(a), Some(b)) => oracle.has_edge(a as u32, b as u32),
            _ => false,
        };
        if action == 0 && present {
            body.push_str(&format!("{u} {v} -\n"));
        } else {
            let p = f64::from(action % 10 + 1) / 10.0;
            body.push_str(&format!("{u} {v} {p}\n"));
        }
    }
    if body.is_empty() {
        None
    } else {
        Some(body)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Invariant 1: framing round-trips any generation/payload pair, and
    // decode consumes exactly the frame it was given.
    #[test]
    fn encode_decode_roundtrip(
        generation in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = encode_record(generation, &payload);
        match decode_record(&frame) {
            DecodeStep::Record(rec, consumed) => {
                prop_assert_eq!(consumed, frame.len());
                prop_assert_eq!(rec.generation, generation);
                prop_assert_eq!(rec.payload, payload);
            }
            other => return Err(format!("decode failed: {other:?}")),
        }
        // Any strict prefix of a lone frame is an incomplete tail.
        prop_assert_eq!(decode_record(&frame[..frame.len() - 1]), DecodeStep::Incomplete);
    }

    // Invariant 2: corrupt the log anywhere, reopen, and what survives is a
    // valid prefix whose replay matches the oracle.
    #[test]
    fn torn_tail_recovers_longest_valid_prefix(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u32..12, 0u32..12, 0u32..20), 1..6),
            1..8,
        ),
        corrupt_at in 0.0f64..1.0,
        flip in proptest::bool::ANY,
        case_tag in 0u64..u64::MAX,
    ) {
        // Build the log the way the service does: apply to the live oracle
        // first, then append the accepted batch.
        let (mut oracle, mut labels) = seed();
        let mut log = Vec::new();
        let mut records: Vec<WalRecord> = Vec::new();
        for raw in &rounds {
            let Some(body) = valid_batch(&oracle, &labels, raw) else { continue };
            let done = apply_edge_list_delta(&mut oracle, &mut labels, body.as_bytes())
                .map_err(|e| format!("oracle rejected a valid batch: {e}"))?;
            log.extend_from_slice(&encode_record(done.generation, body.as_bytes()));
            records.push(WalRecord { generation: done.generation, payload: body.into_bytes() });
        }
        prop_assume!(!log.is_empty());

        // Corrupt at a random offset: truncate there, or flip one byte.
        let at = ((corrupt_at * log.len() as f64) as usize).min(log.len() - 1);
        let mut damaged = log.clone();
        if flip {
            damaged[at] ^= 0x01;
        } else {
            damaged.truncate(at);
        }
        // Frames entirely before the damage are untouched and must survive.
        let mut intact = 0usize;
        let mut end = 0usize;
        for rec in &records {
            end += 16 + rec.payload.len();
            if end <= at {
                intact += 1;
            } else {
                break;
            }
        }

        // Recovery through the real file path: Wal::open truncates the tail.
        let path = std::env::temp_dir().join(format!(
            "mpds-store-prop-{}-{case_tag}.log",
            std::process::id()
        ));
        std::fs::write(&path, &damaged).map_err(|e| e.to_string())?;
        let opened = Wal::open(&path, SyncPolicy::Commit).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_file(&path);

        prop_assert!(opened.records.len() >= intact,
            "lost an intact record: {} recovered, {} intact", opened.records.len(), intact);
        prop_assert!(opened.records.len() <= records.len());
        for (got, want) in opened.records.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }

        // Replaying the recovered prefix matches an oracle that applied the
        // same prefix directly.
        let (mut recovered, mut rec_labels) = seed();
        let (replayed, skipped) = replay_wal(&mut recovered, &mut rec_labels, &opened.records)
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(replayed, opened.records.len() as u64);
        let (mut twin, mut twin_labels) = seed();
        for rec in &opened.records {
            apply_edge_list_delta(&mut twin, &mut twin_labels, rec.payload.as_slice())
                .map_err(|e| e.to_string())?;
        }
        prop_assert_eq!(recovered.generation(), twin.generation());
        prop_assert_eq!(&rec_labels, &twin_labels);
        for u in 0..recovered.num_nodes() as u32 {
            for v in (u + 1)..recovered.num_nodes() as u32 {
                prop_assert_eq!(recovered.edge_prob(u, v), twin.edge_prob(u, v));
            }
        }
    }
}
