//! Per-dataset durable state: a directory holding one WAL plus rotated
//! snapshot checkpoints, and the recovery logic that stitches them back
//! into a live graph on boot.
//!
//! ## Directory layout
//!
//! ```text
//! <data-dir>/<dataset>/wal.log                  append-only mutation log
//! <data-dir>/<dataset>/checkpoint-<gen>.ckpt    binary snapshots (newest 2 kept)
//! ```
//!
//! Dataset names are sanitized for the filesystem: characters outside
//! `[A-Za-z0-9._-]` are percent-encoded, so registry names map to
//! directories injectively.
//!
//! ## Recovery
//!
//! [`DatasetStore::open`] picks the **highest-generation checkpoint that
//! passes CRC validation** (a partially-written or bit-rotted newest file
//! is skipped, falling back to the previous one), then hands back the WAL
//! records so the caller can replay the tail with [`replay_wal`]. Because
//! checkpoint rotation only drops WAL records the *oldest retained*
//! checkpoint covers, the fallback checkpoint always has every record it
//! needs to reach the head.

use mpds_obs::{Recorder, Stage};
use std::path::{Path, PathBuf};
use ugraph::dynamic::DeltaGraph;
use ugraph::io::{apply_edge_list_delta, read_graph_checkpoint, write_graph_checkpoint};
use ugraph::UncertainGraph;

use crate::wal::{Wal, WalRecord};
use crate::{StoreError, SyncPolicy};

/// How many checkpoint files rotation retains. Two, so one corrupt or torn
/// newest checkpoint still leaves a valid base plus a complete WAL tail.
pub const CHECKPOINTS_KEPT: usize = 2;

/// Maps a dataset name to its directory name: `[A-Za-z0-9._-]` pass
/// through, everything else is percent-encoded byte-wise.
///
/// ```
/// use mpds_store::sanitize_dataset_dir;
/// assert_eq!(sanitize_dataset_dir("intel-lab"), "intel-lab");
/// assert_eq!(sanitize_dataset_dir("a/b c"), "a%2Fb%20c");
/// ```
pub fn sanitize_dataset_dir(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// A checkpoint recovered from disk: the materialized graph, its labels,
/// and the generation it was taken at.
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// The materialized graph.
    pub graph: UncertainGraph,
    /// Original label of every compact node id.
    pub labels: Vec<u32>,
    /// Generation the checkpoint was taken at.
    pub generation: u64,
}

/// What [`DatasetStore::open`] found on disk for one dataset.
#[derive(Debug)]
pub struct DatasetOpen {
    /// The store, ready for appends and checkpoints.
    pub store: DatasetStore,
    /// Newest valid checkpoint, if any.
    pub checkpoint: Option<RecoveredCheckpoint>,
    /// Every valid WAL record, in append order, for [`replay_wal`].
    pub wal_records: Vec<WalRecord>,
    /// Torn-tail WAL bytes dropped on open.
    pub truncated_bytes: u64,
    /// Checkpoint files skipped because they failed validation.
    pub checkpoints_discarded: u64,
}

/// Counters describing one boot-time recovery, surfaced through
/// `/datasets` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records replayed on top of the recovered checkpoint.
    pub replayed_records: u64,
    /// WAL records skipped because the checkpoint already covered them.
    pub skipped_records: u64,
    /// Torn-tail WAL bytes truncated on open.
    pub truncated_bytes: u64,
    /// Checkpoint files discarded as corrupt or partially written.
    pub checkpoints_discarded: u64,
    /// Wall-clock milliseconds the recovery took (open + replay).
    pub recovery_ms: u64,
}

/// The durable half of one live dataset: its WAL handle plus checkpoint
/// bookkeeping. All methods take `&mut self`; the service serializes them
/// under the same writer lock that orders mutations.
#[derive(Debug)]
pub struct DatasetStore {
    dir: PathBuf,
    wal: Wal,
    last_checkpoint_generation: Option<u64>,
}

/// Lists `(generation, path)` of every checkpoint file in `dir`, sorted by
/// generation ascending. Files whose names don't parse are ignored.
fn checkpoint_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(middle) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
        else {
            continue;
        };
        if let Ok(generation) = middle.parse::<u64>() {
            found.push((generation, entry.path()));
        }
    }
    found.sort_unstable_by_key(|&(g, _)| g);
    Ok(found)
}

impl DatasetStore {
    /// Opens (creating directories as needed) the durable state of
    /// `dataset` under `data_dir`: validates checkpoints newest-first,
    /// opens the WAL (truncating any torn tail), and returns everything a
    /// caller needs to rebuild the live graph.
    pub fn open(
        data_dir: &Path,
        dataset: &str,
        sync: SyncPolicy,
    ) -> Result<DatasetOpen, StoreError> {
        let dir = data_dir.join(sanitize_dataset_dir(dataset));
        std::fs::create_dir_all(&dir)?;
        let mut checkpoints_discarded = 0u64;
        let mut checkpoint = None;
        let mut files = checkpoint_files(&dir)?;
        while let Some((generation, path)) = files.pop() {
            match std::fs::File::open(&path)
                .map_err(StoreError::Io)
                .and_then(|f| {
                    read_graph_checkpoint(std::io::BufReader::new(f))
                        .map_err(|e| StoreError::Replay(e.to_string()))
                }) {
                Ok((graph, labels, stored_gen)) => {
                    // The name is advisory; the stamped generation is truth.
                    let _ = generation;
                    checkpoint = Some(RecoveredCheckpoint {
                        graph,
                        labels,
                        generation: stored_gen,
                    });
                    break;
                }
                Err(_) => checkpoints_discarded += 1,
            }
        }
        let open = Wal::open(&dir.join("wal.log"), sync)?;
        Ok(DatasetOpen {
            store: DatasetStore {
                dir,
                wal: open.wal,
                last_checkpoint_generation: checkpoint.as_ref().map(|c| c.generation),
            },
            checkpoint,
            wal_records: open.records,
            truncated_bytes: open.truncated_bytes,
            checkpoints_discarded,
        })
    }

    /// Appends one accepted mutation batch to the WAL and makes it durable
    /// per the sync policy. Must be called **before** the new snapshot is
    /// published (log-before-swap): a crash right after this call replays
    /// to exactly the state the client was about to be acked.
    pub fn log_batch(&mut self, generation: u64, payload: &[u8]) -> std::io::Result<()> {
        self.wal.append(generation, payload)
    }

    /// [`DatasetStore::log_batch`] with per-stage tracing (see
    /// [`Wal::append_traced`]).
    pub fn log_batch_traced(
        &mut self,
        generation: u64,
        payload: &[u8],
        rec: Option<&Recorder>,
    ) -> std::io::Result<()> {
        self.wal.append_traced(generation, payload, rec)
    }

    /// Writes a checkpoint of the materialized graph at `generation`,
    /// atomically (temp file + rename), then rotates: the newest
    /// [`CHECKPOINTS_KEPT`] files stay, older ones are deleted, and the WAL
    /// drops every record the oldest retained checkpoint already covers.
    pub fn checkpoint(
        &mut self,
        graph: &UncertainGraph,
        labels: &[u32],
        generation: u64,
    ) -> std::io::Result<()> {
        self.checkpoint_traced(graph, labels, generation, None)
    }

    /// [`DatasetStore::checkpoint`] with per-stage tracing: the whole
    /// snapshot-write + rotation is timed as [`Stage::StoreCheckpoint`] and
    /// the leading forced WAL flush as [`Stage::WalFsync`].
    pub fn checkpoint_traced(
        &mut self,
        graph: &UncertainGraph,
        labels: &[u32],
        generation: u64,
        rec: Option<&Recorder>,
    ) -> std::io::Result<()> {
        let _span = rec.map(|r| r.span(Stage::StoreCheckpoint));
        {
            let _sync_span = rec.map(|r| r.span(Stage::WalFsync));
            self.wal.sync()?;
        }
        let final_path = self.dir.join(format!("checkpoint-{generation:020}.ckpt"));
        let tmp_path = self.dir.join("checkpoint.tmp");
        {
            let file = std::fs::File::create(&tmp_path)?;
            let mut w = std::io::BufWriter::new(file);
            write_graph_checkpoint(&mut w, graph, labels, generation)?;
            use std::io::Write;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        self.last_checkpoint_generation = Some(generation);
        let mut files = checkpoint_files(&self.dir)?;
        while files.len() > CHECKPOINTS_KEPT {
            let (_, path) = files.remove(0);
            let _ = std::fs::remove_file(path);
        }
        let floor = files.first().map(|&(g, _)| g).unwrap_or(0);
        self.wal.retain_after(floor)
    }

    /// Generation of the newest checkpoint on disk, if any.
    pub fn last_checkpoint_generation(&self) -> Option<u64> {
        self.last_checkpoint_generation
    }

    /// Records currently in the WAL.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Bytes currently in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }
}

/// Replays WAL records onto a live graph: records at or below the graph's
/// current generation are skipped (the checkpoint already covers them),
/// newer ones are applied through the same batch path mutations originally
/// took. Returns `(replayed, skipped)` counts.
///
/// Replay asserts generation continuity: each applied record must land the
/// graph exactly on the record's stamped generation, so a gap or reorder in
/// the log is an error, never a silent divergence.
pub fn replay_wal(
    delta: &mut DeltaGraph,
    labels: &mut Vec<u32>,
    records: &[WalRecord],
) -> Result<(u64, u64), StoreError> {
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    for rec in records {
        if rec.generation <= delta.generation() {
            skipped += 1;
            continue;
        }
        let done = apply_edge_list_delta(delta, labels, rec.payload.as_slice()).map_err(|e| {
            StoreError::Replay(format!("record at generation {}: {e}", rec.generation))
        })?;
        if done.generation != rec.generation {
            return Err(StoreError::Replay(format!(
                "generation diverged during replay: record says {}, graph reached {}",
                rec.generation, done.generation
            )));
        }
        replayed += 1;
    }
    Ok((replayed, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpds-store-ds-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_graph() -> (DeltaGraph, Vec<u32>) {
        let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
        (DeltaGraph::from_graph(base), vec![10, 20, 30])
    }

    /// Applies `batch` to the live graph and logs it, the service's
    /// log-before-swap order in miniature.
    fn apply_and_log(
        store: &mut DatasetStore,
        delta: &mut DeltaGraph,
        labels: &mut Vec<u32>,
        batch: &str,
    ) {
        let done = apply_edge_list_delta(delta, labels, batch.as_bytes()).unwrap();
        store.log_batch(done.generation, batch.as_bytes()).unwrap();
    }

    #[test]
    fn recovery_replays_to_pre_crash_state() {
        let data_dir = tmp_dir("recover");
        let (mut delta, mut labels) = seed_graph();
        {
            let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
            assert!(open.checkpoint.is_none());
            let mut store = open.store;
            apply_and_log(&mut store, &mut delta, &mut labels, "10 20 0.9\n");
            apply_and_log(&mut store, &mut delta, &mut labels, "30 40 0.8\n10 20 -\n");
            // Crash: store dropped without a checkpoint.
        }
        let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        let (mut twin, mut twin_labels) = seed_graph();
        let (replayed, skipped) =
            replay_wal(&mut twin, &mut twin_labels, &open.wal_records).unwrap();
        assert_eq!((replayed, skipped), (2, 0));
        assert_eq!(twin.generation(), delta.generation());
        assert_eq!(twin_labels, labels);
        assert_eq!(twin.edge_prob(0, 1), None);
        assert_eq!(twin.edge_prob(2, 3), Some(0.8));
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn checkpoint_rotation_and_wal_truncation() {
        let data_dir = tmp_dir("rotate");
        let (mut delta, mut labels) = seed_graph();
        let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        let mut store = open.store;
        for g in 1..=3u64 {
            apply_and_log(
                &mut store,
                &mut delta,
                &mut labels,
                &format!("10 20 0.{g}\n"),
            );
            let snap = delta.snapshot();
            store
                .checkpoint(snap.graph(), &labels, delta.generation())
                .unwrap();
            let _ = g;
        }
        // Three checkpoints taken, two kept.
        let dir = data_dir.join("demo");
        let kept = checkpoint_files(&dir).unwrap();
        assert_eq!(kept.len(), CHECKPOINTS_KEPT);
        assert_eq!(kept.iter().map(|&(g, _)| g).collect::<Vec<_>>(), vec![2, 3]);
        // The WAL only holds records the oldest kept checkpoint doesn't cover.
        let reopened = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        let gens: Vec<u64> = reopened.wal_records.iter().map(|r| r.generation).collect();
        assert_eq!(gens, vec![3]);
        assert_eq!(reopened.checkpoint.unwrap().generation, 3);
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let data_dir = tmp_dir("fallback");
        let (mut delta, mut labels) = seed_graph();
        let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        let mut store = open.store;
        apply_and_log(&mut store, &mut delta, &mut labels, "10 30 0.7\n");
        let snap = delta.snapshot();
        store
            .checkpoint(snap.graph(), &labels, delta.generation())
            .unwrap();
        apply_and_log(&mut store, &mut delta, &mut labels, "20 30 -\n");
        let snap = delta.snapshot();
        store
            .checkpoint(snap.graph(), &labels, delta.generation())
            .unwrap();
        drop(store);
        // Bit-rot the newest checkpoint.
        let dir = data_dir.join("demo");
        let newest = checkpoint_files(&dir).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        assert_eq!(open.checkpoints_discarded, 1);
        let ckpt = open.checkpoint.unwrap();
        assert_eq!(ckpt.generation, 1);
        // Replay from the fallback still reaches the pre-crash head.
        let mut recovered = DeltaGraph::from_graph(ckpt.graph).with_generation(ckpt.generation);
        let mut recovered_labels = ckpt.labels;
        replay_wal(&mut recovered, &mut recovered_labels, &open.wal_records).unwrap();
        assert_eq!(recovered.generation(), 2);
        assert_eq!(recovered.edge_prob(1, 2), None);
        assert_eq!(recovered.edge_prob(0, 2), Some(0.7));
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn traced_checkpoint_times_store_stages() {
        let data_dir = tmp_dir("traced-ckpt");
        let (mut delta, mut labels) = seed_graph();
        let open = DatasetStore::open(&data_dir, "demo", SyncPolicy::Commit).unwrap();
        let mut store = open.store;
        let rec = Recorder::new(true);
        let done =
            apply_edge_list_delta(&mut delta, &mut labels, b"10 20 0.9\n".as_slice()).unwrap();
        store
            .log_batch_traced(done.generation, b"10 20 0.9\n", Some(&rec))
            .unwrap();
        let snap = delta.snapshot();
        store
            .checkpoint_traced(snap.graph(), &labels, delta.generation(), Some(&rec))
            .unwrap();
        let t = rec.totals();
        assert_eq!(t.count(Stage::WalAppend), 1);
        assert_eq!(t.count(Stage::StoreCheckpoint), 1);
        // Commit-policy append fsync plus the checkpoint's forced flush.
        assert_eq!(t.count(Stage::WalFsync), 2);
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn replay_rejects_generation_gaps() {
        let (mut delta, mut labels) = seed_graph();
        let records = vec![WalRecord {
            generation: 5, // graph is at 0: applying yields 1, not 5
            payload: b"10 20 0.9\n".to_vec(),
        }];
        let err = replay_wal(&mut delta, &mut labels, &records).unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
    }
}
