//! The write-ahead log: one append-only file per dataset, one framed
//! record per accepted mutation batch.
//!
//! ## Record framing
//!
//! ```text
//! [payload len: u32 LE][generation: u64 LE][crc: u32 LE][payload bytes]
//! ```
//!
//! The CRC is [`ugraph::io::crc32`] over the generation bytes plus the
//! payload, so a flipped bit anywhere in a record (or a torn write that
//! left a partial frame) fails validation. The payload is the textual
//! `u v p` / `u v -` mutation grammar from [`ugraph::io`] — `strings` or
//! `grep` on a WAL file shows exactly what was applied.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a partial record at the end of the file.
//! [`Wal::open`] scans every frame from the start and truncates the file at
//! the last valid record boundary; everything before that point is the
//! longest valid prefix and is returned for replay.

use mpds_obs::{Recorder, Stage};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;
use ugraph::io::crc32;

use crate::SyncPolicy;

/// Frame header size: payload length (4) + generation (8) + CRC (4).
pub const RECORD_HEADER_BYTES: usize = 16;

/// One decoded WAL record: the generation the batch produced and the
/// textual mutation payload that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Generation of the dataset *after* this batch was applied.
    pub generation: u64,
    /// The batch body in the `u v p` / `u v -` grammar.
    pub payload: Vec<u8>,
}

/// Encodes one record into its framed byte representation.
///
/// ```
/// use mpds_store::{decode_record, encode_record, DecodeStep};
/// let frame = encode_record(3, b"1 2 0.5\n");
/// match decode_record(&frame) {
///     DecodeStep::Record(rec, consumed) => {
///         assert_eq!(consumed, frame.len());
///         assert_eq!(rec.generation, 3);
///         assert_eq!(rec.payload, b"1 2 0.5\n");
///     }
///     _ => panic!("roundtrip failed"),
/// }
/// ```
pub fn encode_record(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&generation.to_le_bytes());
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&generation.to_le_bytes());
    crc_input.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Outcome of decoding the frame at the front of a byte slice.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeStep {
    /// A valid record and the number of bytes it consumed.
    Record(WalRecord, usize),
    /// The slice ends before the frame does (torn tail).
    Incomplete,
    /// The frame is complete but its CRC does not match (corrupt tail).
    Corrupt,
}

/// Decodes the frame at the front of `buf`. `Incomplete` and `Corrupt`
/// both mean "the valid prefix ends here" to a scanner.
pub fn decode_record(buf: &[u8]) -> DecodeStep {
    if buf.len() < RECORD_HEADER_BYTES {
        return DecodeStep::Incomplete;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let generation = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    let Some(payload) = buf.get(RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len) else {
        return DecodeStep::Incomplete;
    };
    let mut crc_input = Vec::with_capacity(8 + len);
    crc_input.extend_from_slice(&buf[4..12]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != stored_crc {
        return DecodeStep::Corrupt;
    }
    DecodeStep::Record(
        WalRecord {
            generation,
            payload: payload.to_vec(),
        },
        RECORD_HEADER_BYTES + len,
    )
}

/// Scans a full WAL image: returns every valid record plus the byte length
/// of the valid prefix. Scanning stops at the first incomplete or
/// CRC-failing frame — the torn tail a crash mid-append leaves behind.
pub fn scan_records(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0;
    while offset < data.len() {
        match decode_record(&data[offset..]) {
            DecodeStep::Record(rec, consumed) => {
                records.push(rec);
                offset += consumed;
            }
            DecodeStep::Incomplete | DecodeStep::Corrupt => break,
        }
    }
    (records, offset)
}

/// An open per-dataset write-ahead log positioned at its end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: SyncPolicy,
    records: u64,
    bytes: u64,
    last_sync: Instant,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, ready for appends.
    pub wal: Wal,
    /// Every valid record, in append order, for replay.
    pub records: Vec<WalRecord>,
    /// Torn-tail bytes dropped by truncation (0 for a clean log).
    pub truncated_bytes: u64,
}

/// How long `interval` sync mode may leave appended records unsynced.
const INTERVAL_SYNC: std::time::Duration = std::time::Duration::from_secs(1);

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans it, truncates
    /// any torn tail, and returns the valid records for replay.
    pub fn open(path: &Path, sync: SyncPolicy) -> std::io::Result<WalOpen> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing contents are the durable history; never truncate on
            // open (torn tails are cut back explicitly after the CRC scan).
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let (records, valid_len) = scan_records(&data);
        let truncated_bytes = (data.len() - valid_len) as u64;
        if truncated_bytes > 0 {
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        // Position at the end for appends (set_len does not move the cursor).
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(valid_len as u64))?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                sync,
                records: records.len() as u64,
                bytes: valid_len as u64,
                last_sync: Instant::now(),
            },
            records,
            truncated_bytes,
        })
    }

    /// Appends one framed record and makes it durable per the sync policy:
    /// `commit` fsyncs before returning, `interval` coalesces fsyncs to at
    /// most one per second. Only after this returns may the caller ack the
    /// batch to a client.
    pub fn append(&mut self, generation: u64, payload: &[u8]) -> std::io::Result<()> {
        self.append_traced(generation, payload, None)
    }

    /// [`Wal::append`] with per-stage tracing: the frame write is timed as
    /// [`Stage::WalAppend`] and any fsync the policy takes as
    /// [`Stage::WalFsync`], so a traced `/update` shows where its durable
    /// half spent its time.
    pub fn append_traced(
        &mut self,
        generation: u64,
        payload: &[u8],
        rec: Option<&Recorder>,
    ) -> std::io::Result<()> {
        let frame = encode_record(generation, payload);
        {
            let _span = rec.map(|r| r.span(Stage::WalAppend));
            self.file.write_all(&frame)?;
        }
        match self.sync {
            SyncPolicy::Commit => {
                let _span = rec.map(|r| r.span(Stage::WalFsync));
                self.file.sync_data()?;
                self.last_sync = Instant::now();
            }
            SyncPolicy::Interval => {
                if self.last_sync.elapsed() >= INTERVAL_SYNC {
                    let _span = rec.map(|r| r.span(Stage::WalFsync));
                    self.file.sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
        }
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Rewrites the log keeping only records with `generation > floor`,
    /// atomically (temp file + rename). Called after a checkpoint: records
    /// the oldest retained checkpoint already covers are dropped, records
    /// newer than it stay so a corrupt newest checkpoint still recovers.
    pub fn retain_after(&mut self, floor: u64) -> std::io::Result<()> {
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        let mut data = Vec::new();
        self.file.read_to_end(&mut data)?;
        let (records, _) = scan_records(&data);
        let mut kept = Vec::new();
        let mut kept_count = 0u64;
        for rec in records.iter().filter(|r| r.generation > floor) {
            kept.extend_from_slice(&encode_record(rec.generation, &rec.payload));
            kept_count += 1;
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen so the handle points at the renamed file, not the unlinked
        // inode of the old one.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        self.records = kept_count;
        self.bytes = kept.len() as u64;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Forces an fsync regardless of policy (used before checkpoints).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpds-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        {
            let mut open = Wal::open(&path, SyncPolicy::Commit).unwrap();
            assert_eq!(open.records.len(), 0);
            open.wal.append(1, b"1 2 0.5\n").unwrap();
            open.wal.append(2, b"2 3 0.25\n1 2 -\n").unwrap();
            assert_eq!(open.wal.records(), 2);
        }
        let open = Wal::open(&path, SyncPolicy::Commit).unwrap();
        assert_eq!(open.truncated_bytes, 0);
        assert_eq!(
            open.records,
            vec![
                WalRecord {
                    generation: 1,
                    payload: b"1 2 0.5\n".to_vec()
                },
                WalRecord {
                    generation: 2,
                    payload: b"2 3 0.25\n1 2 -\n".to_vec()
                },
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        {
            let mut open = Wal::open(&path, SyncPolicy::Commit).unwrap();
            open.wal.append(1, b"1 2 0.5\n").unwrap();
            open.wal.append(2, b"3 4 0.5\n").unwrap();
        }
        // Simulate a crash mid-append: half of a third record.
        let mut data = std::fs::read(&path).unwrap();
        let clean_len = data.len();
        let partial = encode_record(3, b"5 6 0.5\n");
        data.extend_from_slice(&partial[..partial.len() / 2]);
        std::fs::write(&path, &data).unwrap();

        let open = Wal::open(&path, SyncPolicy::Commit).unwrap();
        assert_eq!(open.records.len(), 2);
        assert_eq!(open.truncated_bytes, (partial.len() / 2) as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_truncates_from_that_record() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.log");
        let first_len;
        {
            let mut open = Wal::open(&path, SyncPolicy::Commit).unwrap();
            open.wal.append(1, b"1 2 0.5\n").unwrap();
            first_len = std::fs::metadata(&path).unwrap().len();
            open.wal.append(2, b"3 4 0.5\n").unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let at = first_len as usize + RECORD_HEADER_BYTES + 2; // inside record 2's payload
        data[at] ^= 0x20;
        std::fs::write(&path, &data).unwrap();

        let open = Wal::open(&path, SyncPolicy::Commit).unwrap();
        assert_eq!(open.records.len(), 1);
        assert_eq!(open.records[0].generation, 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_append_times_write_and_fsync_stages() {
        let dir = tmp_dir("traced");
        let path = dir.join("wal.log");
        let mut open = Wal::open(&path, SyncPolicy::Commit).unwrap();
        let rec = Recorder::new(true);
        open.wal.append_traced(1, b"1 2 0.5\n", Some(&rec)).unwrap();
        let t = rec.totals();
        assert_eq!(t.count(Stage::WalAppend), 1);
        assert_eq!(t.count(Stage::WalFsync), 1); // commit policy syncs every append
                                                 // The untraced path still works and records nothing new.
        open.wal.append(2, b"2 3 0.5\n").unwrap();
        assert_eq!(rec.totals().count(Stage::WalAppend), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retain_after_drops_covered_prefix() {
        let dir = tmp_dir("retain");
        let path = dir.join("wal.log");
        let mut open = Wal::open(&path, SyncPolicy::Commit).unwrap();
        for g in 1..=5u64 {
            open.wal
                .append(g, format!("1 {} 0.5\n", g + 1).as_bytes())
                .unwrap();
        }
        open.wal.retain_after(3).unwrap();
        assert_eq!(open.wal.records(), 2);
        // Appends keep working on the rewritten file.
        open.wal.append(6, b"9 10 0.5\n").unwrap();
        drop(open);
        let reopened = Wal::open(&path, SyncPolicy::Commit).unwrap();
        let gens: Vec<u64> = reopened.records.iter().map(|r| r.generation).collect();
        assert_eq!(gens, vec![4, 5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
