//! Durable dataset storage for the MPDS service.
//!
//! Three layers, std-only like the rest of the workspace:
//!
//! * [`wal`] — per-dataset append-only write-ahead log: one CRC-framed
//!   record per accepted mutation batch, torn tails truncated on open;
//! * [`dataset`] — checkpoint rotation (binary snapshots via
//!   [`ugraph::io::write_graph_checkpoint`], temp-file + rename, newest two
//!   kept) and boot-time recovery: newest valid checkpoint + WAL-tail
//!   replay through the same batch path mutations originally took;
//! * [`Store`] — the service-facing root handle: a `--data-dir` plus a
//!   [`SyncPolicy`], handing out per-dataset stores.
//!
//! The durability contract: once `POST /update` acks, the batch is in the
//! WAL (fsynced under the default `commit` policy), so SIGKILL at any later
//! point recovers the dataset to the exact pre-crash generation with a
//! byte-identical query surface.

pub mod dataset;
pub mod wal;

pub use dataset::{
    replay_wal, sanitize_dataset_dir, DatasetOpen, DatasetStore, RecoveredCheckpoint,
    RecoveryStats, CHECKPOINTS_KEPT,
};
pub use wal::{decode_record, encode_record, scan_records, DecodeStep, Wal, WalOpen, WalRecord};

use std::path::{Path, PathBuf};

/// When WAL appends are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync before every append returns (the default): an acked update
    /// survives SIGKILL and power loss.
    #[default]
    Commit,
    /// Coalesce fsyncs to at most one per second: much higher update
    /// throughput, at the cost of possibly losing the last sub-second of
    /// acked batches on a hard crash.
    Interval,
}

impl SyncPolicy {
    /// Parses the `--wal-sync` CLI value: `commit` or `interval`.
    ///
    /// ```
    /// use mpds_store::SyncPolicy;
    /// assert_eq!(SyncPolicy::parse("commit").unwrap(), SyncPolicy::Commit);
    /// assert_eq!(SyncPolicy::parse("interval").unwrap(), SyncPolicy::Interval);
    /// assert!(SyncPolicy::parse("eventually").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "commit" => Ok(SyncPolicy::Commit),
            "interval" => Ok(SyncPolicy::Interval),
            other => Err(format!(
                "bad wal-sync {other:?}: expected \"commit\" or \"interval\""
            )),
        }
    }
}

/// Errors from durable-store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A CRC-valid WAL record failed to re-apply, or replay diverged from
    /// the stamped generations — the log and the graph disagree.
    Replay(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Replay(msg) => write!(f, "WAL replay error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The root persistence handle: a data directory plus the WAL sync policy,
/// shared by every dataset the service persists.
#[derive(Debug, Clone)]
pub struct Store {
    data_dir: PathBuf,
    sync: SyncPolicy,
}

impl Store {
    /// Creates the handle (and the directory itself, if absent).
    pub fn create(data_dir: &Path, sync: SyncPolicy) -> std::io::Result<Store> {
        std::fs::create_dir_all(data_dir)?;
        Ok(Store {
            data_dir: data_dir.to_path_buf(),
            sync,
        })
    }

    /// The data directory this store roots at.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The WAL sync policy datasets are opened with.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Opens the durable state of one dataset (see [`DatasetStore::open`]).
    pub fn open_dataset(&self, name: &str) -> Result<DatasetOpen, StoreError> {
        DatasetStore::open(&self.data_dir, name, self.sync)
    }

    /// Whether `name` has any durable state on disk worth recovering — a
    /// non-empty WAL or at least one checkpoint file. Used by boot-time
    /// recovery to decide which registered datasets to eagerly rebuild.
    pub fn has_state(&self, name: &str) -> bool {
        let dir = self.data_dir.join(sanitize_dataset_dir(name));
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return false;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".ckpt") {
                return true;
            }
            if name == "wal.log" && entry.metadata().map(|m| m.len() > 0).unwrap_or(false) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_state_reflects_disk() {
        let dir = std::env::temp_dir().join(format!("mpds-store-root-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::create(&dir, SyncPolicy::Commit).unwrap();
        assert!(!store.has_state("demo"));
        let open = store.open_dataset("demo").unwrap();
        // An empty WAL is not recoverable state.
        assert!(!store.has_state("demo"));
        let mut ds = open.store;
        ds.log_batch(1, b"1 2 0.5\n").unwrap();
        assert!(store.has_state("demo"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
