//! Shared experiment harness for the per-table / per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's §VI
//! (see DESIGN.md §3 for the full index) and prints a markdown table with
//! the measured values next to the paper's reported ones where applicable.

pub mod legacy;
pub mod setup;

use std::time::{Duration, Instant};
use ugraph::datasets::{self, Dataset};

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Resident-set size of the current process in bytes (Linux), used for the
/// sampling-strategy memory comparison. Returns 0 if unavailable.
pub fn rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: usize = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// A markdown table accumulated row by row.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts an empty table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Prints the table as github-flavored markdown.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        println!("| {} |", self.headers.join(" | "));
        println!(
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            println!("| {} |", row.join(" | "));
        }
    }
}

/// Formats a float compactly.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Formats a duration in seconds.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a node set compactly (first few ids).
pub fn fmt_set(set: &[u32]) -> String {
    if set.len() <= 8 {
        format!("{set:?}")
    } else {
        format!("{:?}.. ({} nodes)", &set[..8], set.len())
    }
}

/// Whether quick mode is requested (smaller θ / fewer worlds), via
/// `MPDS_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("MPDS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The paper's three "smaller" datasets (MPDS experiments): Karate Club,
/// IntelLab-like, LastFM-like.
pub fn small_datasets() -> Vec<Dataset> {
    vec![
        datasets::karate_club(),
        datasets::intel_lab_like(42),
        datasets::lastfm_like(42),
    ]
}

/// The paper's three "larger" datasets (NDS experiments), scaled:
/// HomoSapiens-like, Biomine-like, Twitter-like.
pub fn large_datasets() -> Vec<Dataset> {
    vec![
        datasets::homo_sapiens_like(42),
        datasets::biomine_like(42),
        datasets::twitter_like(42),
    ]
}

/// Default θ per dataset size (paper: converged θ = 160 for Intel Lab, 640
/// for Biomine; Fig. 19).
pub fn default_theta(dataset_name: &str) -> usize {
    let theta = match dataset_name {
        "KarateClub" => 320,
        "IntelLab-like" => 160,
        "LastFM-like" => 160,
        "HomoSapiens-like" => 320,
        "Biomine-like" => 640,
        "Twitter-like" => 320,
        "Friendster-like" => 64,
        _ => 160,
    };
    if quick_mode() {
        (theta / 4).max(16)
    } else {
        theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // smoke test: must not panic
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.500");
        assert!(fmt(1e-6).contains('e'));
        assert_eq!(fmt_set(&[1, 2]), "[1, 2]");
        assert!(fmt_set(&(0..20).collect::<Vec<_>>()).contains("20 nodes"));
    }

    #[test]
    fn rss_is_positive_on_linux() {
        assert!(rss_bytes() > 0);
    }

    #[test]
    fn timing() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
