//! Pre-CSR reference implementations, kept verbatim for benchmarking.
//!
//! The PR that introduced the CSR graph core replaced per-vertex heap
//! adjacency lists ([`AdjListGraph`], the old `ugraph::Graph`) and the
//! `Vec<Vec<u32>>` flow adjacency ([`AdjListFlowNetwork`], the old
//! `maxflow::FlowNetwork`). These replicas preserve the old data layout and
//! algorithms so `bench_report` and the `csr_vs_baseline` criterion bench can
//! measure the refactor's speedup *on the same machine* — the committed
//! `BENCH_pr2.json` baselines track the CSR/legacy ratios, which are
//! machine-relative and therefore comparable across CI runners.
//!
//! Do not use these types outside benchmarks.

/// The pre-CSR deterministic graph: per-vertex sorted adjacency `Vec`s plus a
/// canonical edge list, maintained by sorted insertion.
#[derive(Debug, Clone, Default)]
pub struct AdjListGraph {
    adj: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
}

impl AdjListGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        AdjListGraph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Builds from an edge list via repeated sorted insertion (the old
    /// construction path, `O(deg)` memmove per edge).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = AdjListGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Canonical edge list (`u < v`, sorted).
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Whether the edge `(u, v)` exists (binary search on the smaller list).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Adds the undirected edge `(u, v)` keeping all lists sorted (the old
    /// mutable construction path).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos = self
            .edges
            .binary_search(&(a, b))
            .expect_err("duplicate edge");
        self.edges.insert(pos, (a, b));
        let pa = self.adj[a as usize].binary_search(&b).unwrap_err();
        self.adj[a as usize].insert(pa, b);
        let pb = self.adj[b as usize].binary_search(&a).unwrap_err();
        self.adj[b as usize].insert(pb, a);
    }

    /// The old possible-world materialization: rebuild a fresh adjacency-list
    /// graph from scratch for every sampled mask.
    pub fn world_from_mask(n: usize, edges: &[(u32, u32)], mask: &[bool]) -> AdjListGraph {
        assert_eq!(mask.len(), edges.len());
        let mut g = AdjListGraph::new(n);
        for (i, &(u, v)) in edges.iter().enumerate() {
            if mask[i] {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Triangle enumeration over adjacency lists, mirroring the old
    /// `enumerate_cliques(g, 3)` path: per-candidate `has_edge` binary
    /// searches instead of CSR slice merges. Returns sorted node triples.
    pub fn triangles(&self) -> Vec<[u32; 3]> {
        let mut out = Vec::new();
        let mut current: Vec<u32> = Vec::with_capacity(3);
        for v in 0..self.num_nodes() as u32 {
            let cand: Vec<u32> = self
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| w > v)
                .collect();
            current.push(v);
            self.extend_triangle(&mut current, &cand, &mut out);
            current.pop();
        }
        out
    }

    fn extend_triangle(&self, current: &mut Vec<u32>, cand: &[u32], out: &mut Vec<[u32; 3]>) {
        if current.len() == 3 {
            out.push([current[0], current[1], current[2]]);
            return;
        }
        if current.len() + cand.len() < 3 {
            return;
        }
        for (i, &w) in cand.iter().enumerate() {
            let next: Vec<u32> = cand[i + 1..]
                .iter()
                .copied()
                .filter(|&x| self.has_edge(w, x))
                .collect();
            current.push(w);
            self.extend_triangle(current, &next, out);
            current.pop();
        }
    }
}

/// The pre-CSR Dinic network: arc ids per node in `Vec<Vec<u32>>` adjacency.
/// Algorithmically identical to `maxflow::FlowNetwork` (same arc pairing,
/// same BFS/DFS structure), differing only in the adjacency layout.
#[derive(Debug, Clone)]
pub struct AdjListFlowNetwork {
    to: Vec<u32>,
    cap: Vec<u64>,
    orig: Vec<u64>,
    adj: Vec<Vec<u32>>,
    level: Vec<u32>,
    iter: Vec<u32>,
}

impl AdjListFlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        AdjListFlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Adds arc `u → v` with capacity `cap` and reverse capacity `rev_cap`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64, rev_cap: u64) -> usize {
        let e = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.orig.push(cap);
        self.adj[u].push(e as u32);
        self.to.push(u as u32);
        self.cap.push(rev_cap);
        self.orig.push(rev_cap);
        self.adj[v].push(e as u32 + 1);
        e
    }

    /// Restores all residual capacities (for repeated solves).
    pub fn reset(&mut self) {
        self.cap.copy_from_slice(&self.orig);
    }

    /// Dinic maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut total = 0u64;
        let mut queue = std::collections::VecDeque::new();
        loop {
            self.level.iter_mut().for_each(|l| *l = u32::MAX);
            self.level[s] = 0;
            queue.clear();
            queue.push_back(s as u32);
            while let Some(v) = queue.pop_front() {
                for &e in &self.adj[v as usize] {
                    let w = self.to[e as usize];
                    if self.cap[e as usize] > 0 && self.level[w as usize] == u32::MAX {
                        self.level[w as usize] = self.level[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            if self.level[t] == u32::MAX {
                return total;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs_augment(s, t);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
    }

    fn dfs_augment(&mut self, s: usize, t: usize) -> u64 {
        let mut path: Vec<u32> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                let mut f = u64::MAX;
                for &e in &path {
                    f = f.min(self.cap[e as usize]);
                }
                for &e in &path {
                    self.cap[e as usize] -= f;
                    self.cap[e as usize ^ 1] += f;
                }
                return f;
            }
            let mut advanced = false;
            while (self.iter[v] as usize) < self.adj[v].len() {
                let e = self.adj[v][self.iter[v] as usize];
                let w = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && self.level[w] == self.level[v] + 1 {
                    path.push(e);
                    v = w;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if advanced {
                continue;
            }
            self.level[v] = u32::MAX;
            match path.pop() {
                Some(e) => {
                    v = self.to[e as usize ^ 1] as usize;
                    self.iter[v] += 1;
                }
                None => return 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_graph_matches_csr_semantics() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
        let legacy = AdjListGraph::from_edges(4, &edges);
        let csr = ugraph::Graph::from_edges(4, &edges);
        assert_eq!(legacy.edges(), csr.edges());
        for v in 0..4u32 {
            assert_eq!(legacy.neighbors(v), csr.neighbors(v));
        }
        assert_eq!(legacy.triangles(), vec![[0, 1, 2]]);
    }

    #[test]
    fn legacy_world_matches_csr_world() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2)];
        let csr = ugraph::Graph::from_edges(3, &edges);
        let ug = ugraph::UncertainGraph::new(csr, vec![0.5; 3]);
        let mask = [true, false, true];
        let legacy = AdjListGraph::world_from_mask(3, ug.graph().edges(), &mask);
        let world = ug.world_from_mask(&mask);
        assert_eq!(legacy.edges(), world.edges());
    }

    #[test]
    fn legacy_dinic_matches_csr_dinic() {
        let arcs = [
            (0usize, 1usize, 10u64),
            (0, 2, 10),
            (1, 2, 5),
            (1, 3, 10),
            (2, 3, 10),
        ];
        let mut legacy = AdjListFlowNetwork::new(4);
        let mut csr = maxflow::FlowNetwork::new(4);
        for &(u, v, c) in &arcs {
            legacy.add_edge(u, v, c, 0);
            csr.add_edge(u, v, c, 0);
        }
        assert_eq!(legacy.max_flow(0, 3), csr.max_flow(0, 3));
        legacy.reset();
        csr.reset();
        assert_eq!(legacy.max_flow(0, 3), 20);
    }
}
