//! Observability overhead gate: a disabled `mpds_obs::Recorder` attached to
//! a query's [`RunControl`] must cost < 2% of end-to-end estimator
//! throughput.
//!
//! ```text
//! cargo run --release -p mpds-bench --bin obs_overhead -- \
//!     [--rounds N] [--batch N] [--check]
//! ```
//!
//! The instrumented pipeline calls `control.recorder()` and opens a span at
//! every stage boundary; with the recorder disabled (the default in every
//! unprofiled request) the span guard is inert and takes no clock readings.
//! This gate measures that claim: it runs the same `Query::mpds` workload
//! with **no recorder** and with a **disabled recorder** attached, in
//! interleaved rounds (so thermal/scheduler drift hits both variants
//! equally), takes the best round per variant, and reports the throughput
//! ratio `disabled / bare`. `--check` (the CI `obs-smoke` job) fails the
//! process when the ratio drops below 0.98 — i.e. when merely *carrying*
//! the disabled recorder costs 2% or more.

use densest::DensityNotion;
use mpds::api::Query;
use mpds::control::RunControl;
use mpds_obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use ugraph::{generators, UncertainGraph};

/// The measured workload: one full MPDS estimator run (sampling, per-world
/// densest solves, accumulation, ranking) on a degree-skewed graph.
fn workload() -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(0x0b5);
    let g = generators::barabasi_albert(300, 5, &mut rng);
    let probs: Vec<f64> = (0..g.num_edges())
        .map(|_| rng.gen_range(0.1..0.9))
        .collect();
    UncertainGraph::new(g, probs)
}

/// Times `batch` full runs under `control`, returning elapsed seconds.
fn time_batch(g: &UncertainGraph, control: &RunControl, batch: usize) -> f64 {
    let start = Instant::now();
    for i in 0..batch {
        let run = Query::mpds(DensityNotion::Edge)
            .theta(32)
            .k(3)
            .seed(1000 + i as u64)
            .control(control.clone())
            .run(g)
            .expect("estimator run");
        std::hint::black_box(run.top_k.len());
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let mut rounds = 7usize;
    let mut batch = 6usize;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .expect("--rounds needs a value")
                    .parse()
                    .expect("bad --rounds")
            }
            "--batch" => {
                batch = args
                    .next()
                    .expect("--batch needs a value")
                    .parse()
                    .expect("bad --batch")
            }
            "--check" => check = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let g = workload();
    let bare = RunControl::unbounded();
    let disabled = RunControl::unbounded().with_recorder(Arc::new(Recorder::new(false)));

    // Warm-up: touch both paths once, untimed.
    time_batch(&g, &bare, 1);
    time_batch(&g, &disabled, 1);

    // Interleaved best-of rounds: the minimum is the least-perturbed
    // observation of each variant's true cost.
    let mut best_bare = f64::INFINITY;
    let mut best_disabled = f64::INFINITY;
    for round in 0..rounds {
        let b = time_batch(&g, &bare, batch);
        let d = time_batch(&g, &disabled, batch);
        best_bare = best_bare.min(b);
        best_disabled = best_disabled.min(d);
        eprintln!("round {round}: bare {b:.4}s, disabled-recorder {d:.4}s");
    }

    let bare_ops = batch as f64 / best_bare;
    let disabled_ops = batch as f64 / best_disabled;
    let ratio = disabled_ops / bare_ops;
    println!(
        "{{\"schema\":\"mpds-bench/obs_overhead/v1\",\"bare_runs_per_sec\":{bare_ops:.3},\
         \"disabled_recorder_runs_per_sec\":{disabled_ops:.3},\"throughput_ratio\":{ratio:.4},\
         \"floor\":0.98}}"
    );

    if check && ratio < 0.98 {
        eprintln!(
            "overhead gate FAILED: disabled-recorder throughput ratio {ratio:.4} < 0.98 \
             (carrying the recorder costs >2%)"
        );
        std::process::exit(1);
    }
    if check {
        println!("overhead gate: OK (ratio {ratio:.4} >= 0.98)");
    }
}
