//! Paper §VI-E case study (Figs. 6–7): MPDS vs EDS / innermost core /
//! innermost truss / deterministic DS on Karate Club, with ground-truth
//! community purity.

use mpds::case_studies::karate_case_study;
use mpds_bench::{default_theta, fmt, fmt_set, Table};

fn main() {
    let study = karate_case_study(default_theta("KarateClub"), 10, 7);
    let mut t = Table::new(
        "Case study: Karate Club (Figs. 6-7)",
        &["method", "node set", "purity", "PD (Eq.19)", "PCC (Eq.20)"],
    );
    for s in &study.scored {
        t.row(&[
            s.method.to_string(),
            fmt_set(&s.node_set),
            s.purity.map(fmt).unwrap_or_else(|| "-".into()),
            fmt(s.pd),
            fmt(s.pcc),
        ]);
    }
    t.print();

    let mut tk = Table::new("Top-10 MPDSs", &["rank", "node set", "tau_hat"]);
    for (i, (set, tau)) in study.mpds_top_k.iter().enumerate() {
        tk.row(&[(i + 1).to_string(), fmt_set(set), fmt(*tau)]);
    }
    tk.print();
    println!(
        "\nAverage purity of the top-10 MPDSs: {} (paper: 1.0 for all k)",
        fmt(study.mpds_avg_purity)
    );
    println!("Paper shape (Figs. 6-7): every MPDS sits inside one ground-truth");
    println!("faction with high-probability edges; EDS/core/truss/DDS mix factions.");
}
