//! Paper Table X: average purity of the top-k node sets (MPDS vs EDS, core,
//! truss) against the Karate Club ground-truth communities.

use densest::DensityNotion;
use mpds::baselines::{eds, ucore, utruss};
use mpds_bench::{default_theta, fmt, setup, Table};
use ugraph::datasets;
use ugraph::metrics::{average_purity, purity};

fn main() {
    let data = datasets::karate_club();
    let g = &data.graph;
    let comms = data.communities.as_ref().unwrap();
    let theta = default_theta(&data.name);

    // Baselines have a single subgraph each (paper: only two cores/trusses
    // exist; we report the innermost).
    let eds_set = eds::expected_densest_subgraph(g, &DensityNotion::Edge)
        .unwrap()
        .node_set;
    let core = ucore::innermost_eta_core(g, 0.1);
    let truss = utruss::innermost_gamma_truss(g, 0.1);

    let mut t = Table::new(
        "Table X: purity of top-k subgraphs on Karate Club",
        &["k", "MPDS", "EDS", "Core", "Truss"],
    );
    for k in [1usize, 2, 5, 10] {
        let res = setup::run(&setup::mpds_query(DensityNotion::Edge, theta, k), g);
        let sets: Vec<Vec<u32>> = res.top_k.iter().map(|(s, _)| s.clone()).collect();
        t.row(&[
            k.to_string(),
            fmt(average_purity(&sets, comms)),
            fmt(purity(&eds_set, comms)),
            fmt(purity(&core, comms)),
            fmt(purity(&truss, comms)),
        ]);
    }
    t.print();
    println!("\nPaper shape (Table X): MPDS purity = 1 for every k; all baselines mix");
    println!("the two ground-truth factions.");
}
