//! Paper Table VIII: distribution (mean, std, quartiles) of the number of
//! densest subgraphs across sampling rounds, for edge, 3-clique, and diamond
//! densities on Karate Club and LastFM-like.

use densest::DensityNotion;
use mpds::estimate::{densest_count_stats, top_k_mpds, MpdsConfig};
use mpds_bench::{default_theta, fmt, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::{datasets, Pattern};

fn main() {
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    let mut t = Table::new(
        "Table VIII: #densest subgraphs per sampled world (mean, std, quartiles)",
        &["dataset", "notion", "mean", "std", "q1", "median", "q3"],
    );
    for data in [datasets::karate_club(), datasets::lastfm_like(42)] {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        for (label, notion) in &notions {
            let cfg = MpdsConfig::new(notion.clone(), theta, 1);
            let mut mc = MonteCarlo::new(g, StdRng::seed_from_u64(7));
            let res = top_k_mpds(g, &mut mc, &cfg);
            let (mean, std, q) = densest_count_stats(&res.densest_counts);
            t.row(&[
                data.name.clone(),
                label.to_string(),
                fmt(mean),
                fmt(std),
                q[0].to_string(),
                q[1].to_string(),
                q[2].to_string(),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape (Table VIII): counts are ~1 on Karate Club but huge and");
    println!("heavy-tailed on LastFM for edge/3-clique density — why enumerating ALL");
    println!("densest subgraphs (not one) matters.");
}
