//! Paper Table VIII: distribution (mean, std, quartiles) of the number of
//! densest subgraphs across sampling rounds, for edge, 3-clique, and diamond
//! densities on Karate Club and LastFM-like.

use densest::DensityNotion;
use mpds_bench::{default_theta, fmt, setup, Table};
use ugraph::{datasets, Pattern};

fn main() {
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    let mut t = Table::new(
        "Table VIII: #densest subgraphs per sampled world (mean, std, quartiles)",
        &["dataset", "notion", "mean", "std", "q1", "median", "q3"],
    );
    for data in [datasets::karate_club(), datasets::lastfm_like(42)] {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        for (label, notion) in &notions {
            let res = setup::run(&setup::mpds_query(notion.clone(), theta, 1), g);
            let (mean, std, q) = res
                .stats
                .densest_count_summary
                .expect("MPDS runs always report the Table VIII summary");
            t.row(&[
                data.name.clone(),
                label.to_string(),
                fmt(mean),
                fmt(std),
                q[0].to_string(),
                q[1].to_string(),
                q[2].to_string(),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape (Table VIII): counts are ~1 on Karate Club but huge and");
    println!("heavy-tailed on LastFM for edge/3-clique density — why enumerating ALL");
    println!("densest subgraphs (not one) matters.");
}
