//! Paper Table I / Fig. 1: the running example — expected edge densities vs
//! densest subgraph probabilities on the 4-node uncertain graph, exact.

use densest::DensityNotion;
use mpds::exact::{exact_all_tau, exact_gamma};
use mpds_bench::{fmt, Table};
use ugraph::UncertainGraph;

fn main() {
    // A = 0, B = 1, C = 2, D = 3 (probabilities reproduce Table I's worlds).
    let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    let names = ["A", "B", "C", "D"];
    let label = |set: &[u32]| -> String {
        let inner: Vec<&str> = set.iter().map(|&v| names[v as usize]).collect();
        format!("{{{}}}", inner.join(","))
    };

    let sets: Vec<Vec<u32>> = vec![
        vec![0, 1],
        vec![0, 2],
        vec![1, 3],
        vec![0, 1, 2],
        vec![0, 1, 3],
        vec![0, 1, 2, 3],
    ];
    let paper_eed = [0.2, 0.2, 0.35, 0.27, 0.37, 0.38];
    let paper_dsp = [0.07, 0.24, 0.42, 0.05, 0.17, 0.28];

    let tau = exact_all_tau(&g, &DensityNotion::Edge);
    let mut t = Table::new(
        "Table I: EED vs DSP on the running example (exact)",
        &[
            "node set",
            "EED (paper)",
            "EED (ours)",
            "DSP (paper)",
            "DSP (ours)",
            "gamma (ours)",
        ],
    );
    for (i, set) in sets.iter().enumerate() {
        let eed = g.expected_edge_density(set);
        let dsp = tau.get(set).copied().unwrap_or(0.0);
        let gamma = exact_gamma(&g, &DensityNotion::Edge, set);
        t.row(&[
            label(set),
            fmt(paper_eed[i]),
            fmt(eed),
            fmt(paper_dsp[i]),
            fmt(dsp),
            fmt(gamma),
        ]);
    }
    t.print();
    println!("\nMPDS = {{B,D}} (max DSP) while {{A,B,C,D}} has max EED — the paper's Example 1.");
}
