//! Paper §VI-F case study (Figs. 8–15): 3-clique MPDS vs EDS / innermost
//! core / innermost truss on simulated TD and ASD brain networks — lobes
//! spanned and hemispheric symmetry.

use mpds::case_studies::brain_case_study;
use mpds_bench::{fmt, Table};
use ugraph::brain::Cohort;

fn main() {
    for cohort in [Cohort::TypicallyDeveloped, Cohort::Asd] {
        let study = brain_case_study(cohort, 160, 5);
        let title = match cohort {
            Cohort::TypicallyDeveloped => "Typically developed (TD) cohort",
            Cohort::Asd => "ASD cohort",
        };
        let mut t = Table::new(
            &format!("Case study: brain networks — {title}"),
            &[
                "method",
                "#ROIs",
                "lobes spanned",
                "unpaired nodes",
                "symmetry",
                "ROIs",
            ],
        );
        for s in &study.subgraphs {
            t.row(&[
                s.method.to_string(),
                s.node_set.len().to_string(),
                format!("{:?}", s.lobes),
                s.unpaired.to_string(),
                fmt(s.symmetry),
                s.roi_names.join(" "),
            ]);
        }
        t.print();
    }
    println!("\nPaper shape (Figs. 8-15): the ASD MPDS lies entirely in the occipital");
    println!("lobe and is more hemispherically symmetric than the TD MPDS, which also");
    println!("touches the temporal lobe and cerebellum; EDS/core/truss span many lobes");
    println!("in BOTH cohorts and cannot distinguish them.");
}
