//! Paper Table III: densest subgraph *containment* probabilities of the NDS
//! vs EDS, innermost η-core, innermost γ-truss (η = γ = 0.1), plus expected
//! densities of the NDS and EDS, on the three larger (scaled) datasets.
//!
//! γ̂ of each baseline set = fraction of the sampled maximum-sized densest
//! subgraphs that contain it (the NDS transactions).

use densest::DensityNotion;
use mpds::baselines::{eds, ucore, utruss};
use mpds_bench::{default_theta, fmt, large_datasets, setup, Table};

fn main() {
    let mut t = Table::new(
        "Table III: containment probability of NDS vs baselines; expected densities",
        &[
            "dataset",
            "gamma(NDS)",
            "gamma(EDS)",
            "gamma(Core)",
            "gamma(Truss)",
            "ExpDens(NDS)",
            "ExpDens(EDS)",
        ],
    );
    for data in large_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        let res = setup::run(&setup::nds_query(DensityNotion::Edge, theta, 1, 4), g);
        let (nds_set, nds_gamma) = res.top_k.first().cloned().unwrap_or((vec![], 0.0));

        let eds_res =
            eds::expected_densest_subgraph(g, &DensityNotion::Edge).expect("datasets have edges");
        let core = ucore::innermost_eta_core(g, 0.1);
        let truss = utruss::innermost_gamma_truss(g, 0.1);

        t.row(&[
            data.name.clone(),
            fmt(nds_gamma),
            fmt(res.score_of(&eds_res.node_set)),
            fmt(res.score_of(&core)),
            fmt(res.score_of(&truss)),
            fmt(g.expected_edge_density(&nds_set)),
            fmt(eds_res.expected_density),
        ]);
    }
    t.print();
    println!("\nPaper shape (Table III): gamma(NDS) = 1 everywhere; the eta-core is");
    println!("comparable but never greater; EDS and the gamma-truss lag far behind;");
    println!("the NDS expected density is close to the EDS optimum.");
}
