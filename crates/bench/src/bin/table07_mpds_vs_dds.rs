//! Paper Table VII: densest subgraph probability of the MPDS vs the densest
//! subgraph of the deterministic version (DDS), smaller datasets.

use densest::DensityNotion;
use mpds::baselines::dds;
use mpds_bench::{default_theta, fmt, setup, small_datasets, Table};

fn main() {
    let mut t = Table::new(
        "Table VII: DSP of the MPDS vs the deterministic densest subgraph (DDS)",
        &["dataset", "DSP(MPDS)", "DSP(DDS)", "|MPDS|", "|DDS|"],
    );
    for data in small_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        let res = setup::run(&setup::mpds_query(DensityNotion::Edge, theta, 1), g);
        let (mpds_set, mpds_tau) = res.top_k.first().cloned().unwrap_or((vec![], 0.0));
        let (_, dds_set) = dds::deterministic_densest(g, &DensityNotion::Edge).unwrap();
        t.row(&[
            data.name.clone(),
            fmt(mpds_tau),
            fmt(res.score_of(&dds_set)),
            mpds_set.len().to_string(),
            dds_set.len().to_string(),
        ]);
    }
    t.print();
    println!("\nPaper shape (Table VII): DSP(MPDS) far exceeds DSP(DDS); the DDS is");
    println!("large, riddled with low-probability edges, and almost never densest.");
}
