//! Paper Tables V and VI: probabilistic density (Eq. 19) and probabilistic
//! clustering coefficient (Eq. 20) of our subgraph (MPDS on the smaller
//! datasets, NDS on the larger ones) vs EDS, innermost core, innermost truss.

use densest::DensityNotion;
use mpds::baselines::{eds, ucore, utruss};
use mpds_bench::{default_theta, fmt, setup, Table};
use ugraph::metrics::{probabilistic_clustering_coefficient, probabilistic_density};
use ugraph::{datasets, NodeSet, UncertainGraph};

fn our_subgraph(g: &UncertainGraph, name: &str, large: bool) -> NodeSet {
    let theta = default_theta(name);
    let query = if large {
        setup::nds_query(DensityNotion::Edge, theta, 1, 4)
    } else {
        setup::mpds_query(DensityNotion::Edge, theta, 1)
    };
    setup::run(&query, g)
        .top_k
        .first()
        .map(|(s, _)| s.clone())
        .unwrap_or_default()
}

fn main() {
    let cases: Vec<(ugraph::datasets::Dataset, bool)> = vec![
        (datasets::karate_club(), false),
        (datasets::lastfm_like(42), false),
        (datasets::biomine_like(42), true),
        (datasets::twitter_like(42), true),
    ];

    let mut tv = Table::new(
        "Table V: probabilistic density (Eq. 19)",
        &["dataset", "MPDS/NDS", "EDS", "Core", "Truss"],
    );
    let mut tvi = Table::new(
        "Table VI: probabilistic clustering coefficient (Eq. 20)",
        &["dataset", "MPDS/NDS", "EDS", "Core", "Truss"],
    );

    for (data, large) in cases {
        let g = &data.graph;
        let ours = our_subgraph(g, &data.name, large);
        let eds_set = eds::expected_densest_subgraph(g, &DensityNotion::Edge)
            .map(|r| r.node_set)
            .unwrap_or_default();
        let core = ucore::innermost_eta_core(g, 0.1);
        let truss = utruss::innermost_gamma_truss(g, 0.1);

        let sets = [&ours, &eds_set, &core, &truss];
        let pd: Vec<String> = sets
            .iter()
            .map(|s| fmt(probabilistic_density(g, s)))
            .collect();
        let pcc: Vec<String> = sets
            .iter()
            .map(|s| fmt(probabilistic_clustering_coefficient(g, s)))
            .collect();
        tv.row(&[
            data.name.clone(),
            pd[0].clone(),
            pd[1].clone(),
            pd[2].clone(),
            pd[3].clone(),
        ]);
        tvi.row(&[
            data.name.clone(),
            pcc[0].clone(),
            pcc[1].clone(),
            pcc[2].clone(),
            pcc[3].clone(),
        ]);
    }
    tv.print();
    tvi.print();
    println!("\nPaper shape (Tables V-VI): MPDS/NDS has the highest PD and PCC on");
    println!("every dataset; only the innermost truss comes close on the large ones.");
}
