//! Paper Fig. 17: F1-score (averaged across ranks 1..k) of the top-k node
//! sets returned by the sampling estimator w.r.t. the exact method, on the
//! synthetic graphs, for k ∈ {5, 10} and edge/3-clique/diamond densities.

use densest::DensityNotion;
use mpds::exact::{average_f1_across_ranks, exact_all_tau, exact_top_k_from};
use mpds_bench::{fmt, quick_mode, setup, Table};
use ugraph::{datasets, Pattern};

fn main() {
    let graphs: Vec<&str> = if quick_mode() {
        vec!["BA7", "ER7"]
    } else {
        vec!["BA7", "BA9", "ER7", "ER9"]
    };
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    let theta = 640;
    let ks = [5usize, 10];

    // rows[k_index][graph_index] = cells
    let mut rows: Vec<Vec<Vec<String>>> = vec![Vec::new(); ks.len()];
    for kind in &graphs {
        let data = datasets::synthetic_accuracy_graph(kind, 42);
        let g = &data.graph;
        let mut per_k_cells: Vec<Vec<String>> = ks.iter().map(|_| vec![kind.to_string()]).collect();
        for (_, notion) in &notions {
            // One exhaustive sweep per (graph, notion), shared across ks.
            let tau = exact_all_tau(g, notion);
            let approx = setup::run(
                &setup::mpds_query(notion.clone(), theta, *ks.last().unwrap()),
                g,
            );
            for (ki, &k) in ks.iter().enumerate() {
                let exact = exact_top_k_from(&tau, k);
                let approx_k: Vec<_> = approx.top_k.iter().take(k).cloned().collect();
                per_k_cells[ki].push(fmt(average_f1_across_ranks(&approx_k, &exact)));
            }
        }
        for (ki, cells) in per_k_cells.into_iter().enumerate() {
            rows[ki].push(cells);
        }
    }

    for (ki, &k) in ks.iter().enumerate() {
        let mut t = Table::new(
            &format!("Fig. 17: average F1 vs exact, k = {k}"),
            &["graph", "edge", "3-clique", "diamond"],
        );
        for cells in &rows[ki] {
            t.row(cells);
        }
        t.print();
    }
    println!("\nPaper shape (Fig. 17): average F1 is high (>~0.7) in all cases; k = 1");
    println!("always matches exactly (§VI-H).");
}
