//! Paper Table XV: running times of the exact MPDS method (2^m possible
//! worlds) vs our sampling approximation, on the synthetic BA/ER graphs, for
//! edge, 3-clique, and diamond densities.
//!
//! Note: ER9 uses m = 22 instead of the paper's m = 30 so the exact sweep
//! stays laptop-feasible (DESIGN.md §4); the orders-of-magnitude gap the
//! paper reports is preserved.

use densest::DensityNotion;
use mpds::exact::exact_top_k_mpds;
use mpds_bench::{fmt, fmt_secs, quick_mode, setup, Table};
use ugraph::{datasets, Pattern};

fn main() {
    let graphs: Vec<&str> = if quick_mode() {
        vec!["BA7", "ER7"]
    } else {
        vec!["BA7", "BA9", "ER7", "ER9"]
    };
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    let theta = 320;

    let mut t = Table::new(
        "Table XV: exact vs approximate MPDS runtimes (seconds)",
        &[
            "graph",
            "m",
            "notion",
            "exact (s)",
            "ours (s)",
            "speedup",
            "top-1 match",
        ],
    );
    for kind in graphs {
        let data = datasets::synthetic_accuracy_graph(kind, 42);
        let g = &data.graph;
        for (label, notion) in &notions {
            let (exact, t_exact) = mpds_bench::time(|| exact_top_k_mpds(g, notion, 1));
            let approx = setup::run(&setup::mpds_query(notion.clone(), theta, 1), g);
            let t_ours = approx.stats.wall;
            let matched = match (exact.first(), approx.top_k.first()) {
                (Some((e, _)), Some((a, _))) => e == a,
                (None, None) => true,
                _ => false,
            };
            t.row(&[
                kind.to_string(),
                g.num_edges().to_string(),
                label.to_string(),
                fmt_secs(t_exact),
                fmt_secs(t_ours),
                fmt(t_exact.as_secs_f64() / t_ours.as_secs_f64().max(1e-9)),
                matched.to_string(),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape (Table XV): the exact method is orders of magnitude");
    println!("slower and the gap explodes with m; top-1 results agree (k = 1 always");
    println!("matched in the paper, §VI-H).");
}
