//! Paper Table XI: approximate (exact enumeration) vs heuristic Pattern-NDS
//! on Karate Club — containment probability of the top result and running
//! time, for the four patterns of Fig. 5.

use densest::DensityNotion;
use mpds::nds::{top_k_nds, NdsConfig};
use mpds_bench::{default_theta, fmt, fmt_secs, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::{datasets, Pattern};

fn main() {
    let data = datasets::karate_club();
    let g = &data.graph;
    let theta = default_theta(&data.name);

    let mut t = Table::new(
        "Table XI: approximate vs heuristic Pattern-NDS on Karate Club",
        &[
            "pattern",
            "gamma (approx)",
            "gamma (heuristic)",
            "time approx (s)",
            "time heuristic (s)",
            "speedup",
        ],
    );
    for pattern in Pattern::paper_patterns() {
        let notion = DensityNotion::Pattern(pattern.clone());
        let run = |heuristic: bool| {
            let mut cfg = NdsConfig::new(notion.clone(), theta, 1, 2);
            cfg.heuristic = heuristic;
            let mut mc = MonteCarlo::new(g, StdRng::seed_from_u64(7));
            mpds_bench::time(|| top_k_nds(g, &mut mc, &cfg))
        };
        let (approx, t_a) = run(false);
        let (heur, t_h) = run(true);
        let ga = approx.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        let gh = heur.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        t.row(&[
            pattern.name().to_string(),
            fmt(ga),
            fmt(gh),
            fmt_secs(t_a),
            fmt_secs(t_h),
            fmt(t_a.as_secs_f64() / t_h.as_secs_f64().max(1e-9)),
        ]);
    }
    t.print();
    println!("\nPaper shape (Table XI): the heuristic returns containment");
    println!("probabilities close to the approximate method at a fraction of the time.");
}
