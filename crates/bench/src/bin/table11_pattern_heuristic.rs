//! Paper Table XI: approximate (exact enumeration) vs heuristic Pattern-NDS
//! on Karate Club — containment probability of the top result and running
//! time, for the four patterns of Fig. 5.

use densest::DensityNotion;
use mpds_bench::{default_theta, fmt, fmt_secs, setup, Table};
use ugraph::{datasets, Pattern};

fn main() {
    let data = datasets::karate_club();
    let g = &data.graph;
    let theta = default_theta(&data.name);

    let mut t = Table::new(
        "Table XI: approximate vs heuristic Pattern-NDS on Karate Club",
        &[
            "pattern",
            "gamma (approx)",
            "gamma (heuristic)",
            "time approx (s)",
            "time heuristic (s)",
            "speedup",
        ],
    );
    for pattern in Pattern::paper_patterns() {
        let notion = DensityNotion::Pattern(pattern.clone());
        let run = |heuristic: bool| {
            let query = setup::nds_query(notion.clone(), theta, 1, 2).heuristic(heuristic);
            setup::run(&query, g)
        };
        let approx = run(false);
        let heur = run(true);
        let ga = approx.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        let gh = heur.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        let (t_a, t_h) = (approx.stats.wall, heur.stats.wall);
        t.row(&[
            pattern.name().to_string(),
            fmt(ga),
            fmt(gh),
            fmt_secs(t_a),
            fmt_secs(t_h),
            fmt(t_a.as_secs_f64() / t_h.as_secs_f64().max(1e-9)),
        ]);
    }
    t.print();
    println!("\nPaper shape (Table XI): the heuristic returns containment");
    println!("probabilities close to the approximate method at a fraction of the time.");
}
