//! Paper Table IV: densest subgraph probabilities of the MPDS vs EDS,
//! innermost η-core, innermost γ-truss (η = γ = 0.1), plus expected densities
//! of the MPDS and EDS, on the three smaller datasets.
//!
//! The DSP of every baseline's node set is estimated with the same θ world
//! samples used by Algorithm 1 (a set's τ̂ is its frequency of inducing a
//! densest subgraph).

use densest::DensityNotion;
use mpds::baselines::{eds, ucore, utruss};
use mpds_bench::{default_theta, fmt, setup, small_datasets, Table};

fn main() {
    let mut t = Table::new(
        "Table IV: DSP of MPDS vs baselines (eta = gamma = 0.1); expected densities",
        &[
            "dataset",
            "DSP(MPDS)",
            "DSP(EDS)",
            "DSP(Core)",
            "DSP(Truss)",
            "ExpDens(MPDS)",
            "ExpDens(EDS)",
        ],
    );
    for data in small_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        let res = setup::run(&setup::mpds_query(DensityNotion::Edge, theta, 1), g);
        let (mpds_set, mpds_tau) = res.top_k.first().cloned().unwrap_or((vec![], 0.0));

        let eds_res =
            eds::expected_densest_subgraph(g, &DensityNotion::Edge).expect("datasets have edges");
        let core = ucore::innermost_eta_core(g, 0.1);
        let truss = utruss::innermost_gamma_truss(g, 0.1);

        // DSP of baseline sets, estimated from the same sampled candidates.
        let dsp_eds = res.score_of(&eds_res.node_set);
        let dsp_core = res.score_of(&core);
        let dsp_truss = res.score_of(&truss);

        let exp_mpds = g.expected_edge_density(&mpds_set);
        t.row(&[
            data.name.clone(),
            fmt(mpds_tau),
            fmt(dsp_eds),
            fmt(dsp_core),
            fmt(dsp_truss),
            fmt(exp_mpds),
            fmt(eds_res.expected_density),
        ]);
    }
    t.print();
    println!("\nPaper shape: DSP(MPDS) strictly dominates all baselines; expected");
    println!("density of the MPDS stays close to the EDS optimum (Table IV).");
}
