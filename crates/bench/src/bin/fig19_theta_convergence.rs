//! Paper Fig. 19: convergence in θ — similarity of the returned node sets to
//! those at the previous θ, and running time, for MPDS on IntelLab-like and
//! NDS on Biomine-like.

use densest::DensityNotion;
use mpds_bench::{fmt, fmt_secs, quick_mode, setup, Table};
use ugraph::datasets;
use ugraph::nodeset::set_family_similarity;

fn main() {
    // (a) MPDS on IntelLab-like.
    let intel = datasets::intel_lab_like(42);
    let thetas: Vec<usize> = if quick_mode() {
        vec![20, 40, 80, 160]
    } else {
        vec![20, 40, 80, 160, 320, 640]
    };
    let mut ta = Table::new(
        "Fig. 19(a): MPDS on IntelLab-like, varying theta",
        &["theta", "similarity to previous", "time (s)"],
    );
    let mut prev: Option<Vec<Vec<u32>>> = None;
    for &theta in &thetas {
        let query = setup::mpds_query(DensityNotion::Edge, theta, 5).seed(9);
        let res = setup::run(&query, &intel.graph);
        let elapsed = res.stats.wall;
        let sets: Vec<Vec<u32>> = res.top_k.into_iter().map(|(s, _)| s).collect();
        let sim = prev
            .as_ref()
            .map(|p| set_family_similarity(p, &sets))
            .unwrap_or(f64::NAN);
        ta.row(&[
            theta.to_string(),
            if sim.is_nan() { "-".into() } else { fmt(sim) },
            fmt_secs(elapsed),
        ]);
        prev = Some(sets);
    }
    ta.print();

    // (b) NDS on Biomine-like.
    let biomine = datasets::biomine_like(42);
    let thetas: Vec<usize> = if quick_mode() {
        vec![40, 80, 160]
    } else {
        vec![80, 160, 320, 640, 1280]
    };
    let mut tb = Table::new(
        "Fig. 19(b): NDS on Biomine-like, varying theta",
        &["theta", "similarity to previous", "time (s)"],
    );
    let mut prev: Option<Vec<Vec<u32>>> = None;
    for &theta in &thetas {
        let query = setup::nds_query(DensityNotion::Edge, theta, 5, 4).seed(9);
        let res = setup::run(&query, &biomine.graph);
        let elapsed = res.stats.wall;
        let sets: Vec<Vec<u32>> = res.top_k.into_iter().map(|(s, _)| s).collect();
        let sim = prev
            .as_ref()
            .map(|p| set_family_similarity(p, &sets))
            .unwrap_or(f64::NAN);
        tb.row(&[
            theta.to_string(),
            if sim.is_nan() { "-".into() } else { fmt(sim) },
            fmt_secs(elapsed),
        ]);
        prev = Some(sets);
    }
    tb.print();
    println!("\nPaper shape (Fig. 19): similarity rises to ~1 and saturates (theta =");
    println!("160 for Intel Lab, 640 for Biomine in the paper) while time keeps growing.");
}
