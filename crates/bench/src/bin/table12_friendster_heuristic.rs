//! Paper Table XII: approximate vs heuristic Edge-NDS on the largest dataset
//! (Friendster-like, scaled; see DESIGN.md §4) — containment probability and
//! running time.

use densest::DensityNotion;
use mpds::nds::{top_k_nds, NdsConfig};
use mpds_bench::{default_theta, fmt, fmt_secs, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::datasets;

fn main() {
    let data = datasets::friendster_like(42);
    let g = &data.graph;
    let theta = default_theta(&data.name);
    println!(
        "Friendster-like: n = {}, m = {}, theta = {theta}",
        g.num_nodes(),
        g.num_edges()
    );

    let mut t = Table::new(
        "Table XII: approximate vs heuristic Edge-NDS on Friendster-like",
        &["method", "containment probability", "time (s)"],
    );
    for (label, heuristic) in [("Approximate", false), ("Heuristic", true)] {
        let mut cfg = NdsConfig::new(DensityNotion::Edge, theta, 1, 4);
        cfg.heuristic = heuristic;
        let mut mc = MonteCarlo::new(g, StdRng::seed_from_u64(7));
        let (res, elapsed) = mpds_bench::time(|| top_k_nds(g, &mut mc, &cfg));
        let gamma = res.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        t.row(&[label.to_string(), fmt(gamma), fmt_secs(elapsed)]);
    }
    t.print();
    println!("\nPaper shape (Table XII): the heuristic's containment probability is");
    println!("slightly below the approximate method's at a ~4x runtime reduction.");
}
