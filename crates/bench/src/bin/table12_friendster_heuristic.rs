//! Paper Table XII: approximate vs heuristic Edge-NDS on the largest dataset
//! (Friendster-like, scaled; see DESIGN.md §4) — containment probability and
//! running time.

use densest::DensityNotion;
use mpds_bench::{default_theta, fmt, fmt_secs, setup, Table};
use ugraph::datasets;

fn main() {
    let data = datasets::friendster_like(42);
    let g = &data.graph;
    let theta = default_theta(&data.name);
    println!(
        "Friendster-like: n = {}, m = {}, theta = {theta}",
        g.num_nodes(),
        g.num_edges()
    );

    let mut t = Table::new(
        "Table XII: approximate vs heuristic Edge-NDS on Friendster-like",
        &["method", "containment probability", "time (s)"],
    );
    for (label, heuristic) in [("Approximate", false), ("Heuristic", true)] {
        let query = setup::nds_query(DensityNotion::Edge, theta, 1, 4).heuristic(heuristic);
        let res = setup::run(&query, g);
        let gamma = res.top_k.first().map(|(_, g)| *g).unwrap_or(0.0);
        t.row(&[label.to_string(), fmt(gamma), fmt_secs(res.stats.wall)]);
    }
    t.print();
    println!("\nPaper shape (Table XII): the heuristic's containment probability is");
    println!("slightly below the approximate method's at a ~4x runtime reduction.");
}
