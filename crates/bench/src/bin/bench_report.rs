//! Machine-readable hot-path benchmark: CSR core vs. the pre-refactor
//! adjacency-list implementations, emitted as `BENCH_pr2.json`.
//!
//! ```text
//! cargo run --release -p mpds-bench --bin bench_report -- \
//!     [--out PATH] [--check BASELINE_JSON] [--min-secs S]
//! ```
//!
//! Run artifacts default to `target/BENCH_pr2.json` (build output, not
//! checked in); the committed baseline lives at
//! `crates/bench/baselines/BENCH_pr2.json` — the single source of truth the
//! CI gate compares against.
//!
//! Each metric times the legacy implementation (see `mpds_bench::legacy`)
//! and the CSR implementation on identical inputs and reports ops/sec for
//! both plus their ratio (`speedup`). **The tracked quantity is the ratio**:
//! raw ops/sec depend on the machine, but legacy and CSR run on the same
//! machine in the same process, so the ratio transfers across runners. The
//! `--check` mode enforces the CI regression gate: every tracked speedup
//! must stay within 20% of the committed baseline, and the two headline
//! metrics (sample materialization, neighborhood iteration) must stay ≥ 2x.

use mpds_bench::legacy::{AdjListFlowNetwork, AdjListGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampling::{MonteCarlo, WorldSampler};
use std::time::Instant;
use ugraph::{generators, EdgeMask, Graph, UncertainGraph};

/// One measured metric: ops/sec for both implementations plus the ratio.
struct Metric {
    name: &'static str,
    unit: &'static str,
    legacy_ops: f64,
    csr_ops: f64,
    /// Whether the CI gate enforces the 20% band on this metric's speedup.
    /// Metrics whose expected ratio is ~1 (both layouts stream the same
    /// bytes) stay informational: a 20% band around 1.0 is inside cross-
    /// runner noise and would flake unrelated PRs.
    tracked: bool,
}

impl Metric {
    fn speedup(&self) -> f64 {
        self.csr_ops / self.legacy_ops
    }
}

/// Times `f` (called with an iteration budget) until `min_secs` of wall
/// clock is accumulated, returning ops/sec. One untimed warm-up batch.
fn ops_per_sec(min_secs: f64, mut f: impl FnMut(usize)) -> f64 {
    f(1); // warm-up
    let mut iters_done = 0usize;
    let mut elapsed = 0.0f64;
    let mut batch = 1usize;
    while elapsed < min_secs {
        let start = Instant::now();
        f(batch);
        elapsed += start.elapsed().as_secs_f64();
        iters_done += batch;
        batch = (batch * 2).min(1 << 16);
    }
    iters_done as f64 / elapsed
}

fn main() {
    let mut out_path = "target/BENCH_pr2.json".to_string();
    let mut check_path: Option<String> = None;
    let mut min_secs = 0.4f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .expect("--min-secs needs a value")
                    .parse()
                    .expect("bad --min-secs")
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let metrics = run_benchmarks(min_secs);
    let json = render_json(&metrics);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
    for m in &metrics {
        println!(
            "  {:<28} legacy {:>12.0} {u}, csr {:>12.0} {u}, speedup {:>5.2}x",
            m.name,
            m.legacy_ops,
            m.csr_ops,
            m.speedup(),
            u = m.unit,
        );
    }

    if let Some(baseline) = check_path {
        let baseline_text = std::fs::read_to_string(&baseline).expect("read baseline");
        let failures = check_against_baseline(&metrics, &baseline_text);
        if failures.is_empty() {
            println!("regression gate: OK vs {baseline}");
        } else {
            eprintln!("regression gate FAILED vs {baseline}:");
            for f in failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

/// The synthetic workload shared by all metrics: a Barabási–Albert graph
/// (degree-skewed, like the paper's real datasets) with random edge
/// probabilities.
fn workload() -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let g = generators::barabasi_albert(3000, 8, &mut rng);
    let probs: Vec<f64> = (0..g.num_edges())
        .map(|_| rng.gen_range(0.1..0.9))
        .collect();
    UncertainGraph::new(g, probs)
}

fn run_benchmarks(min_secs: f64) -> Vec<Metric> {
    let ug = workload();
    let n = ug.num_nodes();
    let edges = ug.graph().edges().to_vec();
    eprintln!("workload: n = {n}, m = {} (BA backbone)", edges.len());
    let mut metrics = Vec::new();

    // 1. Sample materialization: draw a world mask and build the world graph.
    //    Legacy: Vec<bool> mask + sorted-insertion adjacency rebuild.
    //    CSR: preallocated EdgeMask + recycled CSR assembly.
    {
        let mut mc = MonteCarlo::with_stream(&ug, 1, 0);
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let mask = mc.next_mask();
                let w = AdjListGraph::world_from_mask(n, &edges, &mask);
                std::hint::black_box(w.num_edges());
            }
        });
        let mut mc = MonteCarlo::with_stream(&ug, 1, 0);
        let mut mask = EdgeMask::new(ug.num_edges());
        let mut world = Graph::default();
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                mc.next_mask_into(&mut mask);
                world = ug.world_from_bitmap(&mask, std::mem::take(&mut world));
                std::hint::black_box(world.num_edges());
            }
        });
        metrics.push(Metric {
            name: "sample_materialization",
            tracked: true,
            unit: "worlds/s",
            legacy_ops,
            csr_ops,
        });
    }

    // 2. Neighborhood iteration, pipeline pattern: every sampled world is
    //    materialized once and then scanned by the density machinery, so the
    //    representative unit of work is "build the world, sweep all its
    //    neighborhoods k times" (k = 4 ≈ the peeling + core + oracle passes
    //    of Algorithm 1's inner loop).
    {
        const SWEEPS: usize = 4;
        let mut mc = MonteCarlo::with_stream(&ug, 2, 0);
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let mask = mc.next_mask();
                let w = AdjListGraph::world_from_mask(n, &edges, &mask);
                let mut acc = 0u64;
                for _ in 0..SWEEPS {
                    for v in 0..n as u32 {
                        for &x in w.neighbors(v) {
                            acc += x as u64;
                        }
                    }
                }
                std::hint::black_box(acc);
            }
        });
        let mut mc = MonteCarlo::with_stream(&ug, 2, 0);
        let mut mask = EdgeMask::new(ug.num_edges());
        let mut world = Graph::default();
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                mc.next_mask_into(&mut mask);
                world = ug.world_from_bitmap(&mask, std::mem::take(&mut world));
                let mut acc = 0u64;
                for _ in 0..SWEEPS {
                    for v in 0..n as u32 {
                        for &x in world.neighbors(v) {
                            acc += x as u64;
                        }
                    }
                }
                std::hint::black_box(acc);
            }
        });
        metrics.push(Metric {
            name: "neighborhood_iteration",
            tracked: true,
            unit: "world-scans/s",
            legacy_ops,
            csr_ops,
        });
    }

    // 2b. Static full sweep over the fixed uncertain graph (informational:
    //     on a freshly built graph both layouts stream the same 2m ids, so
    //     the expected ratio is ~1; the CSR win is in per-world rebuild cost
    //     and allocation-free reuse, not in raw sequential bandwidth).
    {
        let legacy_graph = AdjListGraph::from_edges(n, &edges);
        let csr_graph = ug.graph();
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let mut acc = 0u64;
                for v in 0..n as u32 {
                    for &w in legacy_graph.neighbors(v) {
                        acc += w as u64;
                    }
                }
                std::hint::black_box(acc);
            }
        });
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let mut acc = 0u64;
                for v in 0..n as u32 {
                    for &w in csr_graph.neighbors(v) {
                        acc += w as u64;
                    }
                }
                std::hint::black_box(acc);
            }
        });
        metrics.push(Metric {
            name: "static_neighborhood_sweep",
            tracked: false,
            unit: "sweeps/s",
            legacy_ops,
            csr_ops,
        });
    }

    // 3. Per-world peeling, pipeline pattern: sample a world, enumerate its
    //    edge instances, peel by instance-degree (the Charikar/core lower
    //    bound every per-world solve starts from).
    {
        let mut mc = MonteCarlo::with_stream(&ug, 3, 0);
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let mask = mc.next_mask();
                let w = AdjListGraph::world_from_mask(n, &edges, &mask);
                let inst = densest::instances::InstanceSet {
                    arity: 2,
                    instances: w.edges().iter().map(|&(u, v)| vec![u, v]).collect(),
                };
                let p = densest::peeling::peel(n, &inst);
                std::hint::black_box(p.best_density);
            }
        });
        let mut mc = MonteCarlo::with_stream(&ug, 3, 0);
        let mut mask = EdgeMask::new(ug.num_edges());
        let mut world = Graph::default();
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                mc.next_mask_into(&mut mask);
                world = ug.world_from_bitmap(&mask, std::mem::take(&mut world));
                let inst = densest::instances::enumerate_cliques(&world, 2);
                let p = densest::peeling::peel(n, &inst);
                std::hint::black_box(p.best_density);
            }
        });
        metrics.push(Metric {
            name: "world_edge_peeling",
            tracked: true,
            unit: "worlds/s",
            legacy_ops,
            csr_ops,
        });
    }

    // 4. Triangle peeling: enumerate triangle instances and peel by
    //    instance-degree (the §III-C heuristic inner loop). The peel itself
    //    is shared; the enumeration exercises the adjacency layout.
    {
        let mut rng = StdRng::seed_from_u64(7);
        let small = generators::erdos_renyi_nm(600, 5400, &mut rng);
        let small_edges = small.edges().to_vec();
        let legacy_small = AdjListGraph::from_edges(600, &small_edges);
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let tris = legacy_small.triangles();
                let inst = densest::instances::InstanceSet {
                    arity: 3,
                    instances: tris.iter().map(|t| t.to_vec()).collect(),
                };
                let p = densest::peeling::peel(600, &inst);
                std::hint::black_box(p.best_density);
            }
        });
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                let inst = densest::instances::enumerate_cliques(&small, 3);
                let p = densest::peeling::peel(600, &inst);
                std::hint::black_box(p.best_density);
            }
        });
        metrics.push(Metric {
            name: "triangle_peeling",
            tracked: false,
            unit: "passes/s",
            legacy_ops,
            csr_ops,
        });
    }

    // 4. Dinic max-flow: the Goldberg-style densest-subgraph network of one
    //    sampled world (source → vertices → sink + undirected edge arcs),
    //    solved to completion. Identical arc insertion order on both sides.
    {
        let mut rng = StdRng::seed_from_u64(13);
        let world = generators::erdos_renyi_nm(1200, 9600, &mut rng);
        let wedges = world.edges().to_vec();
        let wn = world.num_nodes();
        let (s, t) = (wn, wn + 1);
        let mut arcs: Vec<(usize, usize, u64, u64)> = Vec::new();
        for v in 0..wn {
            arcs.push((s, v, world.degree(v as u32) as u64, 0));
            arcs.push((v, t, 2 * 8, 0)); // 2α with α = 8 (near ρ*)
        }
        for &(u, v) in &wedges {
            arcs.push((u as usize, v as usize, 1, 1));
        }
        let mut legacy_net = AdjListFlowNetwork::new(wn + 2);
        let mut csr_net = maxflow::FlowNetwork::new(wn + 2);
        for &(u, v, c, rc) in &arcs {
            legacy_net.add_edge(u, v, c, rc);
            csr_net.add_edge(u, v, c, rc);
        }
        let legacy_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                legacy_net.reset();
                std::hint::black_box(legacy_net.max_flow(s, t));
            }
        });
        let csr_ops = ops_per_sec(min_secs, |iters| {
            for _ in 0..iters {
                csr_net.reset();
                std::hint::black_box(csr_net.max_flow(s, t));
            }
        });
        metrics.push(Metric {
            name: "dinic_maxflow",
            tracked: false,
            unit: "solves/s",
            legacy_ops,
            csr_ops,
        });
    }

    metrics
}

/// Renders the report with one metric object per line (the line orientation
/// is what keeps `parse_baseline` dependency-free).
fn render_json(metrics: &[Metric]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"mpds-bench/bench_report/v1\",\n");
    s.push_str("  \"note\": \"gated quantity is `speedup` (CSR/legacy ops ratio, machine-relative) on `tracked` metrics; raw ops/sec are informational\",\n");
    s.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"tracked\": {}, \"unit\": \"{}\", \"legacy_ops\": {:.2}, \"csr_ops\": {:.2}, \"speedup\": {:.3}}}{}\n",
            m.name,
            m.tracked,
            m.unit,
            m.legacy_ops,
            m.csr_ops,
            m.speedup(),
            if i + 1 == metrics.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `(name, tracked, speedup)` triples from a report produced by
/// [`render_json`] (line-oriented scan; no JSON dependency).
fn parse_baseline(text: &str) -> Vec<(String, bool, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let tracked = line.contains("\"tracked\": true");
        let Some(sp_at) = line.find("\"speedup\": ") else {
            continue;
        };
        let num: String = line[sp_at + 11..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, tracked, v));
        }
    }
    out
}

/// The regression gate: each tracked speedup must stay within 20% of the
/// committed baseline, and the two headline metrics must stay ≥ 2x.
/// Informational metrics (expected ratio ~1) are reported but never fail
/// the gate — a 20% band around 1.0 sits inside cross-runner noise.
fn check_against_baseline(metrics: &[Metric], baseline_text: &str) -> Vec<String> {
    let baseline = parse_baseline(baseline_text);
    let mut failures = Vec::new();
    if !baseline.iter().any(|&(_, tracked, _)| tracked) {
        failures.push("baseline contains no tracked metrics".to_string());
    }
    for (name, tracked, base_speedup) in &baseline {
        let Some(m) = metrics.iter().find(|m| m.name == name.as_str()) else {
            failures.push(format!("metric {name} missing from this run"));
            continue;
        };
        if !tracked {
            continue;
        }
        let got = m.speedup();
        let floor = base_speedup * 0.8;
        if got < floor {
            failures.push(format!(
                "{name}: speedup {got:.3} regressed >20% below baseline {base_speedup:.3}"
            ));
        }
    }
    // Reverse direction: a tracked metric added to bench_report without
    // regenerating the committed baseline must fail loudly, not run ungated.
    for m in metrics.iter().filter(|m| m.tracked) {
        if !baseline.iter().any(|(name, _, _)| name == m.name) {
            failures.push(format!(
                "{}: tracked metric missing from the baseline — regenerate crates/bench/baselines/BENCH_pr2.json",
                m.name
            ));
        }
    }
    for headline in ["sample_materialization", "neighborhood_iteration"] {
        if let Some(m) = metrics.iter().find(|m| m.name == headline) {
            if m.speedup() < 2.0 {
                failures.push(format!(
                    "{headline}: speedup {:.3} below the required 2x",
                    m.speedup()
                ));
            }
        }
    }
    failures
}
