//! Paper Tables XIII–XIV: sampling-strategy comparison — Monte Carlo vs Lazy
//! Propagation vs Recursive Stratified Sampling. Reports the converged θ,
//! running time, and sampler-attributable memory for MPDS on IntelLab-like
//! and NDS on Biomine-like.

use densest::DensityNotion;
use mpds::api::{Query, SamplerKind};
use mpds_bench::{default_theta, fmt_secs, setup, Table};
use sampling::WorldSampler as _;
use ugraph::datasets;
use ugraph::nodeset::set_family_similarity;
use ugraph::UncertainGraph;

/// The two compared estimators at a given θ, with the bench seed.
fn query(nds: bool, theta: usize) -> Query {
    if nds {
        setup::nds_query(DensityNotion::Edge, theta, 5, 4)
    } else {
        setup::mpds_query(DensityNotion::Edge, theta, 5)
    }
}

/// Converged θ: smallest θ in the doubling schedule whose top-k sets are
/// ≥ 99% similar to the previous θ's (the paper's Fig. 19 convergence rule).
fn converged_theta(g: &UncertainGraph, kind: SamplerKind, nds: bool, max_theta: usize) -> usize {
    let mut prev: Option<Vec<Vec<u32>>> = None;
    let mut theta = 20;
    while theta <= max_theta {
        let sets: Vec<Vec<u32>> = setup::run(&query(nds, theta).sampler(kind).seed(9), g)
            .top_k
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        if let Some(p) = &prev {
            if set_family_similarity(p, &sets) >= 0.99 {
                return theta;
            }
        }
        prev = Some(sets);
        theta *= 2;
    }
    max_theta
}

fn run_strategies(title: &str, g: &UncertainGraph, nds: bool, theta_cap: usize) {
    let mut t = Table::new(
        title,
        &["method", "theta", "time (s)", "sampler memory (KB)"],
    );
    for kind in [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss] {
        let theta = converged_theta(g, kind, nds, theta_cap);
        // Build the sampler externally (rather than letting the query
        // resolve it) so its auxiliary memory is measurable after the run —
        // RSS reports its recursion high-water mark.
        let mut sampler = kind.build(g, setup::BENCH_SEED);
        let run = query(nds, theta)
            .run_with_sampler(g, &mut *sampler)
            .expect("valid bench query");
        let mem_kb = sampler.aux_memory_bytes() / 1024;
        t.row(&[
            kind.name().to_string(),
            theta.to_string(),
            fmt_secs(run.stats.wall),
            mem_kb.to_string(),
        ]);
    }
    t.print();
}

fn main() {
    let intel = datasets::intel_lab_like(42);
    let cap = default_theta("IntelLab-like") * 8;
    run_strategies(
        "Table XIII: sampling strategies, MPDS on IntelLab-like",
        &intel.graph,
        false,
        cap,
    );
    let biomine = datasets::biomine_like(42);
    let cap = default_theta("Biomine-like") * 4;
    run_strategies(
        "Table XIV: sampling strategies, NDS on Biomine-like",
        &biomine.graph,
        true,
        cap,
    );
    println!("\nPaper shape (Tables XIII-XIV): all three strategies converge at a");
    println!("similar theta with comparable runtimes; MC uses the least memory.");
}
