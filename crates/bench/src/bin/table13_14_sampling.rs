//! Paper Tables XIII–XIV: sampling-strategy comparison — Monte Carlo vs Lazy
//! Propagation vs Recursive Stratified Sampling. Reports the converged θ,
//! running time, and sampler-attributable memory for MPDS on IntelLab-like
//! and NDS on Biomine-like.

use densest::DensityNotion;
use mpds::estimate::{top_k_mpds, MpdsConfig};
use mpds::nds::{top_k_nds, NdsConfig};
use mpds_bench::{default_theta, fmt_secs, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{LazyPropagation, MonteCarlo, RecursiveStratified, WorldSampler};
use ugraph::datasets;
use ugraph::nodeset::set_family_similarity;
use ugraph::UncertainGraph;

/// Converged θ: smallest θ in the doubling schedule whose top-k sets are
/// ≥ 99% similar to the previous θ's (the paper's Fig. 19 convergence rule).
fn converged_theta(
    g: &UncertainGraph,
    make: &dyn Fn(u64) -> Box<dyn WorldSampler>,
    nds: bool,
    max_theta: usize,
) -> usize {
    let mut prev: Option<Vec<Vec<u32>>> = None;
    let mut theta = 20;
    while theta <= max_theta {
        let sets: Vec<Vec<u32>> = if nds {
            let cfg = NdsConfig::new(DensityNotion::Edge, theta, 5, 4);
            let mut s = make(9);
            top_k_nds(g, &mut s, &cfg)
                .top_k
                .into_iter()
                .map(|(s, _)| s)
                .collect()
        } else {
            let cfg = MpdsConfig::new(DensityNotion::Edge, theta, 5);
            let mut s = make(9);
            top_k_mpds(g, &mut s, &cfg)
                .top_k
                .into_iter()
                .map(|(s, _)| s)
                .collect()
        };
        if let Some(p) = &prev {
            if set_family_similarity(p, &sets) >= 0.99 {
                return theta;
            }
        }
        prev = Some(sets);
        theta *= 2;
    }
    max_theta
}

fn run_strategies(title: &str, g: &UncertainGraph, nds: bool, theta_cap: usize) {
    let mut t = Table::new(
        title,
        &["method", "theta", "time (s)", "sampler memory (KB)"],
    );
    type Maker<'a> = (&'static str, Box<dyn Fn(u64) -> Box<dyn WorldSampler> + 'a>);
    let makers: Vec<Maker> = vec![
        (
            "MC",
            Box::new(|seed| {
                Box::new(MonteCarlo::new(g, StdRng::seed_from_u64(seed))) as Box<dyn WorldSampler>
            }),
        ),
        (
            "LP",
            Box::new(|seed| {
                Box::new(LazyPropagation::new(g, StdRng::seed_from_u64(seed)))
                    as Box<dyn WorldSampler>
            }),
        ),
        (
            "RSS",
            Box::new(|seed| {
                Box::new(RecursiveStratified::new(g, 3, StdRng::seed_from_u64(seed)))
                    as Box<dyn WorldSampler>
            }),
        ),
    ];
    for (name, make) in &makers {
        let theta = converged_theta(g, make.as_ref(), nds, theta_cap);
        let mut sampler = make(7);
        let (_, elapsed) = mpds_bench::time(|| {
            if nds {
                let cfg = NdsConfig::new(DensityNotion::Edge, theta, 5, 4);
                let _ = top_k_nds(g, &mut sampler, &cfg);
            } else {
                let cfg = MpdsConfig::new(DensityNotion::Edge, theta, 5);
                let _ = top_k_mpds(g, &mut sampler, &cfg);
            }
        });
        // Exercise the sampler once more so RSS reports its recursion
        // high-water mark.
        let mem_kb = sampler.aux_memory_bytes() / 1024;
        t.row(&[
            name.to_string(),
            theta.to_string(),
            fmt_secs(elapsed),
            mem_kb.to_string(),
        ]);
    }
    t.print();
}

fn main() {
    let intel = datasets::intel_lab_like(42);
    let cap = default_theta("IntelLab-like") * 8;
    run_strategies(
        "Table XIII: sampling strategies, MPDS on IntelLab-like",
        &intel.graph,
        false,
        cap,
    );
    let biomine = datasets::biomine_like(42);
    let cap = default_theta("Biomine-like") * 4;
    run_strategies(
        "Table XIV: sampling strategies, NDS on Biomine-like",
        &biomine.graph,
        true,
        cap,
    );
    println!("\nPaper shape (Tables XIII-XIV): all three strategies converge at a");
    println!("similar theta with comparable runtimes; MC uses the least memory.");
}
