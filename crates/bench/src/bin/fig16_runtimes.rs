//! Paper Fig. 16: running times of the proposed methods — MPDS on the
//! smaller datasets (a: edge + cliques, b: patterns) and NDS on the larger
//! ones (c: edge + cliques, d: heuristic patterns).

use densest::DensityNotion;
use mpds_bench::{
    default_theta, fmt_secs, large_datasets, quick_mode, setup, small_datasets, Table,
};
use ugraph::Pattern;

fn main() {
    let clique_notions: Vec<(String, DensityNotion)> = {
        let hs: &[usize] = if quick_mode() { &[3] } else { &[3, 4, 5] };
        let mut v = vec![("edge".to_string(), DensityNotion::Edge)];
        v.extend(
            hs.iter()
                .map(|&h| (format!("{h}-clique"), DensityNotion::Clique(h))),
        );
        v
    };
    let pattern_notions: Vec<(String, DensityNotion)> = Pattern::paper_patterns()
        .into_iter()
        .map(|p| (p.name().to_string(), DensityNotion::Pattern(p)))
        .collect();

    // (a) + (b): MPDS on the smaller datasets.
    let mut ta = Table::new(
        "Fig. 16(a): MPDS runtimes, edge + clique densities (seconds)",
        &["dataset", "notion", "time (s)"],
    );
    let mut tb = Table::new(
        "Fig. 16(b): MPDS runtimes, pattern densities (seconds)",
        &["dataset", "notion", "time (s)"],
    );
    for data in small_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        for (label, notion) in clique_notions.iter() {
            let run = setup::run(&setup::mpds_query(notion.clone(), theta, 1), g);
            ta.row(&[data.name.clone(), label.clone(), fmt_secs(run.stats.wall)]);
        }
        for (label, notion) in pattern_notions.iter() {
            // Patterns on LastFM-like use the heuristic (paper §III-C remark).
            let query =
                setup::mpds_query(notion.clone(), theta, 1).heuristic(data.name == "LastFM-like");
            let run = setup::run(&query, g);
            tb.row(&[data.name.clone(), label.clone(), fmt_secs(run.stats.wall)]);
        }
    }
    ta.print();
    tb.print();

    // (c) + (d): NDS on the larger datasets.
    let mut tc = Table::new(
        "Fig. 16(c): NDS runtimes, edge + clique densities (seconds)",
        &["dataset", "notion", "time (s)"],
    );
    let mut td = Table::new(
        "Fig. 16(d): heuristic Pattern-NDS runtimes (seconds)",
        &["dataset", "notion", "time (s)"],
    );
    for data in large_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        for (label, notion) in clique_notions.iter() {
            let run = setup::run(&setup::nds_query(notion.clone(), theta, 5, 4), g);
            tc.row(&[data.name.clone(), label.clone(), fmt_secs(run.stats.wall)]);
        }
        for (label, notion) in pattern_notions.iter() {
            let query = setup::nds_query(notion.clone(), theta, 5, 4).heuristic(true);
            let run = setup::run(&query, g);
            td.row(&[data.name.clone(), label.clone(), fmt_secs(run.stats.wall)]);
        }
    }
    tc.print();
    td.print();
    println!("\nPaper shape (Fig. 16): edge density is the cheapest (smallest flow");
    println!("networks); no consistent winner among 3/4/5-cliques or the patterns.");
}
