//! Paper Table IX (§VI-D ablation): average estimated DSP of the top-10
//! MPDSs when counting ALL densest subgraphs per sampled world vs only ONE
//! randomly chosen densest subgraph.

use densest::DensityNotion;
use mpds_bench::{default_theta, fmt, setup, Table};
use ugraph::{datasets, Pattern};

fn main() {
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    let mut t = Table::new(
        "Table IX: avg DSP of the top-10 MPDSs, all vs one densest subgraph per world",
        &["dataset", "notion", "all", "one", "ratio"],
    );
    for data in [datasets::karate_club(), datasets::lastfm_like(42)] {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        for (label, notion) in &notions {
            let avg = |all_mode: bool| -> f64 {
                let query = setup::mpds_query(notion.clone(), theta, 10).all_densest(all_mode);
                let res = setup::run(&query, g);
                if res.top_k.is_empty() {
                    return 0.0;
                }
                res.top_k.iter().map(|(_, tau)| tau).sum::<f64>() / res.top_k.len() as f64
            };
            let all = avg(true);
            let one = avg(false);
            let ratio = if one > 0.0 { all / one } else { f64::NAN };
            t.row(&[
                data.name.clone(),
                label.to_string(),
                fmt(all),
                fmt(one),
                fmt(ratio),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape (Table IX): 'all' dominates 'one'; the gap grows with the");
    println!("number of densest subgraphs per world (up to ~20x on LastFM).");
}
