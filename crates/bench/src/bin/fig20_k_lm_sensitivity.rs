//! Paper Fig. 20: NDS sensitivity — average estimated containment
//! probability of the top-k NDSs while varying k (large datasets) and while
//! varying the minimum size l_m (HomoSapiens-like).

use densest::DensityNotion;
use mpds_bench::{default_theta, fmt, large_datasets, setup, Table};
use ugraph::datasets;

fn main() {
    // (a) varying k.
    let mut ta = Table::new(
        "Fig. 20(a): avg estimated containment probability vs k",
        &["dataset", "k=1", "k=5", "k=10", "k=50", "k=100"],
    );
    for data in large_datasets() {
        let g = &data.graph;
        let theta = default_theta(&data.name);
        let mut cells = vec![data.name.clone()];
        for k in [1usize, 5, 10, 50, 100] {
            // Large k with tiny l_m can explode the closed-set search on
            // near-identical transactions; bound the miner's work (the
            // top results are found long before the cap).
            let query = setup::nds_query(DensityNotion::Edge, theta, k, 2)
                .miner_node_cap(200_000)
                .seed(9);
            let res = setup::run(&query, g);
            let avg = if res.top_k.is_empty() {
                0.0
            } else {
                res.top_k.iter().map(|(_, g)| g).sum::<f64>() / res.top_k.len() as f64
            };
            cells.push(fmt(avg));
        }
        ta.row(&cells);
    }
    ta.print();

    // (b) varying l_m on HomoSapiens-like.
    let data = datasets::homo_sapiens_like(42);
    let g = &data.graph;
    let theta = default_theta(&data.name);
    let mut tb = Table::new(
        "Fig. 20(b): avg estimated containment probability vs l_m (HomoSapiens-like)",
        &["l_m", "avg containment prob", "#returned"],
    );
    for lm in [1usize, 5, 10, 20, 30, 40, 50, 60] {
        let query = setup::nds_query(DensityNotion::Edge, theta, 10, lm)
            .miner_node_cap(200_000)
            .seed(9);
        let res = setup::run(&query, g);
        let avg = if res.top_k.is_empty() {
            0.0
        } else {
            res.top_k.iter().map(|(_, g)| g).sum::<f64>() / res.top_k.len() as f64
        };
        tb.row(&[lm.to_string(), fmt(avg), res.top_k.len().to_string()]);
    }
    tb.print();
    println!("\nPaper shape (Fig. 20): the average containment probability decreases");
    println!("with k; it is flat for small l_m, then decreases and finally hits 0 when");
    println!("no closed set is large enough.");
}
