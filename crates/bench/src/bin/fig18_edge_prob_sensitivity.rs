//! Paper Fig. 18: effect of the edge-probability distribution — ER7 with
//! normally distributed probabilities of mean {0.2, 0.5, 0.8}: runtime of the
//! estimator and average F1 vs exact for k ∈ {1, 5, 10}.

use densest::DensityNotion;
use mpds::exact::{average_f1_across_ranks, exact_all_tau, exact_top_k_from};
use mpds_bench::{fmt, fmt_secs, setup, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ugraph::{generators, probability, UncertainGraph};

fn main() {
    let theta = 640;
    let mut t = Table::new(
        "Fig. 18: ER7 with normal edge probabilities (std 0.1)",
        &["mean p", "time (s)", "F1 k=1", "F1 k=5", "F1 k=10"],
    );
    for mean in [0.2f64, 0.5, 0.8] {
        let mut rng = StdRng::seed_from_u64(42);
        let graph = generators::erdos_renyi_nm(7, 20, &mut rng);
        let probs =
            probability::truncated_normal_probs(graph.num_edges(), mean, 0.1, 0.01, 1.0, &mut rng);
        let g = UncertainGraph::new(graph, probs);

        let approx = setup::run(&setup::mpds_query(DensityNotion::Edge, theta, 10), &g);

        let mut cells = vec![fmt(mean), fmt_secs(approx.stats.wall)];
        // One exhaustive 2^m sweep per graph, shared across the three ks.
        let tau = exact_all_tau(&g, &DensityNotion::Edge);
        for k in [1usize, 5, 10] {
            let exact = exact_top_k_from(&tau, k);
            let approx_k: Vec<_> = approx.top_k.iter().take(k).cloned().collect();
            cells.push(fmt(average_f1_across_ranks(&approx_k, &exact)));
        }
        t.row(&cells);
    }
    t.print();
    println!("\nPaper shape (Fig. 18): good F1 for every distribution; runtime grows");
    println!("with the mean probability (denser sampled worlds).");
}
