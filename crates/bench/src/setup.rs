//! Shared estimator setup for the experiment binaries.
//!
//! Every table/figure binary used to hand-roll the same three lines —
//! construct a `MonteCarlo` over the graph, seed it with the experiments'
//! fixed seed, call the free estimator function. With the [`mpds::api`]
//! builder that boilerplate collapses into one pre-seeded [`Query`] per
//! estimator; binaries chain the knobs they vary (`.heuristic(true)`,
//! `.seed(9)`, `.miner_node_cap(..)`, …) and call `.run(g)`.

use densest::DensityNotion;
use mpds::api::{Query, Run};
use ugraph::UncertainGraph;

/// The experiment binaries' fixed RNG seed (the paper reports single runs).
pub const BENCH_SEED: u64 = 7;

/// An MPDS query with the bench defaults: Monte-Carlo sampling, serial
/// execution, seed [`BENCH_SEED`].
pub fn mpds_query(notion: DensityNotion, theta: usize, k: usize) -> Query {
    Query::mpds(notion).theta(theta).k(k).seed(BENCH_SEED)
}

/// An NDS query with the bench defaults (see [`mpds_query`]).
pub fn nds_query(notion: DensityNotion, theta: usize, k: usize, min_size: usize) -> Query {
    Query::nds(notion)
        .theta(theta)
        .k(k)
        .min_size(min_size)
        .seed(BENCH_SEED)
}

/// Runs a bench query, panicking with context on invalid parameters — the
/// binaries' parameters are static, so a failure here is a programming
/// error, not an input error.
pub fn run(query: &Query, g: &UncertainGraph) -> Run {
    query
        .run(g)
        .unwrap_or_else(|e| panic!("bench query rejected: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_queries_carry_the_shared_seed() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.2)]);
        let a = run(&mpds_query(DensityNotion::Edge, 32, 1), &g);
        let b = run(&mpds_query(DensityNotion::Edge, 32, 1), &g);
        assert_eq!(a.top_k, b.top_k);
        assert_eq!(a.top_k[0].0, vec![0, 1]);
        let n = run(&nds_query(DensityNotion::Edge, 32, 2, 2), &g);
        assert_eq!(n.stats.worlds_sampled, 32);
    }
}
