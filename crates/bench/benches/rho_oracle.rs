//! ρ\* oracle ablation (DESIGN.md §5.2): exact Dinkelbach flow iteration vs
//! the Frank–Wolfe/kclist++ iterative solver of \[57\].

use criterion::{criterion_group, criterion_main, Criterion};
use densest::instances::enumerate_cliques;
use densest::{fw::frank_wolfe, max_density, DensityNotion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{MonteCarlo, WorldSampler};
use ugraph::datasets;

fn bench_oracles(c: &mut Criterion) {
    let data = datasets::intel_lab_like(42);
    let mut mc = MonteCarlo::new(&data.graph, StdRng::seed_from_u64(7));
    let mask = mc.next_mask();
    let world = data.graph.world_from_mask(&mask);
    let n = world.num_nodes();

    let mut group = c.benchmark_group("rho_oracle/intellab_world");
    group.sample_size(20);
    group.bench_function("dinkelbach_flow", |b| {
        b.iter(|| max_density(&world, &DensityNotion::Edge))
    });
    for iters in [4usize, 16, 64] {
        group.bench_function(format!("frank_wolfe_T{iters}"), |b| {
            let inst = enumerate_cliques(&world, 2);
            b.iter(|| frank_wolfe(n, &inst, iters))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
