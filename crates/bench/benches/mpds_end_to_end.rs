//! End-to-end Algorithm 1 and Algorithm 5 costs at fixed θ, driven through
//! the `mpds::api` builder (the crate's single entry point).

use criterion::{criterion_group, criterion_main, Criterion};
use densest::DensityNotion;
use mpds::api::Query;
use ugraph::datasets;

fn bench_end_to_end(c: &mut Criterion) {
    let karate = datasets::karate_club();
    let intel = datasets::intel_lab_like(42);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("mpds/karate/theta64", |b| {
        let query = Query::mpds(DensityNotion::Edge).theta(64).k(5).seed(7);
        b.iter(|| query.run(&karate.graph).unwrap())
    });
    group.bench_function("mpds/intellab/theta16", |b| {
        let query = Query::mpds(DensityNotion::Edge).theta(16).k(5).seed(7);
        b.iter(|| query.run(&intel.graph).unwrap())
    });
    group.bench_function("nds/karate/theta64", |b| {
        let query = Query::nds(DensityNotion::Edge)
            .theta(64)
            .k(5)
            .min_size(2)
            .seed(7);
        b.iter(|| query.run(&karate.graph).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
