//! End-to-end Algorithm 1 and Algorithm 5 costs at fixed θ.

use criterion::{criterion_group, criterion_main, Criterion};
use densest::DensityNotion;
use mpds::estimate::{top_k_mpds, MpdsConfig};
use mpds::nds::{top_k_nds, NdsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use ugraph::datasets;

fn bench_end_to_end(c: &mut Criterion) {
    let karate = datasets::karate_club();
    let intel = datasets::intel_lab_like(42);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("mpds/karate/theta64", |b| {
        let cfg = MpdsConfig::new(DensityNotion::Edge, 64, 5);
        b.iter(|| {
            let mut mc = MonteCarlo::new(&karate.graph, StdRng::seed_from_u64(7));
            top_k_mpds(&karate.graph, &mut mc, &cfg)
        })
    });
    group.bench_function("mpds/intellab/theta16", |b| {
        let cfg = MpdsConfig::new(DensityNotion::Edge, 16, 5);
        b.iter(|| {
            let mut mc = MonteCarlo::new(&intel.graph, StdRng::seed_from_u64(7));
            top_k_mpds(&intel.graph, &mut mc, &cfg)
        })
    });
    group.bench_function("nds/karate/theta64", |b| {
        let cfg = NdsConfig::new(DensityNotion::Edge, 64, 5, 2);
        b.iter(|| {
            let mut mc = MonteCarlo::new(&karate.graph, StdRng::seed_from_u64(7));
            top_k_nds(&karate.graph, &mut mc, &cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
