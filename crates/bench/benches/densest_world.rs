//! Per-world densest-subgraph cost across density notions (the microbench
//! behind Fig. 16's ordering: edge < cliques/patterns).

use criterion::{criterion_group, criterion_main, Criterion};
use densest::{all_densest, DensityNotion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{MonteCarlo, WorldSampler};
use ugraph::{datasets, Graph, Pattern};

fn sample_world(name: &str) -> Graph {
    let data = match name {
        "karate" => datasets::karate_club(),
        "intellab" => datasets::intel_lab_like(42),
        _ => unreachable!(),
    };
    let mut mc = MonteCarlo::new(&data.graph, StdRng::seed_from_u64(7));
    let mask = mc.next_mask();
    data.graph.world_from_mask(&mask)
}

fn bench_densest(c: &mut Criterion) {
    let notions = [
        ("edge", DensityNotion::Edge),
        ("3-clique", DensityNotion::Clique(3)),
        ("4-clique", DensityNotion::Clique(4)),
        ("2-star", DensityNotion::Pattern(Pattern::two_star())),
        ("diamond", DensityNotion::Pattern(Pattern::diamond())),
    ];
    for dataset in ["karate", "intellab"] {
        let world = sample_world(dataset);
        let mut group = c.benchmark_group(format!("all_densest/{dataset}"));
        group.sample_size(10);
        for (label, notion) in &notions {
            group.bench_function(*label, |b| b.iter(|| all_densest(&world, notion, 10_000)));
        }
        group.finish();
    }
}

criterion_group!(benches, bench_densest);
criterion_main!(benches);
