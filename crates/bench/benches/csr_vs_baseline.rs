//! CSR graph core vs. the pre-refactor adjacency-list baseline.
//!
//! Interactive counterpart of the `bench_report` binary (which produces the
//! machine-readable `BENCH_pr2.json` the CI regression gate consumes): world
//! materialization and neighborhood iteration measured against the legacy
//! layouts preserved in `mpds_bench::legacy`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mpds_bench::legacy::AdjListGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampling::{MonteCarlo, WorldSampler};
use ugraph::{generators, EdgeMask, Graph, UncertainGraph};

fn workload() -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let g = generators::barabasi_albert(2000, 8, &mut rng);
    let probs: Vec<f64> = (0..g.num_edges())
        .map(|_| rng.gen_range(0.1..0.9))
        .collect();
    UncertainGraph::new(g, probs)
}

fn bench_materialization(c: &mut Criterion) {
    let ug = workload();
    let n = ug.num_nodes();
    let edges = ug.graph().edges().to_vec();
    let mut group = c.benchmark_group("csr_vs_baseline/materialization");
    group.sample_size(40);

    let mut mc = MonteCarlo::with_stream(&ug, 1, 0);
    group.bench_function("legacy_adjlist", |b| {
        b.iter(|| {
            let mask = mc.next_mask();
            black_box(AdjListGraph::world_from_mask(n, &edges, &mask).num_edges())
        })
    });

    let mut mc = MonteCarlo::with_stream(&ug, 1, 0);
    let mut mask = EdgeMask::new(ug.num_edges());
    let mut world = Graph::default();
    group.bench_function("csr_recycled", |b| {
        b.iter(|| {
            mc.next_mask_into(&mut mask);
            world = ug.world_from_bitmap(&mask, std::mem::take(&mut world));
            black_box(world.num_edges())
        })
    });
    group.finish();
}

fn bench_neighborhood(c: &mut Criterion) {
    let ug = workload();
    let n = ug.num_nodes();
    let legacy = AdjListGraph::from_edges(n, ug.graph().edges());
    let csr = ug.graph();
    let mut group = c.benchmark_group("csr_vs_baseline/neighborhood_sweep");
    group.sample_size(60);

    group.bench_function("legacy_adjlist", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..n as u32 {
                for &w in legacy.neighbors(v) {
                    acc += w as u64;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("csr", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..n as u32 {
                for &w in csr.neighbors(v) {
                    acc += w as u64;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_materialization, bench_neighborhood);
criterion_main!(benches);
