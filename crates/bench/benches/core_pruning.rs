//! Core-pruning ablation (DESIGN.md §5.5): the `(⌈ρ̃⌉, ·)`-core reduction of
//! paper Line 2 vs running the flow machinery on the whole world.

use criterion::{criterion_group, criterion_main, Criterion};
use densest::solve::max_density_unpruned;
use densest::{max_density, DensityNotion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{MonteCarlo, WorldSampler};
use ugraph::datasets;

fn bench_pruning(c: &mut Criterion) {
    let data = datasets::lastfm_like(42);
    let mut mc = MonteCarlo::new(&data.graph, StdRng::seed_from_u64(7));
    let mask = mc.next_mask();
    let world = data.graph.world_from_mask(&mask);

    // Sanity: both must agree on rho*.
    assert_eq!(
        max_density(&world, &DensityNotion::Edge),
        max_density_unpruned(&world, &DensityNotion::Edge)
    );

    let mut group = c.benchmark_group("core_pruning/lastfm_world");
    group.sample_size(10);
    group.bench_function("pruned", |b| {
        b.iter(|| max_density(&world, &DensityNotion::Edge))
    });
    group.bench_function("unpruned", |b| {
        b.iter(|| max_density_unpruned(&world, &DensityNotion::Edge))
    });
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
