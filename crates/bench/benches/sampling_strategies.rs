//! Sampling-strategy microbench (Tables XIII–XIV ablation): cost of drawing
//! one possible world with MC, LP, and RSS.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{LazyPropagation, MonteCarlo, RecursiveStratified, WorldSampler};
use ugraph::datasets;

fn bench_samplers(c: &mut Criterion) {
    let data = datasets::lastfm_like(42);
    let g = &data.graph;
    let mut group = c.benchmark_group("sampler/next_mask/lastfm");
    group.sample_size(20);
    group.bench_function("MC", |b| {
        let mut s = MonteCarlo::new(g, StdRng::seed_from_u64(1));
        b.iter(|| s.next_mask())
    });
    group.bench_function("LP", |b| {
        let mut s = LazyPropagation::new(g, StdRng::seed_from_u64(1));
        b.iter(|| s.next_mask())
    });
    group.bench_function("RSS", |b| {
        let mut s = RecursiveStratified::new(g, 3, StdRng::seed_from_u64(1));
        b.iter(|| s.next_mask())
    });
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
