//! TFP closed-itemset miner cost on NDS-shaped transaction sets (many nearly
//! identical node sets with small perturbations).

use criterion::{criterion_group, criterion_main, Criterion};
use itemset::top_k_closed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synth_transactions(theta: usize, core: usize, jitter: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..theta)
        .map(|_| {
            let mut t: Vec<u32> = (0..core as u32).collect();
            // Drop a couple of core items and add a couple of noise items.
            for _ in 0..jitter {
                if rng.gen_bool(0.5) && !t.is_empty() {
                    let i = rng.gen_range(0..t.len());
                    t.remove(i);
                } else {
                    t.push(core as u32 + rng.gen_range(0..20));
                }
            }
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect()
}

fn bench_tfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tfp");
    group.sample_size(20);
    for (theta, core, jitter) in [(160, 20, 3), (640, 40, 5)] {
        let txs = synth_transactions(theta, core, jitter, 42);
        group.bench_function(format!("theta{theta}_core{core}"), |b| {
            b.iter(|| top_k_closed(&txs, 10, 4, 1_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tfp);
criterion_main!(benches);
