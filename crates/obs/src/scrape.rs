//! Shared scrape parsing: flat-JSON key scans and Prometheus text parsing.
//!
//! The load harness, the access logger, and loopback tests all read values
//! back out of server responses. Before this module each call site carried
//! its own ad-hoc string scan; they now share these tested parsers so a new
//! metric family cannot silently break a `--check` run.
//!
//! Two families of helpers:
//!
//! * [`json_uint`] / [`json_str`] — scans over the workspace's
//!   deterministic flat JSON (unique keys, no escapes in the scanned
//!   values), as emitted by `JsonWriter`. These are *scans*, not a JSON
//!   parser: the first occurrence of `"key":` wins.
//! * [`prom_value`] / [`prom_sum`] / [`prom_histogram`] — line-oriented
//!   parsing of the Prometheus text format rendered by [`crate::prom`],
//!   with label-subset matching so callers can aggregate across label
//!   dimensions they don't care about.

use crate::hist::{HistogramSnapshot, BUCKETS};

/// Scans a flat JSON body for `"key": <unsigned integer>` and returns the
/// integer. Returns `None` when the key is absent or not followed by
/// digits.
///
/// ```
/// use mpds_obs::scrape::json_uint;
/// let body = r#"{"hits":3,"misses":10}"#;
/// assert_eq!(json_uint(body, "misses"), Some(10));
/// assert_eq!(json_uint(body, "entries"), None);
/// ```
pub fn json_uint(body: &str, key: &str) -> Option<u64> {
    let rest = after_key(body, key)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Scans a flat JSON body for `"key": "<string>"` and returns the string
/// slice up to the closing quote. The scanned value must not contain
/// escaped quotes (true for every identifier-like field the workspace
/// emits: stop reasons, dataset names, algorithm labels).
///
/// ```
/// use mpds_obs::scrape::json_str;
/// let body = r#"{"stats":{"stop_reason":"stable","worlds_sampled":64}}"#;
/// assert_eq!(json_str(body, "stop_reason"), Some("stable"));
/// assert_eq!(json_str(body, "worlds_sampled"), None);
/// ```
pub fn json_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(body, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Returns the slice immediately after `"key":` (whitespace-tolerant).
fn after_key<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)?;
    Some(body[at + needle.len()..].trim_start())
}

/// One parsed Prometheus sample line: metric name, label pairs, value, and
/// (for histogram buckets rendered with
/// [`crate::prom::PromText::histogram_with_exemplars`]) the attached
/// exemplar.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label key/value pairs in order of appearance.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The OpenMetrics exemplar attached to this sample, if any.
    pub exemplar: Option<PromExemplar>,
}

/// An OpenMetrics exemplar parsed from a `… # {labels} value` suffix.
#[derive(Clone, Debug, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs in order of appearance (e.g. `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
}

impl PromExemplar {
    /// Returns the value of exemplar label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The `trace_id` exemplar label parsed back to its integer form, if
    /// present and well-formed (16 lowercase hex digits).
    pub fn trace_id(&self) -> Option<u64> {
        crate::flight::parse_trace_id(self.label("trace_id")?)
    }
}

impl PromSample {
    /// Returns the value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every `(key, value)` pair in `want` appears in this sample's
    /// labels (subset match).
    pub fn matches(&self, want: &[(&str, &str)]) -> bool {
        want.iter()
            .all(|(k, v)| self.label(k).is_some_and(|have| have == *v))
    }
}

/// Parses every sample line of a Prometheus text body (comments and blank
/// lines are skipped; malformed lines are ignored).
pub fn prom_parse(text: &str) -> Vec<PromSample> {
    text.lines().filter_map(parse_line).collect()
}

fn parse_line(line: &str) -> Option<PromSample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    // Split off an OpenMetrics exemplar suffix (` # {labels} value`) before
    // locating the sample value: the suffix's own value would otherwise win
    // the rsplit. Label *values* could contain " # {" only via escapes,
    // which the renderer never emits for the metric name/label section.
    let (line, exemplar) = match line.split_once(" # {") {
        None => (line, None),
        Some((main, ex)) => (main, parse_exemplar(ex)),
    };
    let (name_labels, value) = line.rsplit_once(' ')?;
    let value = parse_value(value)?;
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.trim().to_string(), Vec::new()),
        Some((name, rest)) => {
            let rest = rest.strip_suffix('}')?;
            (name.to_string(), parse_labels(rest)?)
        }
    };
    Some(PromSample {
        name,
        labels,
        value,
        exemplar,
    })
}

fn parse_value(value: &str) -> Option<f64> {
    match value {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        v => v.parse().ok(),
    }
}

/// Parses the tail of an exemplar suffix, after the opening `{`:
/// `trace_id="…"} 813`.
fn parse_exemplar(rest: &str) -> Option<PromExemplar> {
    let (labels, value) = rest.split_once("} ")?;
    Some(PromExemplar {
        labels: parse_labels(labels)?,
        value: parse_value(value.trim())?,
    })
}

/// Parses `k1="v1",k2="v2"` respecting backslash escapes inside values.
fn parse_labels(mut rest: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim().to_string();
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut consumed = None;
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return None,
                },
                '"' => {
                    consumed = Some(eq + 2 + i + 1);
                    break;
                }
                _ => value.push(ch),
            }
        }
        let end = consumed?;
        labels.push((key, value));
        rest = rest[end..].strip_prefix(',').unwrap_or(&rest[end..]);
    }
    Some(labels)
}

/// Returns the value of the first sample named `name` whose labels contain
/// every pair in `labels`.
///
/// ```
/// use mpds_obs::scrape::prom_value;
/// let text = "m{a=\"x\"} 3\nm{a=\"y\"} 5\n";
/// assert_eq!(prom_value(text, "m", &[("a", "y")]), Some(5.0));
/// ```
pub fn prom_value(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    prom_parse(text)
        .into_iter()
        .find(|s| s.name == name && s.matches(labels))
        .map(|s| s.value)
}

/// Sums every sample named `name` whose labels contain every pair in
/// `labels`; `None` when nothing matches. Useful for collapsing a label
/// dimension (e.g. summing a counter across cache sources).
pub fn prom_sum(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let mut total = 0.0;
    let mut any = false;
    for s in prom_parse(text) {
        if s.name == name && s.matches(labels) {
            total += s.value;
            any = true;
        }
    }
    any.then_some(total)
}

/// Reconstructs a [`HistogramSnapshot`] from the `_bucket`/`_sum` series of
/// histogram `name`, summing every series whose labels contain `labels`.
///
/// Requires the fixed 64-bucket layout rendered by
/// [`crate::prom::PromText::histogram`] (finite `le` bounds of the form
/// `2^i - 1`); returns `None` if no matching buckets exist or a bound does
/// not fit the layout.
///
/// ```
/// use mpds_obs::{Histogram, PromText};
/// use mpds_obs::scrape::prom_histogram;
/// let h = Histogram::new();
/// for v in [10u64, 20, 4000] {
///     h.record(v);
/// }
/// let mut w = PromText::new();
/// w.histogram("lat_us", &[("src", "MISS")], &h.snapshot());
/// let text = w.finish();
/// let back = prom_histogram(&text, "lat_us", &[]).unwrap();
/// assert_eq!(back, h.snapshot());
/// ```
pub fn prom_histogram(
    text: &str,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<HistogramSnapshot> {
    let bucket_name = format!("{name}_bucket");
    let sum_name = format!("{name}_sum");
    // Cumulative count per bucket index, summed across matching series.
    let mut cumulative = [0u64; BUCKETS];
    let mut seen = [false; BUCKETS];
    let mut sum = 0u64;
    let mut any = false;
    for s in prom_parse(text) {
        if s.name == sum_name && s.matches(labels) {
            sum += s.value as u64;
        }
        if s.name != bucket_name || !s.matches(labels) {
            continue;
        }
        let le = s.label("le")?;
        let idx = if le == "+Inf" {
            BUCKETS - 1
        } else {
            let bound: u64 = le.parse().ok()?;
            let next = bound.checked_add(1)?;
            if !next.is_power_of_two() {
                return None;
            }
            next.trailing_zeros() as usize
        };
        if idx >= BUCKETS {
            return None;
        }
        cumulative[idx] += s.value as u64;
        seen[idx] = true;
        any = true;
    }
    if !any {
        return None;
    }
    // De-cumulate: bucket i count = cum[i] - cum[i-1]. Every bucket of the
    // fixed layout is rendered, so missing indices mean a foreign layout.
    if seen.iter().any(|&s| !s) {
        return None;
    }
    let mut counts = [0u64; BUCKETS];
    let mut prev = 0u64;
    for i in 0..BUCKETS {
        counts[i] = cumulative[i].checked_sub(prev)?;
        prev = cumulative[i];
    }
    Some(HistogramSnapshot::from_parts(counts, sum))
}

/// Collects the exemplars attached to histogram `name`'s `_bucket` series
/// (label-subset matched), as `(bucket index, exemplar)` pairs in bucket
/// order. Buckets without exemplars are absent.
///
/// ```
/// use mpds_obs::{bucket_index, BucketExemplars, Histogram, PromText};
/// use mpds_obs::scrape::prom_exemplars;
/// let h = Histogram::new();
/// h.record(900);
/// let e = BucketExemplars::new();
/// e.observe(900, 0x2a);
/// let mut w = PromText::new();
/// w.histogram_with_exemplars("lat_us", &[], &h.snapshot(), &e.snapshot());
/// let found = prom_exemplars(&w.finish(), "lat_us", &[]);
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].0, bucket_index(900));
/// assert_eq!(found[0].1.trace_id(), Some(0x2a));
/// ```
pub fn prom_exemplars(
    text: &str,
    name: &str,
    labels: &[(&str, &str)],
) -> Vec<(usize, PromExemplar)> {
    let bucket_name = format!("{name}_bucket");
    let mut out = Vec::new();
    for s in prom_parse(text) {
        if s.name != bucket_name || !s.matches(labels) {
            continue;
        }
        let Some(le) = s.label("le").map(str::to_string) else {
            continue;
        };
        let Some(ex) = s.exemplar else {
            continue;
        };
        let idx = if le == "+Inf" {
            BUCKETS - 1
        } else {
            let Some(next) = le.parse::<u64>().ok().and_then(|b| b.checked_add(1)) else {
                continue;
            };
            if !next.is_power_of_two() {
                continue;
            }
            next.trailing_zeros() as usize
        };
        if idx < BUCKETS {
            out.push((idx, ex));
        }
    }
    out.sort_by_key(|(i, _)| *i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::prom::PromText;

    #[test]
    fn json_uint_scans_first_occurrence() {
        let body = r#"{"cache":{"hits":12,"misses":4},"served":100}"#;
        assert_eq!(json_uint(body, "hits"), Some(12));
        assert_eq!(json_uint(body, "served"), Some(100));
        assert_eq!(json_uint(body, "absent"), None);
        // Key present but value is a string, not digits.
        assert_eq!(json_uint(r#"{"k":"v"}"#, "k"), None);
    }

    #[test]
    fn json_uint_tolerates_space_after_colon() {
        assert_eq!(json_uint(r#"{"k": 7}"#, "k"), Some(7));
    }

    #[test]
    fn json_str_extracts_identifiers() {
        let body = r#"{"stop_reason":"theta_reached","dataset":"karate"}"#;
        assert_eq!(json_str(body, "stop_reason"), Some("theta_reached"));
        assert_eq!(json_str(body, "dataset"), Some("karate"));
        assert_eq!(json_str(body, "missing"), None);
        // Numeric value is not a string.
        assert_eq!(json_str(r#"{"k":5}"#, "k"), None);
    }

    #[test]
    fn prom_lines_parse_names_labels_values() {
        let text = "# HELP m help\n# TYPE m counter\nm 3\nm{a=\"x\",b=\"y\"} 4.5\n";
        let samples = prom_parse(text);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "m");
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].label("b"), Some("y"));
        assert_eq!(samples[1].value, 4.5);
    }

    #[test]
    fn label_escapes_round_trip() {
        let mut w = PromText::new();
        w.sample_u64("m", &[("d", "a\"b\\c\nd")], 1);
        let samples = prom_parse(&w.finish());
        assert_eq!(samples[0].label("d"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn subset_matching_sums_across_series() {
        let text = "m{src=\"HIT\",code=\"200\"} 3\nm{src=\"MISS\",code=\"200\"} 4\n";
        assert_eq!(prom_sum(text, "m", &[("code", "200")]), Some(7.0));
        assert_eq!(prom_sum(text, "m", &[("src", "MISS")]), Some(4.0));
        assert_eq!(prom_sum(text, "m", &[("src", "NONE")]), None);
        assert_eq!(prom_value(text, "m", &[("src", "HIT")]), Some(3.0));
    }

    // Exemplar suffixes round-trip: the bucket value/cumulative counts are
    // untouched (prom_histogram still reconstructs the exact snapshot) and
    // the trace id + observed value come back out bucket-aligned.
    #[test]
    fn exemplar_suffixes_round_trip() {
        use crate::hist::{bucket_index, BucketExemplars};
        let h = Histogram::new();
        for v in [3u64, 900, 900, 70_000] {
            h.record(v);
        }
        let e = BucketExemplars::new();
        e.observe(900, 0x00ab_cdef_0123_4567);
        e.observe(70_000, 0x1);
        let mut w = PromText::new();
        w.histogram_with_exemplars(
            "lat",
            &[("endpoint", "query")],
            &h.snapshot(),
            &e.snapshot(),
        );
        let text = w.finish();

        // The exemplar suffix must not perturb value parsing.
        assert_eq!(
            prom_histogram(&text, "lat", &[("endpoint", "query")]).unwrap(),
            h.snapshot()
        );
        let found = prom_exemplars(&text, "lat", &[("endpoint", "query")]);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, bucket_index(900));
        assert_eq!(found[0].1.trace_id(), Some(0x00ab_cdef_0123_4567));
        assert_eq!(found[0].1.value, 900.0);
        assert_eq!(found[1].0, bucket_index(70_000));
        assert_eq!(found[1].1.trace_id(), Some(0x1));
        // Label-subset mismatch finds nothing.
        assert!(prom_exemplars(&text, "lat", &[("endpoint", "batch")]).is_empty());
    }

    #[test]
    fn histogram_round_trips_and_merges_series() {
        let hit = Histogram::new();
        let miss = Histogram::new();
        for v in [3u64, 9, 81, 6000] {
            hit.record(v);
        }
        for v in [100u64, 100, 70000] {
            miss.record(v);
        }
        let mut w = PromText::new();
        w.histogram("lat", &[("src", "HIT")], &hit.snapshot());
        w.histogram("lat", &[("src", "MISS")], &miss.snapshot());
        let text = w.finish();

        // Single-series extraction.
        assert_eq!(
            prom_histogram(&text, "lat", &[("src", "MISS")]).unwrap(),
            miss.snapshot()
        );
        // Subset match merges both series.
        let mut merged = hit.snapshot();
        merged.merge(&miss.snapshot());
        assert_eq!(prom_histogram(&text, "lat", &[]).unwrap(), merged);
        // No match.
        assert!(prom_histogram(&text, "lat", &[("src", "COALESCED")]).is_none());
        assert!(prom_histogram(&text, "other", &[]).is_none());
    }
}
