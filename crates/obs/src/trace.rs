//! Cheap per-stage tracing: a [`Recorder`] accumulates wall time per
//! pipeline [`Stage`], and a [`Span`] is an RAII guard that times one stage
//! invocation.
//!
//! The design constraint is the sampling hot loop: when a recorder is
//! disabled (the default for un-profiled requests), [`Recorder::span`]
//! returns an inert guard without reading the clock — the whole per-world
//! cost is one branch. When enabled, each span costs two monotonic clock
//! reads and two relaxed `fetch_add`s on drop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented stages of the query pipeline, in execution order.
///
/// `SnapshotResolve`, `CacheProbe`, and `JsonRender` are timed once per
/// request by the serving engine; `WorldMaterialize`,
/// `EstimatorAccumulate`, and `StableTracker` are timed once per sampled
/// world inside the core sampling loop. `WalAppend`, `WalFsync`, and
/// `StoreCheckpoint` time the durable-store halves of a mutating request;
/// `RefineRepublish` times the background refinement worker's recompute +
/// cache republish for a budget-truncated query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Resolving the dataset name to a graph snapshot in the registry.
    SnapshotResolve,
    /// Probing the response cache (and joining in-flight duplicates).
    CacheProbe,
    /// Drawing the next world: mask sampling plus subgraph materialization.
    WorldMaterialize,
    /// Folding the materialized world into the density estimator.
    EstimatorAccumulate,
    /// Checking top-k stability for early stopping.
    StableTracker,
    /// Rendering the response body JSON.
    JsonRender,
    /// Framing and writing an update batch into the dataset WAL.
    WalAppend,
    /// Flushing the WAL to stable storage (`fsync`), per the sync policy.
    WalFsync,
    /// Writing a snapshot checkpoint and truncating the WAL behind it.
    StoreCheckpoint,
    /// Background refinement: recompute plus cache republish of a
    /// budget-truncated result.
    RefineRepublish,
}

impl Stage {
    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = 10;

    /// Every stage, in execution order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::SnapshotResolve,
        Stage::CacheProbe,
        Stage::WorldMaterialize,
        Stage::EstimatorAccumulate,
        Stage::StableTracker,
        Stage::JsonRender,
        Stage::WalAppend,
        Stage::WalFsync,
        Stage::StoreCheckpoint,
        Stage::RefineRepublish,
    ];

    /// The stage's stable snake_case name, used in `?profile=1` blocks and
    /// Prometheus labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::SnapshotResolve => "snapshot_resolve",
            Stage::CacheProbe => "cache_probe",
            Stage::WorldMaterialize => "world_materialize",
            Stage::EstimatorAccumulate => "estimator_accumulate",
            Stage::StableTracker => "stable_tracker",
            Stage::JsonRender => "json_render",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::StoreCheckpoint => "store_checkpoint",
            Stage::RefineRepublish => "refine_republish",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulates per-[`Stage`] wall time and invocation counts.
///
/// A recorder is either *enabled* (spans read the clock and record) or
/// *disabled* (spans are inert). Disabled recorders still accept
/// [`Recorder::record_ns`] and [`Recorder::absorb`], so one always-on
/// recorder can serve as a process-wide aggregation sink.
///
/// ```
/// use mpds_obs::{Recorder, Stage};
/// let rec = Recorder::new(true);
/// {
///     let _s = rec.span(Stage::JsonRender);
/// }
/// let totals = rec.totals();
/// assert_eq!(totals.count(Stage::JsonRender), 1);
/// assert_eq!(totals.count(Stage::CacheProbe), 0);
/// ```
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    total_ns: [AtomicU64; Stage::COUNT],
    count: [AtomicU64; Stage::COUNT],
    // Stage index + 1 of the innermost live span; 0 when idle. Lets the
    // flight recorder report what an in-flight request is doing right now.
    current: AtomicU64,
}

impl Default for Recorder {
    /// A *disabled* recorder — the right default for aggregation sinks,
    /// which are fed via [`Recorder::absorb`]/[`Recorder::record_ns`].
    fn default() -> Self {
        Recorder::new(false)
    }
}

impl Recorder {
    /// Creates a recorder; `enabled` controls whether [`Recorder::span`]
    /// reads the clock.
    pub fn new(enabled: bool) -> Self {
        Recorder {
            enabled,
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            count: std::array::from_fn(|_| AtomicU64::new(0)),
            current: AtomicU64::new(0),
        }
    }

    /// Whether spans from this recorder time their stage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing `stage`; the returned guard records on drop. When the
    /// recorder is disabled this is a no-op that never reads the clock.
    #[inline]
    #[must_use = "the span records its stage when dropped"]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        if self.enabled {
            let prev = self
                .current
                .swap(stage.index() as u64 + 1, Ordering::Relaxed);
            Span {
                active: Some((self, stage, Instant::now(), prev)),
            }
        } else {
            Span { active: None }
        }
    }

    /// The stage the innermost live [`Span`] is timing right now, or `None`
    /// when no span is active (or the recorder is disabled).
    pub fn current_stage(&self) -> Option<Stage> {
        let marker = self.current.load(Ordering::Relaxed);
        if marker == 0 {
            None
        } else {
            Stage::ALL.get(marker as usize - 1).copied()
        }
    }

    /// Directly adds one invocation of `stage` lasting `ns` nanoseconds,
    /// bypassing the enabled gate (used for aggregation sinks).
    #[inline]
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        let i = stage.index();
        self.total_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.count[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a finished request's [`StageTotals`] into this recorder
    /// (aggregating per-request profiles into process totals).
    pub fn absorb(&self, totals: &StageTotals) {
        for i in 0..Stage::COUNT {
            self.total_ns[i].fetch_add(totals.total_ns[i], Ordering::Relaxed);
            self.count[i].fetch_add(totals.count[i], Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time copy of the accumulated stage totals.
    pub fn totals(&self) -> StageTotals {
        let mut t = StageTotals::default();
        for i in 0..Stage::COUNT {
            t.total_ns[i] = self.total_ns[i].load(Ordering::Relaxed);
            t.count[i] = self.count[i].load(Ordering::Relaxed);
        }
        t
    }
}

/// RAII guard returned by [`Recorder::span`]; records elapsed wall time for
/// its stage when dropped (inert when the recorder is disabled).
#[derive(Debug)]
pub struct Span<'a> {
    active: Option<(&'a Recorder, Stage, Instant, u64)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((rec, stage, start, prev)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.record_ns(stage, ns);
            rec.current.store(prev, Ordering::Relaxed);
        }
    }
}

/// An owned copy of a [`Recorder`]'s accumulated state: total nanoseconds
/// and invocation count per stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    total_ns: [u64; Stage::COUNT],
    count: [u64; Stage::COUNT],
}

impl StageTotals {
    /// Total nanoseconds accumulated for `stage`.
    pub fn total_ns(&self, stage: Stage) -> u64 {
        self.total_ns[stage.index()]
    }

    /// Total microseconds accumulated for `stage` (integer division).
    pub fn total_us(&self, stage: Stage) -> u64 {
        self.total_ns[stage.index()] / 1_000
    }

    /// Number of recorded invocations of `stage`.
    pub fn count(&self, stage: Stage) -> u64 {
        self.count[stage.index()]
    }

    /// Sums another totals into this one.
    pub fn merge(&mut self, other: &StageTotals) {
        for i in 0..Stage::COUNT {
            self.total_ns[i] += other.total_ns[i];
            self.count[i] += other.count[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let rec = Recorder::new(false);
        for stage in Stage::ALL {
            let _s = rec.span(stage);
        }
        assert_eq!(rec.totals(), StageTotals::default());
    }

    #[test]
    fn enabled_spans_count_and_accumulate() {
        let rec = Recorder::new(true);
        for _ in 0..3 {
            let _s = rec.span(Stage::EstimatorAccumulate);
        }
        let t = rec.totals();
        assert_eq!(t.count(Stage::EstimatorAccumulate), 3);
        assert_eq!(t.count(Stage::WorldMaterialize), 0);
    }

    #[test]
    fn concurrent_spans_merge_exactly() {
        use std::sync::Arc;
        let shared = Arc::new(Recorder::new(true));
        let locals: Vec<Arc<Recorder>> = (0..4).map(|_| Arc::new(Recorder::new(true))).collect();
        std::thread::scope(|scope| {
            for local in &locals {
                let shared = Arc::clone(&shared);
                let local = Arc::clone(local);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        let stage = Stage::ALL[(i as usize) % Stage::COUNT];
                        shared.record_ns(stage, i);
                        local.record_ns(stage, i);
                    }
                });
            }
        });
        let global = Recorder::new(false);
        for local in &locals {
            global.absorb(&local.totals());
        }
        assert_eq!(global.totals(), shared.totals());
        let counts: u64 = Stage::ALL.iter().map(|&s| global.totals().count(s)).sum();
        assert_eq!(counts, 20_000);
    }

    #[test]
    fn current_stage_tracks_nested_spans() {
        let rec = Recorder::new(true);
        assert_eq!(rec.current_stage(), None);
        {
            let _outer = rec.span(Stage::WorldMaterialize);
            assert_eq!(rec.current_stage(), Some(Stage::WorldMaterialize));
            {
                let _inner = rec.span(Stage::WalFsync);
                assert_eq!(rec.current_stage(), Some(Stage::WalFsync));
            }
            assert_eq!(rec.current_stage(), Some(Stage::WorldMaterialize));
        }
        assert_eq!(rec.current_stage(), None);
        let disabled = Recorder::new(false);
        let _s = disabled.span(Stage::JsonRender);
        assert_eq!(disabled.current_stage(), None);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "snapshot_resolve",
                "cache_probe",
                "world_materialize",
                "estimator_accumulate",
                "stable_tracker",
                "json_render",
                "wal_append",
                "wal_fsync",
                "store_checkpoint",
                "refine_republish"
            ]
        );
    }
}
