//! Per-request flight recorder: trace ids, in-flight introspection, and
//! retained rings of completed and slow requests.
//!
//! The [`FlightRecorder`] is the request-scoped complement to the
//! fleet-level aggregates in [`crate::hist`]/[`crate::trace`]: every
//! request is minted a process-unique trace id ([`TraceIdGen`]), registered
//! while in flight (so a live `/debug/requests` endpoint can show its age
//! and the stage it is executing right now), and on completion folded into
//! a bounded ring of recent [`TraceRecord`]s. Requests whose wall time
//! crosses a configurable threshold are additionally promoted into a
//! separate slow-query ring that survives much longer than the completed
//! ring under load, so a latency spike stays debuggable after the fact.
//!
//! Concurrency: the in-flight table is sharded by trace id across
//! [`SHARDS`] mutexes (a request takes exactly two uncontended-in-practice
//! lock acquisitions, registration and completion); the completed and slow
//! rings are each a single mutex around a `VecDeque`, touched once per
//! completion. No lock is held across a clock read or an allocation larger
//! than one record. Crucially, in-flight requests live in the shard maps —
//! not the rings — so ring eviction can never drop a request that has not
//! finished (see `tests/flight_prop.rs`).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{Recorder, Stage, StageTotals};

/// Number of in-flight table shards (must be a power of two).
pub const SHARDS: usize = 16;

/// Formats a trace id the way every surface of the workspace emits it:
/// 16 lowercase hex digits (`X-Trace-Id` header, access log, `/debug/*`
/// JSON, and Prometheus exemplar labels).
///
/// ```
/// assert_eq!(mpds_obs::flight::format_trace_id(0x2a), "000000000000002a");
/// ```
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a trace id previously rendered by [`format_trace_id`]: exactly 16
/// lowercase hex digits.
///
/// ```
/// use mpds_obs::flight::{format_trace_id, parse_trace_id};
/// assert_eq!(parse_trace_id(&format_trace_id(u64::MAX)), Some(u64::MAX));
/// assert_eq!(parse_trace_id("2a"), None);
/// assert_eq!(parse_trace_id("00000000000000ZZ"), None);
/// ```
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mints process-unique, never-zero trace ids: a seeded counter fed through
/// a splitmix64 mix, so consecutive requests get well-scattered ids (good
/// shard distribution, no cross-restart collisions in practice) while the
/// generator itself is one relaxed `fetch_add`.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    counter: AtomicU64,
}

impl TraceIdGen {
    /// Creates a generator from an explicit seed (tests pass a constant for
    /// reproducible ids).
    pub fn new(seed: u64) -> Self {
        TraceIdGen {
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Creates a generator seeded from the wall clock, so two processes
    /// booted at different instants mint disjoint id streams.
    pub fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        TraceIdGen::new(splitmix64(nanos))
    }

    /// Returns the next trace id (never zero — zero is the "no trace"
    /// sentinel in [`crate::hist::BucketExemplars`]).
    pub fn mint(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// Whether a [`TraceRecord`] describes a request that is still executing or
/// one that has completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceState {
    /// The request is registered but [`FlightRecorder::finish`] has not run.
    InFlight,
    /// The request completed and was retained in a ring.
    Completed,
}

impl TraceState {
    /// Stable snake_case name used in `/debug/*` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceState::InFlight => "in_flight",
            TraceState::Completed => "completed",
        }
    }
}

/// One request's flight record: identity, where it is (or ended up), and
/// its per-stage time breakdown.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// The request's process-unique trace id.
    pub trace_id: u64,
    /// Bounded-cardinality endpoint label (e.g. `query`, `debug`).
    pub endpoint: String,
    /// HTTP method, or empty when the request line never parsed.
    pub method: String,
    /// The raw request target (path + query string).
    pub target: String,
    /// In flight or completed.
    pub state: TraceState,
    /// Response status code; `0` while the request is in flight.
    pub status: u16,
    /// Wall microseconds: total latency once completed, age so far while in
    /// flight.
    pub wall_us: u64,
    /// The stage the request is executing right now (in-flight only, and
    /// only when its recorder is enabled).
    pub current_stage: Option<Stage>,
    /// Whether the record was promoted into the slow-query ring.
    pub slow: bool,
    /// Per-stage wall time and invocation counts recorded so far.
    pub totals: StageTotals,
}

#[derive(Debug)]
struct InFlightEntry {
    endpoint: String,
    method: String,
    target: String,
    started: Instant,
    recorder: Arc<Recorder>,
}

impl InFlightEntry {
    fn record(&self, trace_id: u64) -> TraceRecord {
        TraceRecord {
            trace_id,
            endpoint: self.endpoint.clone(),
            method: self.method.clone(),
            target: self.target.clone(),
            state: TraceState::InFlight,
            status: 0,
            wall_us: crate::micros_since(self.started),
            current_stage: self.recorder.current_stage(),
            slow: false,
            totals: self.recorder.totals(),
        }
    }
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    buf: VecDeque<TraceRecord>,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
        }
    }

    fn push(&mut self, record: TraceRecord) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(record);
    }

    /// Newest-first copy of the retained records.
    fn newest_first(&self) -> Vec<TraceRecord> {
        self.buf.iter().rev().cloned().collect()
    }

    fn find(&self, trace_id: u64) -> Option<TraceRecord> {
        self.buf
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }
}

/// The per-request flight recorder: an in-flight table plus bounded rings
/// of completed and slow requests.
///
/// ```
/// use std::sync::Arc;
/// use mpds_obs::flight::{FlightRecorder, TraceState};
/// use mpds_obs::Recorder;
///
/// let f = FlightRecorder::new(true, 8, 8, 1_000_000);
/// let rec = Arc::new(Recorder::new(true));
/// f.begin(42, "query", "GET", "/query?dataset=karate", Arc::clone(&rec));
/// assert_eq!(f.in_flight().len(), 1);
/// f.finish(42, 200, 123, true);
/// let trace = f.lookup(42).unwrap();
/// assert_eq!(trace.state, TraceState::Completed);
/// assert_eq!(trace.status, 200);
/// assert!(!trace.slow); // 123 us is under the 1 s threshold
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    slow_threshold_us: u64,
    shards: Vec<Mutex<HashMap<u64, InFlightEntry>>>,
    completed: Mutex<Ring>,
    slow: Mutex<Ring>,
    slow_promoted: AtomicU64,
}

impl FlightRecorder {
    /// Creates a flight recorder.
    ///
    /// `enabled` gates whether the serving layer records at all (a disabled
    /// recorder keeps the `/debug/*` endpoints wired but empty);
    /// `capacity`/`slow_capacity` bound the completed and slow rings;
    /// `slow_threshold_us` is the promotion threshold for the slow ring.
    pub fn new(
        enabled: bool,
        capacity: usize,
        slow_capacity: usize,
        slow_threshold_us: u64,
    ) -> Self {
        FlightRecorder {
            enabled,
            slow_threshold_us,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            completed: Mutex::new(Ring::new(capacity)),
            slow: Mutex::new(Ring::new(slow_capacity)),
            slow_promoted: AtomicU64::new(0),
        }
    }

    /// Whether the serving layer should register requests here (and hand
    /// them enabled [`Recorder`]s).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-ring promotion threshold, in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Total number of requests ever promoted into the slow ring (a
    /// monotone counter; the ring itself is bounded).
    pub fn slow_promoted(&self) -> u64 {
        self.slow_promoted.load(Ordering::Relaxed)
    }

    fn shard(&self, trace_id: u64) -> &Mutex<HashMap<u64, InFlightEntry>> {
        &self.shards[(trace_id % SHARDS as u64) as usize]
    }

    /// Registers an in-flight request. No-op when the recorder is disabled.
    /// `recorder` is the request's own stage recorder; its live state backs
    /// the `current_stage`/partial-totals view in [`FlightRecorder::in_flight`].
    pub fn begin(
        &self,
        trace_id: u64,
        endpoint: &str,
        method: &str,
        target: &str,
        recorder: Arc<Recorder>,
    ) {
        if !self.enabled {
            return;
        }
        let entry = InFlightEntry {
            endpoint: endpoint.to_string(),
            method: method.to_string(),
            target: target.to_string(),
            started: Instant::now(),
            recorder,
        };
        self.shard(trace_id).lock().unwrap().insert(trace_id, entry);
    }

    /// Completes a request: removes it from the in-flight table and retains
    /// it in the completed ring (and the slow ring when `slow_eligible` and
    /// `wall_us` crosses the threshold — self-observation traffic like
    /// `/debug/*` and `/metrics` passes `slow_eligible = false`).
    ///
    /// Returns whether the request was promoted as slow. Unknown trace ids
    /// (never registered, e.g. while disabled) are a no-op.
    pub fn finish(&self, trace_id: u64, status: u16, wall_us: u64, slow_eligible: bool) -> bool {
        let Some(entry) = self.shard(trace_id).lock().unwrap().remove(&trace_id) else {
            return false;
        };
        let slow = slow_eligible && wall_us >= self.slow_threshold_us;
        let record = TraceRecord {
            trace_id,
            endpoint: entry.endpoint,
            method: entry.method,
            target: entry.target,
            state: TraceState::Completed,
            status,
            wall_us,
            current_stage: None,
            slow,
            totals: entry.recorder.totals(),
        };
        if slow {
            self.slow_promoted.fetch_add(1, Ordering::Relaxed);
            self.slow.lock().unwrap().push(record.clone());
        }
        self.completed.lock().unwrap().push(record);
        slow
    }

    /// Every currently in-flight request, sorted by trace id (deterministic
    /// output for `/debug/requests`), each with its age and current stage.
    pub fn in_flight(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            out.extend(shard.iter().map(|(&id, entry)| entry.record(id)));
        }
        out.sort_by_key(|r| r.trace_id);
        out
    }

    /// The retained completed requests, newest first.
    pub fn completed(&self) -> Vec<TraceRecord> {
        self.completed.lock().unwrap().newest_first()
    }

    /// The retained slow requests, newest first.
    pub fn slow(&self) -> Vec<TraceRecord> {
        self.slow.lock().unwrap().newest_first()
    }

    /// Looks a trace id up across the in-flight table, then the slow ring,
    /// then the completed ring.
    pub fn lookup(&self, trace_id: u64) -> Option<TraceRecord> {
        {
            let shard = self.shard(trace_id).lock().unwrap();
            if let Some(entry) = shard.get(&trace_id) {
                return Some(entry.record(trace_id));
            }
        }
        if let Some(r) = self.slow.lock().unwrap().find(trace_id) {
            return Some(r);
        }
        self.completed.lock().unwrap().find(trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> Arc<Recorder> {
        Arc::new(Recorder::new(true))
    }

    #[test]
    fn trace_ids_are_unique_nonzero_and_round_trip() {
        let gen = TraceIdGen::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = gen.mint();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
            assert_eq!(parse_trace_id(&format_trace_id(id)), Some(id));
        }
    }

    #[test]
    fn completed_ring_evicts_oldest_only() {
        let f = FlightRecorder::new(true, 2, 2, u64::MAX);
        for id in 1..=3u64 {
            f.begin(id, "query", "GET", "/query", recorder());
            f.finish(id, 200, id * 10, true);
        }
        let ids: Vec<u64> = f.completed().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, [3, 2]); // newest first; id 1 evicted
        assert!(f.lookup(1).is_none());
        assert_eq!(f.lookup(3).unwrap().wall_us, 30);
    }

    #[test]
    fn slow_ring_promotes_past_threshold_and_respects_eligibility() {
        let f = FlightRecorder::new(true, 4, 4, 1_000);
        f.begin(1, "query", "GET", "/query", recorder());
        assert!(!f.finish(1, 200, 999, true)); // under threshold
        f.begin(2, "query", "GET", "/query", recorder());
        assert!(f.finish(2, 200, 1_000, true)); // at threshold
        f.begin(3, "metrics", "GET", "/metrics", recorder());
        assert!(!f.finish(3, 200, 50_000, false)); // self-traffic excluded
        let slow = f.slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, 2);
        assert!(slow[0].slow);
        assert_eq!(f.slow_promoted(), 1);
        // The excluded request still lands in the completed ring.
        assert_eq!(f.lookup(3).unwrap().status, 200);
    }

    #[test]
    fn slow_records_outlive_completed_ring_churn() {
        let f = FlightRecorder::new(true, 2, 4, 1_000);
        f.begin(99, "query", "GET", "/query?slow=1", recorder());
        f.finish(99, 200, 5_000, true);
        for id in 100..110u64 {
            f.begin(id, "query", "GET", "/query", recorder());
            f.finish(id, 200, 10, true);
        }
        // Churned out of the completed ring, still resolvable via slow ring.
        let r = f.lookup(99).unwrap();
        assert!(r.slow);
        assert_eq!(r.wall_us, 5_000);
    }

    #[test]
    fn in_flight_view_reports_age_stage_and_partial_totals() {
        let f = FlightRecorder::new(true, 4, 4, u64::MAX);
        let rec = recorder();
        f.begin(5, "update", "POST", "/update", Arc::clone(&rec));
        rec.record_ns(Stage::WalAppend, 1_500);
        let _live = rec.span(Stage::WalFsync);
        let inflight = f.in_flight();
        assert_eq!(inflight.len(), 1);
        let r = &inflight[0];
        assert_eq!(r.state, TraceState::InFlight);
        assert_eq!(r.status, 0);
        assert_eq!(r.current_stage, Some(Stage::WalFsync));
        assert_eq!(r.totals.count(Stage::WalAppend), 1);
        // Same view through lookup.
        let via_lookup = f.lookup(5).unwrap();
        assert_eq!(via_lookup.state, TraceState::InFlight);
    }

    #[test]
    fn disabled_recorder_registers_nothing() {
        let f = FlightRecorder::new(false, 4, 4, 0);
        f.begin(1, "query", "GET", "/query", recorder());
        assert!(f.in_flight().is_empty());
        assert!(!f.finish(1, 200, 10_000, true));
        assert!(f.completed().is_empty());
        assert!(f.slow().is_empty());
        assert!(f.lookup(1).is_none());
    }
}
