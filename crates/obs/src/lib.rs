//! Observability primitives for the MPDS serving stack.
//!
//! Everything here is `std`-only and lock-free on the hot path, so the
//! serving layer can record latencies and stage timings without taking a
//! mutex or calling the clock when tracing is disabled. The crate sits at
//! the bottom of the workspace dependency DAG (below `mpds` core) so both
//! the sampling loop and the HTTP front end can share one set of types.
//!
//! The pieces, bottom-up:
//!
//! * [`hist`] — fixed-layout log2-bucketed [`Histogram`]s backed by atomics,
//!   with mergeable [`HistogramSnapshot`]s and quantile interpolation.
//! * [`Counter`] / [`Gauge`] — single-cell atomic metrics.
//! * [`trace`] — the [`Recorder`]/[`Span`] stage-timing API: one monotonic
//!   clock read per span end-point when enabled, no clock reads at all when
//!   disabled.
//! * [`prom`] — deterministic Prometheus text exposition
//!   (`# HELP`/`# TYPE`, histogram `_bucket`/`_sum`/`_count` series).
//! * [`scrape`] — the inverse direction: flat-JSON key scans and Prometheus
//!   text parsing used by the load harness and access-log enrichment, so
//!   every scraper in the workspace shares one tested parser.
//! * [`flight`] — the per-request flight recorder: trace ids, the in-flight
//!   table behind `/debug/requests`, and the completed/slow retention rings
//!   behind `/debug/slow` and `/debug/trace/<id>`.
//! * [`slo`] — latency/availability objectives per endpoint with
//!   multi-window burn-rate tracking, exported on `/metrics`.
//!
//! ```
//! use mpds_obs::{Histogram, Recorder, Stage};
//!
//! let h = Histogram::new();
//! for us in [120u64, 450, 900, 4_000] {
//!     h.record(us);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count(), 4);
//! assert!(snap.quantile(0.5) >= 256.0 && snap.quantile(0.5) <= 1023.0);
//!
//! let rec = Recorder::new(true);
//! {
//!     let _span = rec.span(Stage::WorldMaterialize);
//!     // ... work ...
//! }
//! assert_eq!(rec.totals().count(Stage::WorldMaterialize), 1);
//! ```

pub mod flight;
pub mod hist;
pub mod prom;
pub mod scrape;
pub mod slo;
pub mod trace;

pub use flight::{FlightRecorder, TraceIdGen, TraceRecord, TraceState};
pub use hist::{
    bucket_bounds, bucket_index, BucketExemplars, ExemplarSnapshot, Histogram, HistogramSnapshot,
    BUCKETS,
};
pub use prom::PromText;
pub use slo::{SloEngine, SloKind, SloObjective, SloSnapshot};
pub use trace::{Recorder, Span, Stage, StageTotals};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Microseconds elapsed since `start`, saturating instead of panicking on
/// (absurdly) long intervals — the one conversion every latency recorder in
/// the workspace shares.
///
/// ```
/// let t = std::time::Instant::now();
/// let us = mpds_obs::micros_since(t);
/// assert!(us < 1_000_000);
/// ```
pub fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A monotonically increasing atomic counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization points.
///
/// ```
/// let c = mpds_obs::Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed atomic gauge for quantities that go up and down (queue depths,
/// in-flight requests).
///
/// Signed so that a transiently reordered `dec` before the matching `inc`
/// under relaxed ordering cannot wrap to `u64::MAX`.
///
/// ```
/// let g = mpds_obs::Gauge::new();
/// g.inc();
/// g.inc();
/// g.dec();
/// assert_eq!(g.value(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Increments the gauge by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge by one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}
