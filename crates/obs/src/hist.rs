//! Lock-free log2-bucketed histograms with a fixed 64-bucket layout.
//!
//! Bucket `0` holds the value `0`; bucket `i` (for `1 ≤ i ≤ 62`) covers the
//! half-open power-of-two range `[2^(i-1), 2^i - 1]`; bucket `63` is the
//! overflow bucket for everything at or above `2^62`. The layout is fixed so
//! that snapshots taken from different recorders — or reconstructed from a
//! Prometheus scrape — merge bucket-by-bucket without rebinning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in the fixed histogram layout.
pub const BUCKETS: usize = 64;

/// Maps a value to its bucket index in the fixed log2 layout.
///
/// ```
/// use mpds_obs::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(4), 3);
/// assert_eq!(bucket_index(u64::MAX), 63);
/// ```
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Returns the inclusive `(low, high)` value bounds of bucket `i`.
///
/// The overflow bucket (`i = 63`) reports `high == low` (its true upper
/// bound is unbounded); quantiles that land there are clamped to `2^62`.
///
/// ```
/// use mpds_obs::bucket_bounds;
/// assert_eq!(bucket_bounds(0), (0, 0));
/// assert_eq!(bucket_bounds(1), (1, 1));
/// assert_eq!(bucket_bounds(4), (8, 15));
/// ```
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1..=62 => (1u64 << (i - 1), (1u64 << i) - 1),
        _ => (1u64 << 62, 1u64 << 62),
    }
}

/// Returns the inclusive upper bound of bucket `i` as a Prometheus `le`
/// label, or `None` for the overflow bucket (rendered as `+Inf`).
///
/// ```
/// use mpds_obs::hist::bucket_le;
/// assert_eq!(bucket_le(0), Some(0));
/// assert_eq!(bucket_le(3), Some(7));
/// assert_eq!(bucket_le(63), None);
/// ```
#[inline]
pub fn bucket_le(i: usize) -> Option<u64> {
    if i < BUCKETS - 1 {
        Some((1u64 << i) - 1)
    } else {
        None
    }
}

/// A lock-free latency histogram: 64 relaxed atomic buckets plus a running
/// sum.
///
/// `record` is wait-free (two `fetch_add`s) and safe to call from any number
/// of threads; `snapshot` reads each cell once without stopping writers, so
/// a snapshot taken concurrently with records is a consistent-enough
/// point-in-time view (the sum may be ahead of or behind the buckets by the
/// handful of records in flight).
///
/// ```
/// use mpds_obs::Histogram;
/// let h = Histogram::new();
/// h.record(100);
/// h.record(200);
/// let s = h.snapshot();
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.sum(), 300);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
///
/// Snapshots support subtraction (for per-phase windows over a cumulative
/// histogram) and merging (for aggregating shards), and compute quantiles
/// by linear interpolation inside the bucket that contains the requested
/// rank — so a reported quantile is always within the log2 bucket bounds of
/// the exact sample quantile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Reassembles a snapshot from raw parts (e.g. parsed from a Prometheus
    /// scrape); `counts` must use the fixed layout described in [`crate::hist`].
    pub fn from_parts(counts: [u64; BUCKETS], sum: u64) -> Self {
        HistogramSnapshot { counts, sum }
    }

    /// Per-bucket observation counts (not cumulative).
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Adds another snapshot's buckets and sum into this one.
    ///
    /// ```
    /// use mpds_obs::Histogram;
    /// let (a, b) = (Histogram::new(), Histogram::new());
    /// a.record(1);
    /// b.record(1_000);
    /// let mut merged = a.snapshot();
    /// merged.merge(&b.snapshot());
    /// assert_eq!(merged.count(), 2);
    /// assert_eq!(merged.sum(), 1_001);
    /// ```
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += v;
        }
        self.sum += other.sum;
    }

    /// Subtracts an earlier snapshot of the *same* histogram, yielding the
    /// observations recorded between the two (saturating on races).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by rank-walking the
    /// buckets and interpolating linearly within the containing bucket.
    ///
    /// Returns `0.0` for an empty snapshot. The estimate is exact for
    /// values that fall in single-value buckets (0 and 1) and otherwise
    /// bounded by the containing bucket's `(low, high)` range.
    ///
    /// ```
    /// use mpds_obs::Histogram;
    /// let h = Histogram::new();
    /// for v in 0..100u64 {
    ///     h.record(v);
    /// }
    /// let p50 = h.snapshot().quantile(0.5);
    /// assert!((32.0..=63.0).contains(&p50), "p50 = {p50}");
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the requested order statistic.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if below + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let within = (rank - below) as f64 / c as f64;
                return lo as f64 + (hi - lo) as f64 * within;
            }
            below += c;
        }
        // Unreachable: ranks are clamped to the total count.
        bucket_bounds(BUCKETS - 1).1 as f64
    }
}

/// Per-bucket exemplar storage riding alongside a [`Histogram`]: each
/// bucket remembers the most recent `(trace_id, value)` observation that
/// landed in it.
///
/// Writes are two relaxed stores (no CAS loop); a reader racing a writer
/// can see a trace id paired with the previous value, which is acceptable
/// for exemplars — both still point at a real observation in that bucket.
/// Trace id `0` is the "empty" sentinel, so mint ids starting at 1.
///
/// ```
/// use mpds_obs::{bucket_index, BucketExemplars};
/// let e = BucketExemplars::new();
/// e.observe(700, 0x2a);
/// let snap = e.snapshot();
/// assert_eq!(snap.get(bucket_index(700)), Some((0x2a, 700)));
/// assert_eq!(snap.get(0), None);
/// ```
#[derive(Debug)]
pub struct BucketExemplars {
    trace: [AtomicU64; BUCKETS],
    value: [AtomicU64; BUCKETS],
}

impl Default for BucketExemplars {
    fn default() -> Self {
        BucketExemplars::new()
    }
}

impl BucketExemplars {
    /// Creates an empty exemplar bank (every bucket unset).
    pub fn new() -> Self {
        BucketExemplars {
            trace: std::array::from_fn(|_| AtomicU64::new(0)),
            value: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Remembers `trace_id` as the most recent observation of `value` in
    /// the bucket `value` maps to. A zero `trace_id` is ignored (it is the
    /// empty sentinel).
    #[inline]
    pub fn observe(&self, value: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let i = bucket_index(value);
        self.value[i].store(value, Ordering::Relaxed);
        self.trace[i].store(trace_id, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of every bucket's exemplar.
    pub fn snapshot(&self) -> ExemplarSnapshot {
        let mut slots = [None; BUCKETS];
        for (i, slot) in slots.iter_mut().enumerate() {
            let trace = self.trace[i].load(Ordering::Relaxed);
            if trace != 0 {
                *slot = Some((trace, self.value[i].load(Ordering::Relaxed)));
            }
        }
        ExemplarSnapshot { slots }
    }
}

/// An owned copy of a [`BucketExemplars`] bank: per bucket, the most recent
/// `(trace_id, value)` pair or `None` if the bucket never saw a traced
/// observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExemplarSnapshot {
    slots: [Option<(u64, u64)>; BUCKETS],
}

impl Default for ExemplarSnapshot {
    fn default() -> Self {
        ExemplarSnapshot {
            slots: [None; BUCKETS],
        }
    }
}

impl ExemplarSnapshot {
    /// The `(trace_id, value)` exemplar for bucket `i`, if any.
    pub fn get(&self, i: usize) -> Option<(u64, u64)> {
        self.slots.get(i).copied().flatten()
    }

    /// Whether no bucket carries an exemplar.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn le_bounds_are_cumulative_uppers() {
        assert_eq!(bucket_le(0), Some(0));
        assert_eq!(bucket_le(1), Some(1));
        assert_eq!(bucket_le(62), Some((1u64 << 62) - 1));
        assert_eq!(bucket_le(63), None);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0.0);
    }

    #[test]
    fn since_recovers_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(1_000);
        h.record(2_000);
        let window = h.snapshot().since(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 3_000);
    }

    #[test]
    fn quantile_of_identical_values_stays_in_bucket() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(700);
        }
        let s = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(700));
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            assert!(est >= lo as f64 && est <= hi as f64, "q={q} est={est}");
        }
    }

    #[test]
    fn exemplars_keep_the_most_recent_trace_per_bucket() {
        let e = BucketExemplars::new();
        assert!(e.snapshot().is_empty());
        e.observe(700, 7);
        e.observe(900, 9); // same bucket as 700: replaces it
        e.observe(5, 5);
        e.observe(42, 0); // zero trace id: ignored
        let snap = e.snapshot();
        assert_eq!(snap.get(bucket_index(700)), Some((9, 900)));
        assert_eq!(snap.get(bucket_index(5)), Some((5, 5)));
        assert_eq!(snap.get(bucket_index(42)), None);
        assert!(!snap.is_empty());
    }

    #[test]
    fn concurrent_recorders_merge_to_the_same_totals() {
        use std::sync::Arc;
        let shared = Arc::new(Histogram::new());
        let locals: Vec<Arc<Histogram>> = (0..4).map(|_| Arc::new(Histogram::new())).collect();
        std::thread::scope(|scope| {
            for (t, local) in locals.iter().enumerate() {
                let shared = Arc::clone(&shared);
                let local = Arc::clone(local);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        let v = (t as u64) * 7 + i % 4096;
                        shared.record(v);
                        local.record(v);
                    }
                });
            }
        });
        let mut merged = HistogramSnapshot::default();
        for local in &locals {
            merged.merge(&local.snapshot());
        }
        assert_eq!(merged, shared.snapshot());
        assert_eq!(merged.count(), 40_000);
    }
}
