//! Deterministic Prometheus text-format (version 0.0.4) exposition.
//!
//! [`PromText`] renders metric families in the order they are written, with
//! `# HELP`/`# TYPE` headers and full 64-bucket cumulative histogram series
//! (`_bucket{le=...}`, `_sum`, `_count`). Every bucket of the fixed layout
//! is always emitted, so scrapes of different series are bucket-aligned and
//! [`crate::scrape::prom_histogram`] can reconstruct exact
//! [`HistogramSnapshot`]s by subtraction.

use crate::hist::{bucket_le, ExemplarSnapshot, HistogramSnapshot};

/// The `Content-Type` of the text rendered by [`PromText`].
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Incremental writer for the Prometheus text exposition format.
///
/// ```
/// use mpds_obs::{Histogram, PromText};
/// let h = Histogram::new();
/// h.record(5);
/// let mut w = PromText::new();
/// w.family("mpds_demo_duration_us", "histogram", "Demo latency.");
/// w.histogram("mpds_demo_duration_us", &[("endpoint", "query")], &h.snapshot());
/// let text = w.finish();
/// assert!(text.contains("# TYPE mpds_demo_duration_us histogram"));
/// assert!(text.contains("mpds_demo_duration_us_bucket{endpoint=\"query\",le=\"7\"} 1"));
/// assert!(text.ends_with("mpds_demo_duration_us_count{endpoint=\"query\"} 1\n"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Creates an empty writer.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Writes the `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, or `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Writes one unsigned sample line: `name{labels} value`.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_start(name, labels, None);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Writes one signed sample line (gauges may be transiently negative).
    pub fn sample_i64(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.sample_start(name, labels, None);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Writes a full cumulative histogram series for one label set: all 64
    /// `_bucket` lines (the overflow bucket as `le="+Inf"`), then `_sum`
    /// and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        self.histogram_impl(name, labels, snap, None);
    }

    /// Like [`PromText::histogram`], but suffixes each bucket line that has
    /// an exemplar with OpenMetrics exemplar syntax:
    /// `… # {trace_id="<16-hex>"} <observed value>`. Buckets without an
    /// exemplar render exactly as in [`PromText::histogram`], so parsers
    /// that ignore exemplars see an unchanged exposition.
    pub fn histogram_with_exemplars(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        exemplars: &ExemplarSnapshot,
    ) {
        self.histogram_impl(name, labels, snap, Some(exemplars));
    }

    fn histogram_impl(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        exemplars: Option<&ExemplarSnapshot>,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &c) in snap.counts().iter().enumerate() {
            cumulative += c;
            let le = match bucket_le(i) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            self.sample_start(&bucket_name, labels, Some(&le));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            if let Some((trace, value)) = exemplars.and_then(|e| e.get(i)) {
                self.out.push_str(" # {trace_id=\"");
                self.out.push_str(&crate::flight::format_trace_id(trace));
                self.out.push_str("\"} ");
                self.out.push_str(&value.to_string());
            }
            self.out.push('\n');
        }
        self.sample_u64(&format!("{name}_sum"), labels, snap.sum());
        self.sample_u64(&format!("{name}_count"), labels, cumulative);
    }

    /// Writes one floating-point sample line (burn rates, ratios). Uses
    /// Rust's shortest-round-trip float formatting, which is deterministic.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_start(name, labels, None);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Consumes the writer and returns the rendered text.
    pub fn finish(self) -> String {
        self.out
    }

    fn sample_start(&mut self, name: &str, labels: &[(&str, &str)], le: Option<&str>) {
        self.out.push_str(name);
        if !labels.is_empty() || le.is_some() {
            self.out.push('{');
            let mut first = true;
            for (k, v) in labels {
                if !first {
                    self.out.push(',');
                }
                first = false;
                self.out.push_str(k);
                self.out.push_str("=\"");
                escape_label(&mut self.out, v);
                self.out.push('"');
            }
            if let Some(le) = le {
                if !first {
                    self.out.push(',');
                }
                self.out.push_str("le=\"");
                self.out.push_str(le);
                self.out.push('"');
            }
            self.out.push('}');
        }
    }
}

/// Escapes a label value per the text format: backslash, double quote, and
/// newline.
fn escape_label(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counter_and_gauge_lines() {
        let mut w = PromText::new();
        w.family("mpds_served_total", "counter", "Requests served.");
        w.sample_u64("mpds_served_total", &[], 7);
        w.family("mpds_inflight", "gauge", "In-flight requests.");
        w.sample_i64("mpds_inflight", &[("listener", "main")], -1);
        assert_eq!(
            w.finish(),
            "# HELP mpds_served_total Requests served.\n\
             # TYPE mpds_served_total counter\n\
             mpds_served_total 7\n\
             # HELP mpds_inflight In-flight requests.\n\
             # TYPE mpds_inflight gauge\n\
             mpds_inflight{listener=\"main\"} -1\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromText::new();
        w.sample_u64("m", &[("d", "a\"b\\c\nd")], 1);
        assert_eq!(w.finish(), "m{d=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    // Pins the exemplar suffix format: only buckets with an exemplar carry
    // the ` # {trace_id="…"} value` tail; the rest match the plain render.
    #[test]
    fn exemplar_suffixes_are_pinned() {
        use crate::hist::BucketExemplars;
        let h = Histogram::new();
        h.record(3);
        let e = BucketExemplars::new();
        e.observe(3, 0xbeef);
        let mut plain = PromText::new();
        plain.histogram("d_us", &[], &h.snapshot());
        let mut with = PromText::new();
        with.histogram_with_exemplars("d_us", &[], &h.snapshot(), &e.snapshot());
        let (plain, with) = (plain.finish(), with.finish());
        assert!(with.contains("d_us_bucket{le=\"3\"} 1 # {trace_id=\"000000000000beef\"} 3\n"));
        // Exactly one line differs, by exactly the exemplar suffix.
        let diff: Vec<(&str, &str)> = plain
            .lines()
            .zip(with.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(diff.len(), 1);
        assert!(diff[0].1.starts_with(diff[0].0));
    }

    #[test]
    fn float_samples_render_shortest_roundtrip() {
        let mut w = PromText::new();
        w.sample_f64("m", &[("slo", "query")], 0.25);
        w.sample_f64("m", &[], 2.0);
        assert_eq!(w.finish(), "m{slo=\"query\"} 0.25\nm 2\n");
    }

    // Pins the histogram text rendering byte-for-byte: bucket alignment,
    // cumulative counts, the +Inf bucket, and the _sum/_count tail.
    #[test]
    fn histogram_rendering_is_pinned() {
        let h = Histogram::new();
        h.record(0); // bucket 0, le="0"
        h.record(3); // bucket 2, le="3"
        h.record(3);
        h.record(1u64 << 62); // overflow bucket, le="+Inf"
        let mut w = PromText::new();
        w.family("d_us", "histogram", "Demo.");
        w.histogram("d_us", &[("src", "HIT")], &h.snapshot());
        let text = w.finish();

        let mut expected = String::from("# HELP d_us Demo.\n# TYPE d_us histogram\n");
        let mut cumulative = 0u64;
        for i in 0..crate::BUCKETS {
            cumulative += match i {
                0 => 1,
                2 => 2,
                63 => 1,
                _ => 0,
            };
            let le = match bucket_le(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            expected.push_str(&format!(
                "d_us_bucket{{src=\"HIT\",le=\"{le}\"}} {cumulative}\n"
            ));
        }
        expected.push_str("d_us_sum{src=\"HIT\"} 4611686018427387910\n");
        expected.push_str("d_us_count{src=\"HIT\"} 4\n");
        assert_eq!(text, expected);
    }
}
