//! Service-level objectives: per-endpoint latency/availability targets and
//! multi-window burn-rate tracking.
//!
//! An [`SloObjective`] declares what "good" means for one endpoint — either
//! a latency bound on successful responses or availability (non-5xx) — and
//! what fraction of requests must be good. The [`SloEngine`] scores every
//! request against each matching objective and maintains, per objective:
//!
//! * cumulative `good`/`bad` counters (Prometheus-friendly monotone
//!   counters, exported as `mpds_slo_requests_total{slo,verdict}`), and
//! * a rotating one-minute bucket window from which **burn rates** over a
//!   fast (5 min) and slow (1 h) window are computed at scrape time.
//!
//! The burn rate is the classic SRE ratio: `bad_fraction / error_budget`
//! where `error_budget = 1 - target`. A burn rate of 1.0 means the service
//! is spending its budget exactly as fast as the objective allows; 14.4
//! over 5 minutes is the canonical page-now threshold for a 30-day window.
//! Exposing both windows lets alerting combine them (fast window catches
//! spikes, slow window confirms they matter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Seconds covered by one burn-rate bucket.
const BUCKET_SECS: u64 = 60;
/// Buckets retained (covers the slow window).
const WINDOW_BUCKETS: usize = 60;
/// Buckets in the fast burn-rate window (5 minutes).
const FAST_BUCKETS: usize = 5;

/// What a request must satisfy to count as *good* for an objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Successful (2xx) responses must complete within the given number of
    /// microseconds; 5xx responses count as bad; other statuses (client
    /// errors, redirects) are excluded from the objective entirely.
    Latency(u64),
    /// Non-5xx responses are good, 5xx are bad (client errors are the
    /// client's fault and count as availability successes).
    Availability,
}

impl SloKind {
    /// Stable label for the kind (`latency` / `availability`).
    pub fn as_str(self) -> &'static str {
        match self {
            SloKind::Latency(_) => "latency",
            SloKind::Availability => "availability",
        }
    }
}

/// One configured objective: the endpoint label it applies to, the good
/// criterion, and the target good-fraction.
#[derive(Clone, Debug, PartialEq)]
pub struct SloObjective {
    /// Unique objective name, used as the `slo` metric label.
    pub name: String,
    /// The endpoint label this objective scores (matches
    /// `Endpoint::as_str()` in the service).
    pub endpoint: String,
    /// The good criterion.
    pub kind: SloKind,
    /// Required good fraction in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
}

impl SloObjective {
    /// Parses the CLI spec format:
    /// `<endpoint>:latency:<millis>:<target>` or
    /// `<endpoint>:availability:<target>`.
    ///
    /// The objective name is derived (`query-latency-250ms`,
    /// `update-availability`), keeping the `slo` label cardinality bounded
    /// by the flag count.
    ///
    /// ```
    /// use mpds_obs::slo::{SloKind, SloObjective};
    /// let o = SloObjective::parse_spec("query:latency:250:0.99").unwrap();
    /// assert_eq!(o.name, "query-latency-250ms");
    /// assert_eq!(o.kind, SloKind::Latency(250_000));
    /// assert_eq!(o.target, 0.99);
    /// let a = SloObjective::parse_spec("update:availability:0.999").unwrap();
    /// assert_eq!(a.kind, SloKind::Availability);
    /// assert!(SloObjective::parse_spec("query:latency:abc:0.9").is_err());
    /// ```
    pub fn parse_spec(spec: &str) -> Result<SloObjective, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let err = |why: &str| format!("invalid --slo spec '{spec}': {why}");
        let parse_target = |s: &str| -> Result<f64, String> {
            let t: f64 = s
                .parse()
                .map_err(|_| err("target must be a number in (0, 1)"))?;
            if t <= 0.0 || t >= 1.0 {
                return Err(err("target must be in (0, 1)"));
            }
            Ok(t)
        };
        match parts.as_slice() {
            [endpoint, "latency", millis, target] => {
                let ms: u64 = millis
                    .parse()
                    .map_err(|_| err("latency threshold must be integer milliseconds"))?;
                if ms == 0 {
                    return Err(err("latency threshold must be positive"));
                }
                Ok(SloObjective {
                    name: format!("{endpoint}-latency-{ms}ms"),
                    endpoint: endpoint.to_string(),
                    kind: SloKind::Latency(ms * 1_000),
                    target: parse_target(target)?,
                })
            }
            [endpoint, "availability", target] => Ok(SloObjective {
                name: format!("{endpoint}-availability"),
                endpoint: endpoint.to_string(),
                kind: SloKind::Availability,
                target: parse_target(target)?,
            }),
            _ => Err(err(
                "expected <endpoint>:latency:<millis>:<target> or <endpoint>:availability:<target>",
            )),
        }
    }

    /// Scores one request: `Some(true)` good, `Some(false)` bad, `None`
    /// excluded from this objective.
    fn verdict(&self, status: u16, wall_us: u64) -> Option<bool> {
        match self.kind {
            SloKind::Latency(threshold_us) => match status {
                200..=299 => Some(wall_us <= threshold_us),
                500..=599 => Some(false),
                _ => None,
            },
            SloKind::Availability => Some(!(500..=599).contains(&status)),
        }
    }
}

/// A rotating window of per-minute good/bad buckets.
#[derive(Debug)]
struct Window {
    epoch: [u64; WINDOW_BUCKETS],
    good: [u64; WINDOW_BUCKETS],
    bad: [u64; WINDOW_BUCKETS],
}

impl Window {
    fn new() -> Self {
        Window {
            epoch: [u64::MAX; WINDOW_BUCKETS],
            good: [0; WINDOW_BUCKETS],
            bad: [0; WINDOW_BUCKETS],
        }
    }

    fn record(&mut self, epoch: u64, good: bool) {
        let i = (epoch % WINDOW_BUCKETS as u64) as usize;
        if self.epoch[i] != epoch {
            self.epoch[i] = epoch;
            self.good[i] = 0;
            self.bad[i] = 0;
        }
        if good {
            self.good[i] += 1;
        } else {
            self.bad[i] += 1;
        }
    }

    /// `(good, bad)` summed over the last `buckets` epochs ending at `now`.
    fn sum(&self, now: u64, buckets: usize) -> (u64, u64) {
        let floor = now.saturating_sub(buckets as u64 - 1);
        let mut good = 0;
        let mut bad = 0;
        for i in 0..WINDOW_BUCKETS {
            if self.epoch[i] != u64::MAX && self.epoch[i] >= floor && self.epoch[i] <= now {
                good += self.good[i];
                bad += self.bad[i];
            }
        }
        (good, bad)
    }
}

#[derive(Debug)]
struct Tracker {
    objective: SloObjective,
    good_total: AtomicU64,
    bad_total: AtomicU64,
    window: Mutex<Window>,
}

/// A point-in-time view of one objective, as exported on `/metrics`.
#[derive(Clone, Debug)]
pub struct SloSnapshot {
    /// The objective scored.
    pub objective: SloObjective,
    /// Cumulative good requests since boot.
    pub good_total: u64,
    /// Cumulative bad requests since boot.
    pub bad_total: u64,
    /// Burn rate over the fast (5 min) window.
    pub burn_fast: f64,
    /// Burn rate over the slow (1 h) window.
    pub burn_slow: f64,
}

/// Scores requests against a set of [`SloObjective`]s and serves burn-rate
/// snapshots.
///
/// ```
/// use mpds_obs::slo::{SloEngine, SloObjective};
/// let slo = SloEngine::new(vec![
///     SloObjective::parse_spec("query:latency:250:0.99").unwrap(),
/// ]);
/// slo.record("query", 200, 1_000); // good: fast 2xx
/// slo.record("query", 200, 900_000); // bad: over 250 ms
/// slo.record("query", 400, 1_000); // excluded: client error
/// slo.record("update", 200, 1_000); // different endpoint: unscored
/// let snap = &slo.snapshots()[0];
/// assert_eq!((snap.good_total, snap.bad_total), (1, 1));
/// // Half the traffic is bad against a 1% budget: burning 50× budget.
/// assert!((snap.burn_fast - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct SloEngine {
    started: Instant,
    trackers: Vec<Tracker>,
}

impl SloEngine {
    /// Creates an engine scoring the given objectives.
    pub fn new(objectives: Vec<SloObjective>) -> Self {
        SloEngine {
            started: Instant::now(),
            trackers: objectives
                .into_iter()
                .map(|objective| Tracker {
                    objective,
                    good_total: AtomicU64::new(0),
                    bad_total: AtomicU64::new(0),
                    window: Mutex::new(Window::new()),
                })
                .collect(),
        }
    }

    fn epoch_now(&self) -> u64 {
        self.started.elapsed().as_secs() / BUCKET_SECS
    }

    /// Scores one completed request against every matching objective.
    pub fn record(&self, endpoint: &str, status: u16, wall_us: u64) {
        self.record_at(self.epoch_now(), endpoint, status, wall_us);
    }

    fn record_at(&self, epoch: u64, endpoint: &str, status: u16, wall_us: u64) {
        for t in &self.trackers {
            if t.objective.endpoint != endpoint {
                continue;
            }
            let Some(good) = t.objective.verdict(status, wall_us) else {
                continue;
            };
            if good {
                t.good_total.fetch_add(1, Ordering::Relaxed);
            } else {
                t.bad_total.fetch_add(1, Ordering::Relaxed);
            }
            t.window.lock().unwrap().record(epoch, good);
        }
    }

    /// Point-in-time snapshots of every objective, in configuration order.
    pub fn snapshots(&self) -> Vec<SloSnapshot> {
        self.snapshots_at(self.epoch_now())
    }

    fn snapshots_at(&self, now: u64) -> Vec<SloSnapshot> {
        self.trackers
            .iter()
            .map(|t| {
                let budget = 1.0 - t.objective.target;
                let window = t.window.lock().unwrap();
                let burn = |buckets: usize| {
                    let (good, bad) = window.sum(now, buckets);
                    let total = good + bad;
                    if total == 0 || budget <= 0.0 {
                        0.0
                    } else {
                        (bad as f64 / total as f64) / budget
                    }
                };
                SloSnapshot {
                    objective: t.objective.clone(),
                    good_total: t.good_total.load(Ordering::Relaxed),
                    bad_total: t.bad_total.load(Ordering::Relaxed),
                    burn_fast: burn(FAST_BUCKETS),
                    burn_slow: burn(WINDOW_BUCKETS),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SloEngine {
        SloEngine::new(vec![
            SloObjective::parse_spec("query:latency:100:0.9").unwrap(),
            SloObjective::parse_spec("query:availability:0.99").unwrap(),
        ])
    }

    #[test]
    fn latency_objective_excludes_client_errors_and_counts_5xx_bad() {
        let slo = engine();
        slo.record_at(0, "query", 200, 50_000); // good
        slo.record_at(0, "query", 200, 150_000); // bad: over 100 ms
        slo.record_at(0, "query", 404, 1); // excluded from latency
        slo.record_at(0, "query", 500, 1); // bad for both objectives
        let snaps = slo.snapshots_at(0);
        let latency = &snaps[0];
        assert_eq!((latency.good_total, latency.bad_total), (1, 2));
        let avail = &snaps[1];
        // 404 is an availability success.
        assert_eq!((avail.good_total, avail.bad_total), (3, 1));
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget_per_window() {
        let slo = engine();
        // Minute 0: all good. Minute 7: 1 bad of 2 (outside the 5-minute
        // fast window by minute 12, inside the slow window).
        for _ in 0..10 {
            slo.record_at(0, "query", 200, 1_000);
        }
        slo.record_at(7, "query", 200, 999_000);
        slo.record_at(7, "query", 200, 1_000);
        let snaps = slo.snapshots_at(12);
        let latency = &snaps[0];
        // Fast window (minutes 8..=12) saw nothing.
        assert_eq!(latency.burn_fast, 0.0);
        // Slow window: 1 bad of 12 against a 10% budget.
        let expect = (1.0 / 12.0) / 0.1;
        assert!((latency.burn_slow - expect).abs() < 1e-9);
        // At minute 7 the fast window includes the bad request: 1 of 2.
        let at7 = slo.snapshots_at(7);
        assert!((at7[0].burn_fast - (0.5 / 0.1)).abs() < 1e-9);
    }

    #[test]
    fn window_buckets_recycle_after_an_hour() {
        let slo = engine();
        slo.record_at(0, "query", 500, 1);
        // An hour later the same bucket slot is reused by a new epoch.
        slo.record_at(60, "query", 200, 1_000);
        let snaps = slo.snapshots_at(60);
        assert_eq!(snaps[0].burn_slow, 0.0, "stale epoch must not leak");
        // Cumulative counters still remember everything.
        assert_eq!(snaps[0].bad_total, 1);
    }

    #[test]
    fn spec_parse_rejects_malformed_inputs() {
        for bad in [
            "query",
            "query:latency:250",
            "query:latency:0:0.9",
            "query:latency:250:1.5",
            "query:latency:250:0",
            "query:availability:2",
            "query:unknown:0.9",
        ] {
            assert!(SloObjective::parse_spec(bad).is_err(), "{bad}");
        }
    }
}
