//! Property tests for the flight recorder: ring eviction under arbitrary
//! begin/finish interleavings must never lose an in-flight request, and
//! every slow-eligible over-threshold completion must survive completed-
//! ring churn via the slow ring.

use std::sync::Arc;

use mpds_obs::{FlightRecorder, Recorder, TraceState};
use proptest::prelude::*;

/// One scripted step against the recorder: begin a fresh request, or
/// finish the `i`-th oldest currently-open one with a given latency.
#[derive(Clone, Debug)]
enum Op {
    Begin,
    Finish {
        pick: usize,
        wall_us: u64,
        eligible: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest shim has no `prop_oneof`; select the variant
    // from a drawn tuple instead (2/5 begins, 3/5 finishes).
    (0u8..5, 0usize..1024, 0u64..40_000).prop_map(|(sel, pick, wall)| {
        if sel < 2 {
            Op::Begin
        } else {
            Op::Finish {
                pick,
                wall_us: wall / 2,
                eligible: wall % 2 == 0,
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Whatever the interleaving and however small the rings, every request
    // that has begun and not finished is visible in the in-flight view and
    // resolvable by trace id — eviction only ever touches completed records.
    #[test]
    fn eviction_never_loses_an_in_flight_request(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 0usize..4,
        slow_capacity in 0usize..4,
        threshold_sel in 0u8..3,
    ) {
        let threshold_us = [0u64, 10_000, u64::MAX][threshold_sel as usize];
        let f = FlightRecorder::new(true, capacity, slow_capacity, threshold_us);
        let mut open: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        let mut finished = 0usize;
        for op in ops.iter().cloned() {
            match op {
                Op::Begin => {
                    f.begin(next_id, "query", "GET", "/query", Arc::new(Recorder::new(true)));
                    open.push(next_id);
                    next_id += 1;
                }
                Op::Finish { pick, wall_us, eligible } => {
                    if open.is_empty() {
                        continue;
                    }
                    let id = open.remove(pick % open.len());
                    f.finish(id, 200, wall_us, eligible);
                    finished += 1;
                }
            }
            // Every open request is present, exactly once, regardless of
            // how many completions have churned the rings.
            let in_flight = f.in_flight();
            let mut seen: Vec<u64> = in_flight.iter().map(|r| r.trace_id).collect();
            let mut want = open.clone();
            seen.sort_unstable();
            want.sort_unstable();
            prop_assert!(seen == want, "open set mismatch after {} finishes", finished);
            for &id in &open {
                let r = f.lookup(id);
                prop_assert!(r.is_some(), "open trace {} must resolve", id);
                prop_assert_eq!(r.unwrap().state, TraceState::InFlight);
            }
            // The rings respect their bounds.
            prop_assert!(f.completed().len() <= capacity);
            prop_assert!(f.slow().len() <= slow_capacity);
        }
    }

    // A slow-eligible completion at/over the threshold is retained in the
    // slow ring even after the completed ring has fully churned past it.
    #[test]
    fn slow_promotions_survive_completed_churn(
        churn in 1usize..40,
        capacity in 1usize..4,
    ) {
        let f = FlightRecorder::new(true, capacity, 8, 1_000);
        f.begin(7, "query", "GET", "/query", Arc::new(Recorder::new(true)));
        prop_assert!(f.finish(7, 200, 1_000, true));
        for i in 0..churn as u64 {
            let id = 100 + i;
            f.begin(id, "query", "GET", "/query", Arc::new(Recorder::new(true)));
            f.finish(id, 200, 1, true);
        }
        let r = f.lookup(7);
        prop_assert!(r.is_some());
        prop_assert!(r.unwrap().slow);
        prop_assert_eq!(f.slow_promoted(), 1);
    }
}
