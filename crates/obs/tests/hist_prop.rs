//! Property tests for the log2 histogram: estimated quantiles must land
//! inside the bucket bounds of the exact sample quantile.

use mpds_obs::{bucket_bounds, bucket_index, Histogram};
use proptest::prelude::*;

/// Exact q-quantile of a sample set, mirroring the histogram's rank rule:
/// the ceil(q·n)-th order statistic (1-based, clamped to [1, n]).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // For any sample set, the histogram quantile lies within the log2
    // bucket bounds of the exact quantile of the recorded samples.
    #[test]
    fn quantile_within_bucket_of_exact(
        samples in proptest::collection::vec(0u64..2_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        let est = h.snapshot().quantile(q);
        prop_assert!(
            est >= lo as f64 && est <= hi as f64,
            "q={} exact={} bucket=[{},{}] est={}",
            q, exact, lo, hi, est
        );
    }

    // Count and sum are exact regardless of bucketing.
    #[test]
    fn count_and_sum_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().sum::<u64>());
    }

    // Recording on bucket bounds themselves: the estimate equals the bound
    // when every sample is the same value sitting on a bucket edge.
    #[test]
    fn degenerate_bound_samples_stay_in_bucket(i in 0usize..64, q in 0.01f64..1.0) {
        let (lo, hi) = bucket_bounds(i);
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(lo);
        }
        let est = h.snapshot().quantile(q);
        prop_assert!(est >= lo as f64 && est <= hi as f64, "i={} est={}", i, est);
    }
}
