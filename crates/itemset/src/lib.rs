//! Top-k frequent **closed** itemset mining with a minimum length constraint
//! — the TFP problem of Wang et al. \[47\], which the paper's NDS estimator
//! (Algorithm 5) reduces to.
//!
//! Transactions are node sets (the maximum-sized densest subgraphs of the
//! sampled possible worlds); the support of a node set `U` is the number of
//! transactions containing `U`, i.e. `θ · γ̂(U)`. A set is *closed* when no
//! strict superset has the same support. TFP returns the `k` closed sets of
//! length at least `l_m` with the highest supports.
//!
//! The miner is an LCM-style prefix-preserving closure-extension search
//! (Uno et al.): every closed itemset is generated exactly once, and the
//! support threshold rises as the top-k heap fills ("support raising" from
//! TFP), pruning whole subtrees — valid because support is antitone in the
//! itemset.

use std::collections::BinaryHeap;

/// A mined closed itemset with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedItemset {
    /// Items (original ids), sorted ascending.
    pub items: Vec<u32>,
    /// Number of transactions containing all items.
    pub support: u64,
}

/// Mines the top-`k` closed itemsets of length ≥ `min_len` by support.
///
/// Results are sorted by support descending, ties broken by larger size then
/// lexicographic items (deterministic). `max_nodes` caps the number of search
/// nodes expanded (a safety valve for adversarial inputs; the paper's NDS
/// transactions are few and similar, so the cap is never hit in practice —
/// the return flag reports whether it was).
pub fn top_k_closed(
    transactions: &[Vec<u32>],
    k: usize,
    min_len: usize,
    max_nodes: usize,
) -> (Vec<ClosedItemset>, bool) {
    if k == 0 || transactions.is_empty() {
        return (Vec::new(), false);
    }
    let mut miner = Miner::new(transactions, k, min_len, max_nodes);
    miner.run();
    let mut out: Vec<ClosedItemset> = miner.heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.items.len().cmp(&a.items.len()))
            .then(a.items.cmp(&b.items))
    });
    (out, miner.capped)
}

/// Enumerates **all** closed itemsets with support ≥ `min_support` and length
/// ≥ `min_len` (no top-k pruning). Useful for tests and small inputs.
pub fn all_closed(
    transactions: &[Vec<u32>],
    min_support: u64,
    min_len: usize,
) -> Vec<ClosedItemset> {
    let (mut out, capped) = {
        let mut miner = Miner::new(transactions, usize::MAX, min_len, usize::MAX);
        miner.floor_support = min_support.max(1);
        miner.run();
        (miner.all, miner.capped)
    };
    debug_assert!(!capped);
    out.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
    out
}

/// Support of one itemset within the transactions (`θ · γ̂`).
pub fn support_of(transactions: &[Vec<u32>], items: &[u32]) -> u64 {
    transactions.iter().filter(|t| is_subset(items, t)).count() as u64
}

fn is_subset(a: &[u32], b: &[u32]) -> bool {
    // Both sorted.
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Heap entry ordered so the heap top is the *worst* kept result.
#[derive(PartialEq, Eq)]
struct HeapEntry(ClosedItemset);

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on support (then prefer keeping larger sets).
        other
            .0
            .support
            .cmp(&self.0.support)
            .then(other.0.items.len().cmp(&self.0.items.len()))
            .then(other.0.items.cmp(&self.0.items))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Miner<'a> {
    /// Transactions with items remapped to dense ids, each sorted.
    txs: Vec<Vec<u32>>,
    /// Dense id -> original item.
    item_of: Vec<u32>,
    /// Tidsets per dense item.
    tids: Vec<Vec<u32>>,
    k: usize,
    min_len: usize,
    max_nodes: usize,
    nodes: usize,
    capped: bool,
    heap: BinaryHeap<HeapEntry>,
    /// Collect-everything mode (for [`all_closed`]).
    all: Vec<ClosedItemset>,
    floor_support: u64,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Miner<'a> {
    fn new(transactions: &'a [Vec<u32>], k: usize, min_len: usize, max_nodes: usize) -> Self {
        // Remap items to dense ids sorted by original id (keeps output
        // deterministic).
        let mut universe: Vec<u32> = transactions.iter().flatten().copied().collect();
        universe.sort_unstable();
        universe.dedup();
        let dense_of = |item: u32| universe.binary_search(&item).unwrap() as u32;
        let mut txs: Vec<Vec<u32>> = transactions
            .iter()
            .map(|t| {
                let mut d: Vec<u32> = t.iter().map(|&i| dense_of(i)).collect();
                d.sort_unstable();
                d.dedup();
                d
            })
            .collect();
        txs.retain(|t| !t.is_empty());
        let mut tids = vec![Vec::new(); universe.len()];
        for (ti, t) in txs.iter().enumerate() {
            for &i in t {
                tids[i as usize].push(ti as u32);
            }
        }
        Miner {
            txs,
            item_of: universe,
            tids,
            k,
            min_len,
            max_nodes,
            nodes: 0,
            capped: false,
            heap: BinaryHeap::new(),
            all: Vec::new(),
            floor_support: 1,
            _marker: std::marker::PhantomData,
        }
    }

    fn threshold(&self) -> u64 {
        if self.k != usize::MAX && self.heap.len() >= self.k {
            // Full heap: a new set must strictly... no — ties are fine, but we
            // only replace when strictly better than the current worst, so the
            // prune bound is the worst kept support.
            self.heap.peek().map(|e| e.0.support).unwrap_or(1)
        } else {
            self.floor_support
        }
    }

    fn run(&mut self) {
        if self.txs.is_empty() {
            return;
        }
        // Root: closure of the empty set = items present in ALL transactions.
        let all_tids: Vec<u32> = (0..self.txs.len() as u32).collect();
        let root_closure = self.closure(&all_tids);
        self.report(&root_closure, all_tids.len() as u64);
        self.expand(&root_closure, &all_tids, 0);
    }

    /// Items contained in every transaction of `tidset`.
    fn closure(&self, tidset: &[u32]) -> Vec<u32> {
        debug_assert!(!tidset.is_empty());
        let mut inter: Vec<u32> = self.txs[tidset[0] as usize].clone();
        for &t in &tidset[1..] {
            inter = intersect(&inter, &self.txs[t as usize]);
            if inter.is_empty() {
                break;
            }
        }
        inter
    }

    /// LCM ppc-extension: try every item `i ≥ start` not in `closed`.
    fn expand(&mut self, closed: &[u32], tidset: &[u32], start: u32) {
        if self.capped {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.capped = true;
            return;
        }
        let num_items = self.tids.len() as u32;
        for i in start..num_items {
            if closed.binary_search(&i).is_ok() {
                continue;
            }
            let new_tids = intersect(tidset, &self.tids[i as usize]);
            let support = new_tids.len() as u64;
            if support == 0 || support < self.threshold() {
                continue;
            }
            let new_closed = self.closure(&new_tids);
            // Prefix-preserving check: the closure must not introduce any
            // item smaller than i that wasn't already in `closed` — otherwise
            // this closed set is (or will be) generated from a different
            // branch, and expanding it here would duplicate it.
            let prefix_ok = new_closed
                .iter()
                .take_while(|&&j| j < i)
                .all(|j| closed.binary_search(j).is_ok());
            if !prefix_ok {
                continue;
            }
            self.report(&new_closed, support);
            self.expand(&new_closed, &new_tids, i + 1);
            if self.capped {
                return;
            }
        }
    }

    fn report(&mut self, closed: &[u32], support: u64) {
        if closed.len() < self.min_len || closed.is_empty() {
            return;
        }
        let items: Vec<u32> = closed.iter().map(|&i| self.item_of[i as usize]).collect();
        let entry = ClosedItemset { items, support };
        if self.k == usize::MAX {
            if support >= self.floor_support {
                self.all.push(entry);
            }
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(entry));
        } else if let Some(worst) = self.heap.peek() {
            // HeapEntry ordering is reversed (the heap top is the worst kept
            // result), so "better" means strictly smaller here.
            if HeapEntry(entry.clone()) < *worst {
                self.heap.pop();
                self.heap.push(HeapEntry(entry));
            }
        }
    }
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn txs(data: &[&[u32]]) -> Vec<Vec<u32>> {
        data.iter().map(|t| t.to_vec()).collect()
    }

    /// Brute-force closed itemsets: every subset of the item universe with
    /// positive support and no strict superset of equal support.
    fn brute_force_closed(transactions: &[Vec<u32>], min_len: usize) -> Vec<ClosedItemset> {
        let mut universe: Vec<u32> = transactions.iter().flatten().copied().collect();
        universe.sort_unstable();
        universe.dedup();
        let n = universe.len();
        assert!(n <= 16);
        let mut by_support: HashMap<Vec<u32>, u64> = HashMap::new();
        for mask in 1u32..(1 << n) {
            let items: Vec<u32> = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| universe[i])
                .collect();
            let s = support_of(transactions, &items);
            if s > 0 {
                by_support.insert(items, s);
            }
        }
        let mut out = Vec::new();
        'outer: for (items, &s) in &by_support {
            for (other, &s2) in &by_support {
                if s2 == s && other.len() > items.len() && is_subset(items, other) {
                    continue 'outer;
                }
            }
            if items.len() >= min_len {
                out.push(ClosedItemset {
                    items: items.clone(),
                    support: s,
                });
            }
        }
        out.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
        out
    }

    #[test]
    fn textbook_example() {
        // Transactions over {1,2,3,4}.
        let t = txs(&[&[1, 2, 3], &[1, 2], &[1, 3], &[2, 3], &[1, 2, 3, 4]]);
        let all = all_closed(&t, 1, 1);
        let brute = brute_force_closed(&t, 1);
        assert_eq!(all, brute);
        // {1} support 4, {2} support 4 ... check a few.
        let find = |items: &[u32]| all.iter().find(|c| c.items == items).map(|c| c.support);
        assert_eq!(find(&[1]), Some(4));
        assert_eq!(find(&[1, 2, 3]), Some(2));
        assert_eq!(find(&[1, 2, 3, 4]), Some(1));
        // {1,2} support 3 and closed (supersets have support <= 2).
        assert_eq!(find(&[1, 2]), Some(3));
    }

    #[test]
    fn top_k_matches_brute_force() {
        let t = txs(&[
            &[1, 2, 3, 5],
            &[1, 2, 5],
            &[1, 3, 5],
            &[2, 3],
            &[1, 2, 3, 4, 5],
            &[2, 4, 5],
        ]);
        for min_len in 1..=3 {
            let brute = brute_force_closed(&t, min_len);
            for k in 1..=6 {
                let (got, capped) = top_k_closed(&t, k, min_len, 1_000_000);
                assert!(!capped);
                assert_eq!(got.len(), k.min(brute.len()), "k={k} lm={min_len}");
                // Supports must match the k best brute-force supports.
                let want: Vec<u64> = brute.iter().take(k).map(|c| c.support).collect();
                let have: Vec<u64> = got.iter().map(|c| c.support).collect();
                assert_eq!(have, want, "k={k} lm={min_len}");
                // Every returned set must be closed with correct support.
                for c in &got {
                    assert_eq!(support_of(&t, &c.items), c.support);
                    assert!(brute
                        .iter()
                        .any(|b| b.items == c.items && b.support == c.support));
                }
            }
        }
    }

    #[test]
    fn min_len_filters() {
        let t = txs(&[&[1, 2, 3], &[1, 2, 3], &[1]]);
        let (got, _) = top_k_closed(&t, 10, 2, 1000);
        assert!(got.iter().all(|c| c.items.len() >= 2));
        // {1,2,3} support 2 is the only closed set of size >= 2.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![1, 2, 3]);
        assert_eq!(got[0].support, 2);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(top_k_closed(&[], 5, 1, 100).0.len(), 0);
        let t = txs(&[&[1]]);
        assert_eq!(top_k_closed(&t, 0, 1, 100).0.len(), 0);
    }

    #[test]
    fn identical_transactions() {
        let t = txs(&[&[2, 4, 6], &[2, 4, 6], &[2, 4, 6]]);
        let (got, _) = top_k_closed(&t, 5, 1, 100);
        // Only one closed set: {2,4,6} with support 3.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].items, vec![2, 4, 6]);
        assert_eq!(got[0].support, 3);
    }

    #[test]
    fn all_closed_sets_are_distinct() {
        let t = txs(&[&[1, 2], &[2, 3], &[1, 3], &[1, 2, 3], &[3, 4], &[1, 4]]);
        let all = all_closed(&t, 1, 1);
        let set: HashSet<Vec<u32>> = all.iter().map(|c| c.items.clone()).collect();
        assert_eq!(set.len(), all.len(), "duplicate closed itemsets produced");
    }

    #[test]
    fn support_raising_prunes_but_keeps_answers() {
        // Random-ish transactions; compare pruned top-k against all_closed.
        let mut x = 0x51ed_5eedu64;
        let mut t: Vec<Vec<u32>> = Vec::new();
        for _ in 0..30 {
            let mut row = Vec::new();
            for item in 0..12u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 10 < 4 {
                    row.push(item);
                }
            }
            if !row.is_empty() {
                t.push(row);
            }
        }
        let all = all_closed(&t, 1, 2);
        let (top, capped) = top_k_closed(&t, 8, 2, 1_000_000);
        assert!(!capped);
        let want: Vec<u64> = all.iter().take(8).map(|c| c.support).collect();
        let have: Vec<u64> = top.iter().map(|c| c.support).collect();
        assert_eq!(have, want);
    }

    #[test]
    fn node_cap_reports_truncation() {
        let t: Vec<Vec<u32>> = (0..12u32)
            .map(|i| (0..12).filter(|j| j != &i).collect())
            .collect();
        let (_, capped) = top_k_closed(&t, 1000, 1, 5);
        assert!(capped);
    }
}
