//! Exact densest-subgraph solving for all density notions (paper Algorithms
//! 2 and 4, plus Goldberg/Chang–Qiao for edge density).
//!
//! Pipeline (identical for every notion, following the paper):
//!
//! 1. enumerate instances (edges / `h`-cliques \[56\] / ψ-instances \[58\]);
//! 2. peel to get the lower bound ρ̃ (paper Line 1);
//! 3. shrink to the `(⌈ρ̃⌉, ·)`-core (paper Line 2; Lemma 2);
//! 4. find the exact maximum density ρ\* by Dinkelbach iteration on the
//!    parameterized flow network: test `α`, and while some subgraph beats
//!    `α`, jump to the exact density of the min-cut witness. The paper uses
//!    the convex-programming solver of \[57\] here; Dinkelbach over the same
//!    flow network is also exact and reuses the network needed in step 5
//!    (the Frank–Wolfe solver of \[57\] is available in [`crate::fw`] and
//!    compared in the ablation benches);
//! 5. with the max flow at `α = ρ*` in hand, enumerate all densest subgraphs
//!    from the residual SCCs (paper Algorithm 3, [`crate::enumerate`]).
//!
//! Densities are exact rationals; all capacities are scaled by the density
//! denominator so the flow solver only ever sees integers.

use crate::density::Density;
use crate::enumerate::enumerate_min_cut_subgraphs;
use crate::instances::{enumerate_cliques, enumerate_pattern, InstanceSet};
use crate::notion::DensityNotion;
use crate::peeling::peel;
use maxflow::{FlowNetwork, INF};
use ugraph::{Graph, NodeId};

/// Exact solution: the maximum density and every node set attaining it.
#[derive(Debug, Clone)]
pub struct AllDensest {
    /// The exact maximum density ρ\*.
    pub density: Density,
    /// All densest node sets (sorted ids, sorted lexicographically), possibly
    /// truncated to the enumeration cap.
    pub subgraphs: Vec<Vec<NodeId>>,
    /// The maximum-sized densest subgraph (union of all densest subgraphs).
    pub max_sized: Vec<NodeId>,
    /// True if `subgraphs` was truncated.
    pub truncated: bool,
}

/// Computes **all** densest subgraphs of `g` under `notion`.
///
/// Returns `None` when `g` contains no instance of the notion at all (e.g. an
/// edgeless possible world): such worlds have maximum density 0 and, by the
/// paper's accounting (Table I), contribute no densest subgraph.
pub fn all_densest(g: &Graph, notion: &DensityNotion, cap: usize) -> Option<AllDensest> {
    solve(g, notion, Some(cap))
}

/// The exact maximum density ρ\* of any subgraph of `g`, or `None` if `g`
/// has no instances.
pub fn max_density(g: &Graph, notion: &DensityNotion) -> Option<Density> {
    solve(g, notion, None).map(|r| r.density)
}

/// The maximum-sized densest subgraph (and ρ\*), skipping the full
/// enumeration — this is what the NDS estimator calls per sampled world
/// (paper Algorithm 5 Line 4).
pub fn max_sized_densest(g: &Graph, notion: &DensityNotion) -> Option<(Density, Vec<NodeId>)> {
    solve(g, notion, None).map(|r| (r.density, r.max_sized))
}

/// Like [`max_density`] but *without* the `(⌈ρ̃⌉, ·)`-core reduction —
/// the flow networks span the whole graph. Exists only so the ablation bench
/// can quantify how much the paper's core pruning (Line 2) buys.
pub fn max_density_unpruned(g: &Graph, notion: &DensityNotion) -> Option<Density> {
    solve_opts(g, notion, None, false).map(|r| r.density)
}

/// `Clique(2)` and clique-shaped patterns are routed to the cheaper
/// specialized networks.
fn normalize(notion: &DensityNotion) -> DensityNotion {
    match notion {
        DensityNotion::Clique(2) => DensityNotion::Edge,
        DensityNotion::Pattern(p) if p.is_clique() && p.num_nodes() == 2 => DensityNotion::Edge,
        DensityNotion::Pattern(p) if p.is_clique() => DensityNotion::Clique(p.num_nodes()),
        other => other.clone(),
    }
}

/// Enumerates the instances of `notion` in `g`.
pub fn instances_of(g: &Graph, notion: &DensityNotion) -> InstanceSet {
    match normalize(notion) {
        DensityNotion::Edge => enumerate_cliques(g, 2),
        DensityNotion::Clique(h) => enumerate_cliques(g, h),
        DensityNotion::Pattern(p) => enumerate_pattern(g, &p),
    }
}

fn solve(g: &Graph, notion: &DensityNotion, enumerate_cap: Option<usize>) -> Option<AllDensest> {
    solve_opts(g, notion, enumerate_cap, true)
}

fn solve_opts(
    g: &Graph,
    notion: &DensityNotion,
    enumerate_cap: Option<usize>,
    prune: bool,
) -> Option<AllDensest> {
    let notion = normalize(notion);
    let instances = instances_of(g, &notion);
    if instances.count() == 0 {
        return None;
    }
    let n = g.num_nodes();
    let peeling = peel(n, &instances);
    debug_assert!(peeling.best_density > Density::ZERO);

    // (⌈ρ̃⌉, ·)-core reduction (paper Line 2). The densest subgraph survives
    // (Lemma 2), and so do all its instances. With pruning disabled (ablation
    // only) every node that touches an instance is kept.
    let k = if prune {
        peeling.best_density.ceil()
    } else {
        1
    };
    let core_nodes: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| peeling.core_number[v as usize] >= k)
        .collect();
    debug_assert!(!core_nodes.is_empty());
    let mut local_of = vec![u32::MAX; n];
    for (i, &v) in core_nodes.iter().enumerate() {
        local_of[v as usize] = i as u32;
    }
    let local_insts: Vec<Vec<u32>> = instances
        .instances
        .iter()
        .filter(|inst| inst.iter().all(|&v| local_of[v as usize] != u32::MAX))
        .map(|inst| inst.iter().map(|&v| local_of[v as usize]).collect())
        .collect();
    debug_assert!(!local_insts.is_empty());

    let nc = core_nodes.len();
    let arity = notion.arity() as u64;
    let mu = local_insts.len() as u64;

    // Dinkelbach iteration: α is always an achieved subgraph density; when
    // the test at α finds nothing denser, α = ρ*.
    let mut alpha = peeling.best_density;
    loop {
        let mut built = build_network(&notion, g, nc, &core_nodes, &local_of, &local_insts, alpha);
        let flow = built.net.max_flow(built.s, built.t);
        let trivial = arity
            .checked_mul(mu)
            .and_then(|x| x.checked_mul(alpha.den))
            .expect("trivial cut fits in u64");
        debug_assert!(flow <= trivial, "min cut cannot exceed the trivial cut");
        if flow == trivial {
            // α = ρ*. Extract results from this network's residual structure.
            let result = match enumerate_cap {
                Some(cap) => {
                    let e = enumerate_min_cut_subgraphs(
                        &built.net,
                        built.s,
                        built.t,
                        nc,
                        &core_nodes,
                        cap,
                    );
                    AllDensest {
                        density: alpha,
                        subgraphs: e.subgraphs,
                        max_sized: e.max_sized,
                        truncated: e.truncated,
                    }
                }
                None => {
                    let reach_t = built.net.can_reach(built.t);
                    let max_sized: Vec<NodeId> = (0..nc)
                        .filter(|&i| !reach_t[i])
                        .map(|i| core_nodes[i])
                        .collect();
                    AllDensest {
                        density: alpha,
                        subgraphs: Vec::new(),
                        max_sized,
                        truncated: false,
                    }
                }
            };
            return Some(result);
        }
        // A denser subgraph exists: the min-cut source side is a witness.
        let reach = built.net.reachable_from(built.s);
        let witness: Vec<u32> = (0..nc as u32).filter(|&i| reach[i as usize]).collect();
        debug_assert!(!witness.is_empty());
        let cnt = count_within_local(nc, &local_insts, &witness);
        let d = Density::new(cnt, witness.len() as u64);
        debug_assert!(d > alpha, "Dinkelbach must strictly improve");
        alpha = d;
    }
}

fn count_within_local(nc: usize, insts: &[Vec<u32>], nodes: &[u32]) -> u64 {
    let mut mark = vec![false; nc];
    for &v in nodes {
        mark[v as usize] = true;
    }
    insts
        .iter()
        .filter(|inst| inst.iter().all(|&v| mark[v as usize]))
        .count() as u64
}

struct BuiltNetwork {
    net: FlowNetwork,
    s: usize,
    t: usize,
}

/// Builds the parameterized flow network for `α = a/b`, capacity-scaled by
/// `b` (paper Example 4 network for edges, Algorithm 6 for cliques,
/// Algorithm 7 for patterns).
fn build_network(
    notion: &DensityNotion,
    g: &Graph,
    nc: usize,
    core_nodes: &[NodeId],
    local_of: &[u32],
    local_insts: &[Vec<u32>],
    alpha: Density,
) -> BuiltNetwork {
    let (a, b) = (alpha.num, alpha.den);
    match notion {
        DensityNotion::Edge => {
            // Nodes: 0..nc = V, nc = s, nc+1 = t.
            let s = nc;
            let t = nc + 1;
            let mut net = FlowNetwork::new(nc + 2);
            // Local degrees within the core.
            let mut deg = vec![0u64; nc];
            for inst in local_insts {
                deg[inst[0] as usize] += 1;
                deg[inst[1] as usize] += 1;
            }
            for v in 0..nc {
                net.add_edge(s, v, b * deg[v], 0);
                net.add_edge(v, t, 2 * a, 0);
            }
            for inst in local_insts {
                // One arc pair models the undirected edge: cap b both ways.
                net.add_edge(inst[0] as usize, inst[1] as usize, b, b);
            }
            let _ = (g, core_nodes, local_of);
            BuiltNetwork { net, s, t }
        }
        DensityNotion::Clique(h) => {
            let h = *h;
            // Λ: distinct (h−1)-cliques contained in h-cliques (paper Line 3
            // of Algorithm 2), found as the h facets of each h-clique.
            let mut lambda_of: std::collections::HashMap<Vec<u32>, u32> =
                std::collections::HashMap::new();
            // (λ index, completing node) pairs — one per (clique, member).
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for inst in local_insts {
                for (i, &v) in inst.iter().enumerate() {
                    let mut facet = inst.clone();
                    facet.remove(i);
                    let next_id = lambda_of.len() as u32;
                    let id = *lambda_of.entry(facet).or_insert(next_id);
                    pairs.push((id, v));
                }
            }
            let num_lambda = lambda_of.len();
            // Nodes: 0..nc = V, nc..nc+|Λ| = Λ, then s, t.
            let s = nc + num_lambda;
            let t = s + 1;
            let mut net = FlowNetwork::new(nc + num_lambda + 2);
            let mut deg = vec![0u64; nc];
            for inst in local_insts {
                for &v in inst {
                    deg[v as usize] += 1;
                }
            }
            for v in 0..nc {
                net.add_edge(s, v, b * deg[v], 0);
                net.add_edge(v, t, (h as u64) * a, 0);
            }
            // λ → each member with infinite capacity (Algorithm 6 Line 8).
            for (facet, &id) in &lambda_of {
                for &v in facet {
                    net.add_edge(nc + id as usize, v as usize, INF, 0);
                }
            }
            // v → λ with capacity 1 (scaled: b) per completed h-clique.
            for &(id, v) in &pairs {
                net.add_edge(v as usize, nc + id as usize, b, 0);
            }
            BuiltNetwork { net, s, t }
        }
        DensityNotion::Pattern(p) => {
            let kp = p.num_nodes() as u64;
            // Λ′: groups of instances sharing a node set (Algorithm 7 Line 5).
            let mut groups: std::collections::HashMap<Vec<u32>, u64> =
                std::collections::HashMap::new();
            for inst in local_insts {
                *groups.entry(inst.clone()).or_insert(0) += 1;
            }
            let group_list: Vec<(&Vec<u32>, u64)> = groups.iter().map(|(k, &v)| (k, v)).collect();
            let num_groups = group_list.len();
            let s = nc + num_groups;
            let t = s + 1;
            let mut net = FlowNetwork::new(nc + num_groups + 2);
            let mut deg = vec![0u64; nc];
            for inst in local_insts {
                for &v in inst {
                    deg[v as usize] += 1;
                }
            }
            for v in 0..nc {
                net.add_edge(s, v, b * deg[v], 0);
                net.add_edge(v, t, kp * a, 0);
            }
            for (gi, &(nodes, cnt)) in group_list.iter().enumerate() {
                for &v in nodes {
                    // λ′ → v: |g|(|V_ψ|−1); v → λ′: |g| (scaled by b).
                    net.add_edge(nc + gi, v as usize, b * cnt * (kp - 1), 0);
                    net.add_edge(v as usize, nc + gi, b * cnt, 0);
                }
            }
            BuiltNetwork { net, s, t }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::Pattern;

    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn edge_densest_k4_tail() {
        let r = all_densest(&k4_tail(), &DensityNotion::Edge, 100).unwrap();
        assert_eq!(r.density, Density::new(6, 4));
        assert_eq!(r.subgraphs, vec![vec![0, 1, 2, 3]]);
        assert_eq!(r.max_sized, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edgeless_world_has_no_densest_subgraph() {
        let g = Graph::new(5);
        assert!(all_densest(&g, &DensityNotion::Edge, 10).is_none());
        assert!(max_density(&g, &DensityNotion::Clique(3)).is_none());
    }

    #[test]
    fn single_edge_world() {
        let g = Graph::from_edges(4, &[(1, 3)]);
        let r = all_densest(&g, &DensityNotion::Edge, 10).unwrap();
        assert_eq!(r.density, Density::new(1, 2));
        assert_eq!(r.subgraphs, vec![vec![1, 3]]);
    }

    #[test]
    fn two_disjoint_edges_are_both_densest() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = all_densest(&g, &DensityNotion::Edge, 10).unwrap();
        assert_eq!(r.density, Density::new(1, 2));
        let mut subs = r.subgraphs.clone();
        subs.sort();
        // {0,1}, {2,3}, and their union {0,1,2,3} (density 2/4 = 1/2) are all
        // densest.
        assert_eq!(subs, vec![vec![0, 1], vec![0, 1, 2, 3], vec![2, 3]]);
        assert_eq!(r.max_sized, vec![0, 1, 2, 3]);
    }

    #[test]
    fn triangle_densest_clique3() {
        // Two triangles sharing no node, plus a bridge.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (3, 4),
                (3, 5),
                (4, 5),
                (2, 3),
                (5, 6),
            ],
        );
        let r = all_densest(&g, &DensityNotion::Clique(3), 100).unwrap();
        assert_eq!(r.density, Density::new(1, 3));
        let mut subs = r.subgraphs.clone();
        subs.sort();
        assert_eq!(
            subs,
            vec![vec![0, 1, 2], vec![0, 1, 2, 3, 4, 5], vec![3, 4, 5]]
        );
        assert_eq!(r.max_sized, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clique2_matches_edge() {
        let g = k4_tail();
        let a = all_densest(&g, &DensityNotion::Edge, 100).unwrap();
        let b = all_densest(&g, &DensityNotion::Clique(2), 100).unwrap();
        assert_eq!(a.density, b.density);
        assert_eq!(a.subgraphs, b.subgraphs);
    }

    #[test]
    fn diamond_densest_on_k4() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let r = all_densest(&g, &DensityNotion::Pattern(Pattern::diamond()), 100).unwrap();
        // 6 diamonds on 4 nodes.
        assert_eq!(r.density, Density::new(6, 4));
        assert_eq!(r.subgraphs, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn max_sized_matches_union_of_all() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let (d, ms) = max_sized_densest(&g, &DensityNotion::Edge).unwrap();
        assert_eq!(d, Density::new(1, 2));
        assert_eq!(ms, vec![0, 1, 2, 3]);
    }

    /// Brute-force reference: all densest subgraphs by sweeping every
    /// non-empty node subset.
    fn brute_force(g: &Graph, notion: &DensityNotion) -> Option<(Density, Vec<Vec<NodeId>>)> {
        let inst = instances_of(g, notion);
        if inst.count() == 0 {
            return None;
        }
        let n = g.num_nodes();
        assert!(n <= 16);
        let mut best = Density::ZERO;
        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&v| mask >> v & 1 == 1).collect();
            let cnt = inst.count_within(n, &nodes);
            if cnt == 0 {
                continue;
            }
            let d = Density::new(cnt, nodes.len() as u64);
            if d > best {
                best = d;
                sets.clear();
                sets.push(nodes);
            } else if d == best {
                sets.push(nodes);
            }
        }
        sets.sort();
        Some((best, sets))
    }

    fn pseudo_random_graph(n: usize, edge_pct: u64, seed: &mut u64) -> Graph {
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                *seed ^= *seed << 13;
                *seed ^= *seed >> 7;
                *seed ^= *seed << 17;
                if *seed % 100 < edge_pct {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn cross_validate_edge_density_against_brute_force() {
        let mut seed = 0xabcd_ef12u64;
        for trial in 0..30 {
            let g = pseudo_random_graph(7, 45, &mut seed);
            let ours = all_densest(&g, &DensityNotion::Edge, 10_000);
            let truth = brute_force(&g, &DensityNotion::Edge);
            match (ours, truth) {
                (None, None) => {}
                (Some(r), Some((d, sets))) => {
                    assert_eq!(r.density, d, "trial {trial}");
                    let mut subs = r.subgraphs.clone();
                    subs.sort();
                    assert_eq!(subs, sets, "trial {trial}");
                    assert!(!r.truncated);
                    // max_sized = union of all densest subgraphs.
                    let mut union: Vec<NodeId> = sets.iter().flatten().copied().collect();
                    union.sort_unstable();
                    union.dedup();
                    assert_eq!(r.max_sized, union, "trial {trial}");
                }
                (a, b) => panic!("trial {trial}: ours = {a:?}, truth = {b:?}"),
            }
        }
    }

    #[test]
    fn cross_validate_clique3_against_brute_force() {
        let mut seed = 0x1357_9bdfu64;
        for trial in 0..30 {
            let g = pseudo_random_graph(7, 55, &mut seed);
            let ours = all_densest(&g, &DensityNotion::Clique(3), 10_000);
            let truth = brute_force(&g, &DensityNotion::Clique(3));
            match (ours, truth) {
                (None, None) => {}
                (Some(r), Some((d, sets))) => {
                    assert_eq!(r.density, d, "trial {trial}");
                    let mut subs = r.subgraphs.clone();
                    subs.sort();
                    assert_eq!(subs, sets, "trial {trial}");
                }
                (a, b) => panic!("trial {trial}: ours = {a:?}, truth = {b:?}"),
            }
        }
    }

    #[test]
    fn cross_validate_clique4_against_brute_force() {
        let mut seed = 0x0f0f_0f0fu64;
        for trial in 0..20 {
            let g = pseudo_random_graph(7, 65, &mut seed);
            let ours = all_densest(&g, &DensityNotion::Clique(4), 10_000);
            let truth = brute_force(&g, &DensityNotion::Clique(4));
            match (ours, truth) {
                (None, None) => {}
                (Some(r), Some((d, sets))) => {
                    assert_eq!(r.density, d, "trial {trial}");
                    let mut subs = r.subgraphs.clone();
                    subs.sort();
                    assert_eq!(subs, sets, "trial {trial}");
                }
                (a, b) => panic!("trial {trial}: ours = {a:?}, truth = {b:?}"),
            }
        }
    }

    #[test]
    fn cross_validate_patterns_against_brute_force() {
        for (pi, pattern) in [
            Pattern::two_star(),
            Pattern::three_star(),
            Pattern::c3_star(),
            Pattern::diamond(),
        ]
        .iter()
        .enumerate()
        {
            let mut seed = 0x2468_ace0u64 + pi as u64;
            for trial in 0..15 {
                let g = pseudo_random_graph(6, 50, &mut seed);
                let notion = DensityNotion::Pattern(pattern.clone());
                let ours = all_densest(&g, &notion, 10_000);
                let truth = brute_force(&g, &notion);
                match (ours, truth) {
                    (None, None) => {}
                    (Some(r), Some((d, sets))) => {
                        assert_eq!(r.density, d, "{} trial {trial}", pattern.name());
                        let mut subs = r.subgraphs.clone();
                        subs.sort();
                        assert_eq!(subs, sets, "{} trial {trial}", pattern.name());
                    }
                    (a, b) => panic!(
                        "{} trial {trial}: ours = {a:?}, truth = {b:?}",
                        pattern.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn enumeration_cap_truncates() {
        // A perfect matching has exponentially many densest subgraphs (any
        // union of its edges): cap must kick in.
        let g = Graph::from_edges(10, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]);
        let r = all_densest(&g, &DensityNotion::Edge, 5).unwrap();
        assert_eq!(r.subgraphs.len(), 5);
        assert!(r.truncated);
        assert_eq!(r.max_sized.len(), 10);
    }
}
