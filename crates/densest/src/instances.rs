//! Instance enumeration: `h`-cliques (kClist-style ordered search \[56\]) and
//! arbitrary pattern instances (backtracking subgraph matching \[58\]).
//!
//! An *instance* of a pattern `ψ` in `G` is a (non-induced) subgraph of `G`
//! isomorphic to `ψ`; instances are identified by their edge image, so two
//! embeddings related by a pattern automorphism are the same instance. For
//! density purposes each instance contributes its node set; several distinct
//! instances may share one node set (e.g. the 6 diamonds on a `K_4`), which is
//! exactly what the grouped flow network of Algorithm 7 exploits.

use std::collections::HashSet;
use ugraph::{Graph, NodeBitSet, NodeId, Pattern};

/// All instances of a density notion in `G`, one entry per instance.
#[derive(Debug, Clone)]
pub struct InstanceSet {
    /// Number of pattern nodes `|V_ψ|`.
    pub arity: usize,
    /// Node set of each instance, sorted ascending. Duplicates allowed:
    /// distinct instances on the same node set each get an entry.
    pub instances: Vec<Vec<NodeId>>,
}

impl InstanceSet {
    /// Total instance count `µ(G)`.
    #[inline]
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Instance-degree of every node: the number of instances containing it
    /// (paper Def. 6 generalized to patterns).
    pub fn degrees(&self, n: usize) -> Vec<u64> {
        let mut deg = vec![0u64; n];
        for inst in &self.instances {
            for &v in inst {
                deg[v as usize] += 1;
            }
        }
        deg
    }

    /// Number of instances whose node set lies entirely inside `nodes`
    /// (`µ(G[U])` for non-induced instances — instances are edge subsets of
    /// `G`, so an instance survives in `G[U]` iff its nodes all lie in `U`).
    pub fn count_within(&self, n: usize, nodes: &[NodeId]) -> u64 {
        let mark = NodeBitSet::from_members(n, nodes);
        self.instances
            .iter()
            .filter(|inst| inst.iter().all(|&v| mark.contains(v as usize)))
            .count() as u64
    }

    /// Keeps only instances fully contained in the node set `keep` (marks).
    pub fn retain_within(&mut self, keep: &[bool]) {
        self.instances
            .retain(|inst| inst.iter().all(|&v| keep[v as usize]));
    }

    /// Groups instances by node set, returning `(node_set, multiplicity)`
    /// pairs — the `Λ'` groups of Algorithm 7.
    pub fn grouped(&self) -> Vec<(Vec<NodeId>, u64)> {
        let mut sorted = self.instances.clone();
        sorted.sort_unstable();
        let mut out: Vec<(Vec<NodeId>, u64)> = Vec::new();
        for inst in sorted {
            match out.last_mut() {
                Some((set, cnt)) if *set == inst => *cnt += 1,
                _ => out.push((inst, 1)),
            }
        }
        out
    }
}

/// Enumerates all `h`-cliques of `G` (`h ≥ 1`), returned as sorted node sets.
///
/// Uses the ordered-extension scheme of kClist \[56\]: each clique is produced
/// exactly once in increasing node order, with candidate sets maintained as
/// intersections of (higher-numbered) neighbor lists.
pub fn enumerate_cliques(g: &Graph, h: usize) -> InstanceSet {
    assert!(h >= 1);
    let mut instances = Vec::new();
    if h == 1 {
        instances.extend((0..g.num_nodes() as NodeId).map(|v| vec![v]));
        return InstanceSet {
            arity: 1,
            instances,
        };
    }
    if h == 2 {
        instances.extend(g.edges().iter().map(|&(u, v)| vec![u, v]));
        return InstanceSet {
            arity: 2,
            instances,
        };
    }
    let mut current: Vec<NodeId> = Vec::with_capacity(h);
    // One candidate scratch buffer per recursion depth, reused across the
    // whole enumeration — the search allocates nothing per extension.
    let mut pool: Vec<Vec<NodeId>> = vec![Vec::new(); h.saturating_sub(2)];
    for v in 0..g.num_nodes() as NodeId {
        // Candidates: neighbors of v with higher id — the `> v` suffix of
        // the sorted CSR row.
        let row = g.neighbors(v);
        let cand = &row[row.partition_point(|&w| w <= v)..];
        current.push(v);
        extend_clique(g, h, &mut current, cand, &mut pool, &mut instances);
        current.pop();
    }
    InstanceSet {
        arity: h,
        instances,
    }
}

fn extend_clique(
    g: &Graph,
    h: usize,
    current: &mut Vec<NodeId>,
    cand: &[NodeId],
    pool: &mut [Vec<NodeId>],
    out: &mut Vec<Vec<NodeId>>,
) {
    // Prune: not enough candidates left to finish the clique.
    if current.len() + cand.len() < h {
        return;
    }
    // Last level: every remaining candidate completes a clique on its own —
    // no intersection needed.
    if current.len() + 1 == h {
        for &w in cand {
            current.push(w);
            out.push(current.clone());
            current.pop();
        }
        return;
    }
    let (buf, rest) = pool.split_first_mut().expect("pool sized to clique depth");
    for (i, &w) in cand.iter().enumerate() {
        // New candidates: members of cand after w that are adjacent to w.
        // `cand` and the CSR neighbor row of w are both sorted ascending and
        // every remaining candidate exceeds w, so the intersection runs over
        // the `> w` suffix of the row only.
        let row = g.neighbors(w);
        let row = &row[row.partition_point(|&y| y <= w)..];
        intersect_sorted_into(&cand[i + 1..], row, buf);
        current.push(w);
        // `buf` is consumed immutably by the recursion while deeper levels
        // use the remaining pool entries, so the split keeps borrows disjoint.
        let next = std::mem::take(buf);
        extend_clique(g, h, current, &next, rest, out);
        *buf = next;
        current.pop();
    }
}

/// Intersection of two sorted ascending `NodeId` slices, written into `out`
/// (cleared first). Size-adaptive: similar lengths use a linear merge;
/// skewed lengths gallop — each element of the smaller slice is
/// binary-searched in the remaining suffix of the larger, so a tiny
/// candidate set against a hub's neighbor row costs `O(small · log large)`
/// instead of `O(large)`.
fn intersect_sorted_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * 8 < large.len() {
        let mut lo = 0usize;
        for &x in small {
            let idx = lo + large[lo..].partition_point(|&y| y < x);
            if idx < large.len() && large[idx] == x {
                out.push(x);
                lo = idx + 1;
            } else {
                lo = idx;
            }
        }
        return;
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Enumerates all instances of `pattern` in `G`.
///
/// Backtracking over an adjacency-connected ordering of the pattern nodes;
/// embeddings that share the same edge image (pattern automorphisms) are
/// deduplicated so each instance is reported once. For clique patterns this
/// delegates to the faster [`enumerate_cliques`].
pub fn enumerate_pattern(g: &Graph, pattern: &Pattern) -> InstanceSet {
    if pattern.is_clique() {
        return enumerate_cliques(g, pattern.num_nodes());
    }
    let k = pattern.num_nodes();
    let order = search_order(pattern);
    // For each position i > 0, the earlier positions adjacent to order[i].
    let back_edges: Vec<Vec<usize>> = (0..k)
        .map(|i| {
            (0..i)
                .filter(|&j| pattern.has_edge(order[i], order[j]))
                .collect()
        })
        .collect();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(k);
    let mut seen_edge_images: HashSet<Vec<(NodeId, NodeId)>> = HashSet::new();
    let mut instances = Vec::new();
    embed(
        g,
        pattern,
        &order,
        &back_edges,
        &mut assignment,
        &mut seen_edge_images,
        &mut instances,
    );
    InstanceSet {
        arity: k,
        instances,
    }
}

/// Orders pattern nodes so every node (after the first) is adjacent to an
/// earlier one, starting from a maximum-degree node (small candidate sets).
fn search_order(pattern: &Pattern) -> Vec<usize> {
    let k = pattern.num_nodes();
    let start = (0..k).max_by_key(|&u| pattern.degree(u)).unwrap();
    let mut order = vec![start];
    let mut placed = vec![false; k];
    placed[start] = true;
    while order.len() < k {
        // Next: an unplaced node adjacent to a placed one, max degree first.
        let next = (0..k)
            .filter(|&u| !placed[u] && order.iter().any(|&v| pattern.has_edge(u, v)))
            .max_by_key(|&u| pattern.degree(u))
            .expect("pattern is connected");
        placed[next] = true;
        order.push(next);
    }
    order
}

fn embed(
    g: &Graph,
    pattern: &Pattern,
    order: &[usize],
    back_edges: &[Vec<usize>],
    assignment: &mut Vec<NodeId>,
    seen: &mut HashSet<Vec<(NodeId, NodeId)>>,
    out: &mut Vec<Vec<NodeId>>,
) {
    let pos = assignment.len();
    if pos == order.len() {
        // Canonical edge image: map each pattern edge through the embedding.
        let mut slot = vec![NodeId::MAX; order.len()];
        for (i, &p) in order.iter().enumerate() {
            slot[p] = assignment[i];
        }
        let mut image: Vec<(NodeId, NodeId)> = pattern
            .edges()
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (slot[a as usize], slot[b as usize]);
                if x < y {
                    (x, y)
                } else {
                    (y, x)
                }
            })
            .collect();
        image.sort_unstable();
        if seen.insert(image) {
            let mut nodes = assignment.clone();
            nodes.sort_unstable();
            out.push(nodes);
        }
        return;
    }
    // Candidates: all nodes for the root; afterwards the neighbors of the
    // first already-matched pattern-neighbor (connectivity of the order).
    let candidates: Vec<NodeId> = if pos == 0 {
        (0..g.num_nodes() as NodeId).collect()
    } else {
        let anchor = back_edges[pos]
            .first()
            .copied()
            .expect("search order keeps connectivity");
        g.neighbors(assignment[anchor]).to_vec()
    };
    'cand: for w in candidates {
        if assignment.contains(&w) {
            continue; // embeddings are injective
        }
        for &j in back_edges[pos].iter().skip(if pos == 0 { 0 } else { 1 }) {
            if !g.has_edge(w, assignment[j]) {
                continue 'cand;
            }
        }
        assignment.push(w);
        embed(g, pattern, order, back_edges, assignment, seen, out);
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn triangle_counts() {
        let g = k4();
        assert_eq!(enumerate_cliques(&g, 3).count(), 4);
        assert_eq!(enumerate_cliques(&g, 4).count(), 1);
        assert_eq!(enumerate_cliques(&g, 2).count(), 6);
        assert_eq!(enumerate_cliques(&g, 5).count(), 0);
    }

    #[test]
    fn clique_counts_on_k6() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(6, &edges);
        // C(6, h) cliques of each size.
        assert_eq!(enumerate_cliques(&g, 3).count(), 20);
        assert_eq!(enumerate_cliques(&g, 4).count(), 15);
        assert_eq!(enumerate_cliques(&g, 5).count(), 6);
        assert_eq!(enumerate_cliques(&g, 6).count(), 1);
    }

    #[test]
    fn cliques_are_sorted_and_unique() {
        let g = k4();
        let tris = enumerate_cliques(&g, 3);
        for t in &tris.instances {
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
        let set: HashSet<_> = tris.instances.iter().cloned().collect();
        assert_eq!(set.len(), tris.count());
    }

    #[test]
    fn degrees_and_count_within() {
        let g = k4();
        let tris = enumerate_cliques(&g, 3);
        let deg = tris.degrees(4);
        assert_eq!(deg, vec![3, 3, 3, 3]);
        assert_eq!(tris.count_within(4, &[0, 1, 2]), 1);
        assert_eq!(tris.count_within(4, &[0, 1, 2, 3]), 4);
        assert_eq!(tris.count_within(4, &[0, 1]), 0);
    }

    #[test]
    fn two_star_count_matches_formula() {
        // #2-stars = Σ_v C(deg(v), 2).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let inst = enumerate_pattern(&g, &Pattern::two_star());
        let expected: usize = (0..5)
            .map(|v| {
                let d = g.degree(v);
                d * d.saturating_sub(1) / 2
            })
            .sum();
        assert_eq!(inst.count(), expected); // 3 + 1 = 4
        assert_eq!(inst.count(), 4);
    }

    #[test]
    fn three_star_count_matches_formula() {
        let g = k4();
        // Each K4 node has degree 3: C(3,3) = 1 three-star per node.
        let inst = enumerate_pattern(&g, &Pattern::three_star());
        assert_eq!(inst.count(), 4);
    }

    #[test]
    fn diamond_count_on_k4() {
        // K4 contains 6 diamonds (one per choice of the omitted edge), all on
        // the same node set.
        let inst = enumerate_pattern(&k4(), &Pattern::diamond());
        assert_eq!(inst.count(), 6);
        let groups = inst.grouped();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, vec![0, 1, 2, 3]);
        assert_eq!(groups[0].1, 6);
    }

    #[test]
    fn paw_count_on_triangle_with_tail() {
        // Exactly the pattern itself: triangle {0,1,2} + pendant 3 on 0.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3)]);
        let inst = enumerate_pattern(&g, &Pattern::c3_star());
        assert_eq!(inst.count(), 1);
        assert_eq!(inst.instances[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn paw_count_on_k4() {
        // K4: 4 triangles × 1 remaining node × 3 attachment points = 12 paws.
        let inst = enumerate_pattern(&k4(), &Pattern::c3_star());
        assert_eq!(inst.count(), 12);
    }

    #[test]
    fn pattern_clique_delegates() {
        let inst = enumerate_pattern(&k4(), &Pattern::clique(3));
        assert_eq!(inst.count(), 4);
    }

    #[test]
    fn retain_within_filters() {
        let g = k4();
        let mut tris = enumerate_cliques(&g, 3);
        let keep = vec![true, true, true, false];
        tris.retain_within(&keep);
        assert_eq!(tris.count(), 1);
        assert_eq!(tris.instances[0], vec![0, 1, 2]);
    }

    #[test]
    fn brute_force_cross_check_diamond() {
        // Random-ish graph: verify the matcher against a brute-force count
        // over all 4-node subsets and their sub-edge-sets.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (1, 4),
                (4, 5),
            ],
        );
        let pattern = Pattern::diamond();
        let fast = enumerate_pattern(&g, &pattern).count();
        let slow = brute_force_count(&g, &pattern);
        assert_eq!(fast, slow);
    }

    #[test]
    fn brute_force_cross_check_paw() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (1, 6),
            ],
        );
        let pattern = Pattern::c3_star();
        assert_eq!(
            enumerate_pattern(&g, &pattern).count(),
            brute_force_count(&g, &pattern)
        );
    }

    /// Counts instances by checking every injective map from pattern nodes to
    /// graph nodes and deduplicating edge images.
    fn brute_force_count(g: &Graph, pattern: &Pattern) -> usize {
        let k = pattern.num_nodes();
        let n = g.num_nodes();
        let mut images: HashSet<Vec<(NodeId, NodeId)>> = HashSet::new();
        let mut map = vec![0usize; k];
        fn rec(
            g: &Graph,
            pattern: &Pattern,
            map: &mut Vec<usize>,
            pos: usize,
            n: usize,
            images: &mut HashSet<Vec<(NodeId, NodeId)>>,
        ) {
            let k = pattern.num_nodes();
            if pos == k {
                for &(a, b) in pattern.edges() {
                    if !g.has_edge(map[a as usize] as NodeId, map[b as usize] as NodeId) {
                        return;
                    }
                }
                let mut image: Vec<(NodeId, NodeId)> = pattern
                    .edges()
                    .iter()
                    .map(|&(a, b)| {
                        let (x, y) = (map[a as usize] as NodeId, map[b as usize] as NodeId);
                        if x < y {
                            (x, y)
                        } else {
                            (y, x)
                        }
                    })
                    .collect();
                image.sort_unstable();
                images.insert(image);
                return;
            }
            for v in 0..n {
                if !map[..pos].contains(&v) {
                    map[pos] = v;
                    rec(g, pattern, map, pos + 1, n, images);
                }
            }
        }
        rec(g, pattern, &mut map, 0, n, &mut images);
        images.len()
    }
}
