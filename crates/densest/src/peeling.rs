//! Instance-based peeling: the greedy 1/`|V_ψ|` approximation and the density
//! lower bound ρ̃ (paper Line 1 of Algorithms 2 and 4; Charikar \[2\] for edge
//! density, Tsourakakis/Fang \[19\], \[5\] for cliques and patterns).
//!
//! Peeling repeatedly removes a node of minimum instance-degree and records
//! the density of every suffix; the best suffix density ρ̃ lower-bounds ρ\*
//! and seeds both the core reduction and the Dinkelbach iteration.

use crate::density::Density;
use crate::instances::InstanceSet;
use ugraph::NodeId;

/// Outcome of a full peeling pass.
#[derive(Debug, Clone)]
pub struct Peeling {
    /// Best suffix density ρ̃ (a lower bound on ρ\*).
    pub best_density: Density,
    /// Node set of the best suffix (a 1/|V_ψ|-approximate densest subgraph).
    pub best_subgraph: Vec<NodeId>,
    /// Core number of every node w.r.t. instance-degree: the largest `k` such
    /// that the node belongs to the `(k, ψ)`-core.
    pub core_number: Vec<u64>,
    /// Nodes in reverse removal order (the last removed first). Suffixes of
    /// the peeling are prefixes of this list.
    pub removal_order: Vec<NodeId>,
    /// Instance count of each suffix: `suffix_instances[i]` = number of
    /// instances alive just before the `i`-th removal (aligned with
    /// `removal_order` reversed; see [`Peeling::suffixes`]).
    suffix_counts: Vec<u64>,
}

impl Peeling {
    /// Iterates the peeling suffixes as `(node_set, instance_count)`, largest
    /// suffix (the full node set of live nodes) first.
    pub fn suffixes(&self) -> impl Iterator<Item = (&[NodeId], u64)> + '_ {
        let k = self.removal_order.len();
        (0..k).map(move |i| {
            // Suffix after i removals = last (k - i) removed nodes.
            let nodes = &self.removal_order[..k - i];
            (nodes, self.suffix_counts[i])
        })
    }
}

/// Peels `n` nodes by minimum instance-degree.
///
/// Nodes in no instance are removed first (degree 0); ties broken by node id
/// for determinism. Runs in `O((n + Σ|inst|) log n)` with a lazy binary heap.
pub fn peel(n: usize, instances: &InstanceSet) -> Peeling {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut degree = instances.degrees(n);
    // Per-node list of instance indices.
    let mut node_insts: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, inst) in instances.instances.iter().enumerate() {
        for &v in inst {
            node_insts[v as usize].push(i as u32);
        }
    }
    let mut alive_inst = vec![true; instances.count()];
    let mut alive_node = vec![true; n];
    let mut live_instances = instances.count() as u64;

    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> =
        (0..n).map(|v| Reverse((degree[v], v as NodeId))).collect();

    let mut best_density = Density::ZERO;
    let mut best_suffix_len = n;
    let mut removal_rev: Vec<NodeId> = Vec::with_capacity(n); // removal order
    let mut suffix_counts_fwd: Vec<u64> = Vec::with_capacity(n);
    let mut core_number = vec![0u64; n];
    let mut running_max = 0u64;

    for remaining in (1..=n).rev() {
        // Record the density of the current suffix (before this removal).
        let d = Density::new(live_instances, remaining as u64);
        suffix_counts_fwd.push(live_instances);
        if d > best_density {
            best_density = d;
            best_suffix_len = remaining;
        }
        // Pop the minimum-degree live node (lazy deletion).
        let v = loop {
            let Reverse((d, v)) = heap.pop().expect("n live nodes remain");
            if alive_node[v as usize] && degree[v as usize] == d {
                break v;
            }
        };
        alive_node[v as usize] = false;
        running_max = running_max.max(degree[v as usize]);
        core_number[v as usize] = running_max;
        removal_rev.push(v);
        // Kill the instances containing v.
        for &ii in &node_insts[v as usize] {
            if alive_inst[ii as usize] {
                alive_inst[ii as usize] = false;
                live_instances -= 1;
                for &w in &instances.instances[ii as usize] {
                    if alive_node[w as usize] {
                        degree[w as usize] -= 1;
                        heap.push(Reverse((degree[w as usize], w)));
                    }
                }
            }
        }
    }
    debug_assert_eq!(live_instances, 0);

    // removal_order: last removed first.
    removal_rev.reverse();
    let best_subgraph: Vec<NodeId> = {
        let mut s = removal_rev[..best_suffix_len].to_vec();
        s.sort_unstable();
        s
    };
    Peeling {
        best_density,
        best_subgraph,
        core_number,
        removal_order: removal_rev,
        suffix_counts: suffix_counts_fwd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::enumerate_cliques;
    use ugraph::Graph;

    /// K4 plus a pendant path: densest (edge) subgraph is the K4 with 6/4.
    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn edge_peeling_finds_k4() {
        let g = k4_tail();
        let edges = enumerate_cliques(&g, 2);
        let p = peel(g.num_nodes(), &edges);
        // Peeling is exact on this instance.
        assert_eq!(p.best_density, Density::new(6, 4));
        assert_eq!(p.best_subgraph, vec![0, 1, 2, 3]);
    }

    #[test]
    fn core_numbers_match_k_core() {
        let g = k4_tail();
        let edges = enumerate_cliques(&g, 2);
        let p = peel(g.num_nodes(), &edges);
        // K4 nodes have core number 3; path nodes 1.
        assert_eq!(p.core_number[0], 3);
        assert_eq!(p.core_number[3], 3);
        assert_eq!(p.core_number[4], 1);
        assert_eq!(p.core_number[5], 1);
    }

    #[test]
    fn triangle_peeling() {
        let g = k4_tail();
        let tris = enumerate_cliques(&g, 3);
        let p = peel(g.num_nodes(), &tris);
        // 4 triangles all inside the K4: ρ̃ = 4/4 = 1.
        assert_eq!(p.best_density, Density::new(4, 4));
        assert_eq!(p.best_subgraph, vec![0, 1, 2, 3]);
        // Triangle core numbers: K4 nodes participate in 3 triangles; after
        // peeling them greedily each is removed at degree ≥ 1... the max
        // threshold is C(3,2) = 3 for the last ones.
        assert_eq!(p.core_number[4], 0);
        assert_eq!(p.core_number[5], 0);
    }

    #[test]
    fn empty_graph_peels_to_zero() {
        let g = Graph::new(3);
        let edges = enumerate_cliques(&g, 2);
        let p = peel(3, &edges);
        assert_eq!(p.best_density, Density::ZERO);
        assert_eq!(p.removal_order.len(), 3);
    }

    #[test]
    fn suffixes_are_consistent() {
        let g = k4_tail();
        let edges = enumerate_cliques(&g, 2);
        let p = peel(g.num_nodes(), &edges);
        let mut last_len = usize::MAX;
        for (nodes, cnt) in p.suffixes() {
            assert!(nodes.len() < last_len);
            last_len = nodes.len();
            // Instance count of the suffix must equal a direct recount.
            assert_eq!(edges.count_within(g.num_nodes(), nodes), cnt);
        }
    }

    #[test]
    fn peeling_is_half_approximate_on_random_graphs() {
        // Charikar's guarantee for edge density: ρ̃ >= ρ*/2. Brute-force ρ*
        // on small pseudo-random graphs.
        let mut x = 0xdead_beefu64;
        for trial in 0..20 {
            let n = 6 + (trial % 3);
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 10 < 4 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let inst = enumerate_cliques(&g, 2);
            let p = peel(n, &inst);
            // Brute force ρ*.
            let mut best = Density::ZERO;
            for mask in 1u32..(1 << n) {
                let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&v| mask >> v & 1 == 1).collect();
                let cnt = g.induced_edge_count(&nodes) as u64;
                let d = Density::new(cnt, nodes.len() as u64);
                if d > best {
                    best = d;
                }
            }
            assert!(
                Density::new(p.best_density.num * 2, p.best_density.den) >= best,
                "trial {trial}: rho~ = {} < rho*/2 with rho* = {}",
                p.best_density,
                best
            );
        }
    }
}
