//! Heuristic dense-subgraph extraction (paper §III-C remark).
//!
//! For large worlds and expensive patterns, enumerating all ψ-instances and
//! running the flow machinery per sampled world is costly. The paper's
//! fallback runs the core decomposition w.r.t. ψ and returns the innermost
//! `(k_max, ψ)`-core — whose density is at least `ρ*/|V_ψ|` \[5\] — together
//! with every intermediate peeling suffix that is denser than it. These node
//! sets replace the exact densest-subgraph list in Algorithm 1's inner loop.

use crate::density::Density;
use crate::instances::InstanceSet;
use crate::notion::DensityNotion;
use crate::peeling::peel;
use crate::solve::instances_of;
use ugraph::{Graph, NodeId};

/// Result of the heuristic extraction on one deterministic graph.
#[derive(Debug, Clone)]
pub struct HeuristicDense {
    /// The densest of the returned subgraphs (exact density of that set).
    pub best_density: Density,
    /// Candidate dense node sets: the innermost core plus all denser peeling
    /// suffixes, deduplicated, sorted by density descending.
    pub subgraphs: Vec<Vec<NodeId>>,
}

/// Runs the heuristic for `notion` on `g`. Returns `None` when `g` has no
/// instances (consistent with [`crate::solve::all_densest`]).
pub fn heuristic_dense_subgraphs(g: &Graph, notion: &DensityNotion) -> Option<HeuristicDense> {
    let instances = instances_of(g, notion);
    heuristic_from_instances(g.num_nodes(), &instances)
}

/// Same as [`heuristic_dense_subgraphs`] but over pre-enumerated instances
/// (lets callers share the instance list with other steps).
pub fn heuristic_from_instances(n: usize, instances: &InstanceSet) -> Option<HeuristicDense> {
    if instances.count() == 0 {
        return None;
    }
    let peeling = peel(n, instances);
    let kmax = peeling.core_number.iter().copied().max().unwrap_or(0);
    let core: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| peeling.core_number[v as usize] >= kmax)
        .collect();
    let core_cnt = instances.count_within(n, &core);
    let core_density = Density::new(core_cnt, core.len() as u64);

    // The innermost core, plus every peeling suffix strictly denser than it.
    let mut candidates: Vec<(Density, Vec<NodeId>)> = vec![(core_density, core)];
    for (nodes, cnt) in peeling.suffixes() {
        let d = Density::new(cnt, nodes.len() as u64);
        if d > core_density {
            let mut sorted = nodes.to_vec();
            sorted.sort_unstable();
            candidates.push((d, sorted));
        }
    }
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    candidates.dedup_by(|a, b| a.1 == b.1);
    let best_density = candidates[0].0;
    Some(HeuristicDense {
        best_density,
        subgraphs: candidates.into_iter().map(|(_, s)| s).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::max_density;

    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn heuristic_finds_k4() {
        let g = k4_tail();
        let h = heuristic_dense_subgraphs(&g, &DensityNotion::Edge).unwrap();
        assert_eq!(h.best_density, Density::new(6, 4));
        assert_eq!(h.subgraphs[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn heuristic_none_on_empty() {
        let g = Graph::new(4);
        assert!(heuristic_dense_subgraphs(&g, &DensityNotion::Edge).is_none());
    }

    #[test]
    fn heuristic_quality_guarantee() {
        // Paper [5]: the innermost core density is >= ρ*/|V_ψ|. Our returned
        // best is at least the core's density, so the same bound applies.
        let mut seed = 0x5eed_1234u64;
        for _ in 0..20 {
            let mut edges = Vec::new();
            for u in 0..9u32 {
                for v in (u + 1)..9 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 40 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(9, &edges);
            let notion = DensityNotion::Clique(3);
            let Some(exact) = max_density(&g, &notion) else {
                assert!(heuristic_dense_subgraphs(&g, &notion).is_none());
                continue;
            };
            let h = heuristic_dense_subgraphs(&g, &notion).unwrap();
            // best >= ρ*/3 (clique arity 3).
            assert!(
                Density::new(h.best_density.num * 3, h.best_density.den) >= exact,
                "heuristic {} vs exact {}",
                h.best_density,
                exact
            );
        }
    }

    #[test]
    fn subgraphs_are_sorted_by_density() {
        let g = k4_tail();
        let h = heuristic_dense_subgraphs(&g, &DensityNotion::Edge).unwrap();
        let densities: Vec<f64> = h
            .subgraphs
            .iter()
            .map(|s| {
                let inst = crate::solve::instances_of(&g, &DensityNotion::Edge);
                inst.count_within(6, s) as f64 / s.len() as f64
            })
            .collect();
        assert!(densities.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }
}
