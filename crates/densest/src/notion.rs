//! Density notions (paper §II-A): edge, `h`-clique, and pattern density.

use ugraph::Pattern;

/// Which density `ρ` the densest-subgraph machinery maximizes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DensityNotion {
    /// Edge density `ρ_e = |E| / |V|` (paper Def. 1).
    Edge,
    /// `h`-clique density `ρ_h = µ_h / |V|`, `h ≥ 2` (paper Def. 2).
    /// `Clique(2)` is equivalent to `Edge`.
    Clique(usize),
    /// Pattern density `ρ_ψ = µ_ψ / |V|` (paper Def. 3).
    Pattern(Pattern),
}

impl DensityNotion {
    /// Number of nodes of the underlying pattern (`2` for edges, `h` for
    /// cliques, `|V_ψ|` for patterns).
    pub fn arity(&self) -> usize {
        match self {
            DensityNotion::Edge => 2,
            DensityNotion::Clique(h) => *h,
            DensityNotion::Pattern(p) => p.num_nodes(),
        }
    }

    /// Human-readable name used by the experiment harness.
    pub fn label(&self) -> String {
        match self {
            DensityNotion::Edge => "edge".to_string(),
            DensityNotion::Clique(h) => format!("{h}-clique"),
            DensityNotion::Pattern(p) => p.name().to_string(),
        }
    }

    /// The notion as a [`Pattern`] (edges and cliques are clique patterns).
    pub fn as_pattern(&self) -> Pattern {
        match self {
            DensityNotion::Edge => Pattern::edge(),
            DensityNotion::Clique(h) => Pattern::clique(*h),
            DensityNotion::Pattern(p) => p.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_labels() {
        assert_eq!(DensityNotion::Edge.arity(), 2);
        assert_eq!(DensityNotion::Clique(4).arity(), 4);
        assert_eq!(DensityNotion::Pattern(Pattern::diamond()).arity(), 4);
        assert_eq!(DensityNotion::Edge.label(), "edge");
        assert_eq!(DensityNotion::Clique(3).label(), "3-clique");
        assert_eq!(
            DensityNotion::Pattern(Pattern::c3_star()).label(),
            "c3-star"
        );
    }

    #[test]
    fn as_pattern_roundtrip() {
        assert!(DensityNotion::Edge.as_pattern().is_clique());
        assert_eq!(DensityNotion::Clique(3).as_pattern().num_edges(), 3);
    }
}
