//! Exact rational densities.
//!
//! A density is `instances / nodes` with both parts integral, so densities of
//! two subgraphs can always be compared exactly via cross-multiplication in
//! `u128`. Keeping densities rational (instead of `f64`) is what makes the
//! flow-network binary search and the "all densest subgraphs" enumeration
//! exact.

use std::cmp::Ordering;

/// A non-negative rational density `num / den` (`den > 0`). Not necessarily
/// reduced; equality and ordering are value-based.
#[derive(Debug, Clone, Copy)]
pub struct Density {
    /// Numerator: instance count (edges, cliques, or pattern instances).
    pub num: u64,
    /// Denominator: node count (`> 0`).
    pub den: u64,
}

impl Density {
    /// Creates `num / den`.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0, "density denominator must be positive");
        Density { num, den }
    }

    /// The zero density `0 / 1`.
    pub const ZERO: Density = Density { num: 0, den: 1 };

    /// Floating-point value (for reporting only; never used in comparisons).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `⌈num / den⌉`, the core threshold used by the `(⌈ρ̃⌉, ·)`-core
    /// reduction.
    pub fn ceil(&self) -> u64 {
        self.num.div_ceil(self.den)
    }

    /// Reduced form (for stable display).
    pub fn reduced(&self) -> Density {
        if self.num == 0 {
            return Density::ZERO;
        }
        let g = gcd(self.num, self.den);
        Density {
            num: self.num / g,
            den: self.den / g,
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl PartialEq for Density {
    fn eq(&self, other: &Self) -> bool {
        (self.num as u128) * (other.den as u128) == (other.num as u128) * (self.den as u128)
    }
}

impl Eq for Density {}

impl PartialOrd for Density {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Density {
    fn cmp(&self, other: &Self) -> Ordering {
        ((self.num as u128) * (other.den as u128)).cmp(&((other.num as u128) * (self.den as u128)))
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.reduced();
        write!(f, "{}/{}", r.num, r.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_exact() {
        // 1/3 < 2/5 < 1/2; f64 would also get these right, but the point is
        // exactness at large magnitudes below.
        assert!(Density::new(1, 3) < Density::new(2, 5));
        assert!(Density::new(2, 5) < Density::new(1, 2));
        assert_eq!(Density::new(2, 4), Density::new(1, 2));
        // Large values that differ by 1 part in ~1e18: exact comparison.
        let a = Density::new(u64::MAX / 3, u64::MAX / 2);
        let b = Density::new(u64::MAX / 3 + 1, u64::MAX / 2);
        assert!(a < b);
    }

    #[test]
    fn ceil_values() {
        assert_eq!(Density::new(5, 2).ceil(), 3);
        assert_eq!(Density::new(4, 2).ceil(), 2);
        assert_eq!(Density::new(0, 7).ceil(), 0);
        assert_eq!(Density::new(1, 7).ceil(), 1);
    }

    #[test]
    fn reduced_and_display() {
        assert_eq!(Density::new(6, 4).reduced().num, 3);
        assert_eq!(Density::new(6, 4).reduced().den, 2);
        assert_eq!(format!("{}", Density::new(6, 4)), "3/2");
        assert_eq!(format!("{}", Density::new(0, 9)), "0/1");
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        Density::new(1, 0);
    }
}
