//! Deterministic densest-subgraph algorithms (paper §III building blocks).
//!
//! For a deterministic graph `G` and a density notion — edge density ρ_e,
//! `h`-clique density ρ_h, or pattern density ρ_ψ — this crate computes:
//!
//! * the exact maximum density ρ\* as a rational number,
//! * **all** densest subgraphs (the node sets attaining ρ\*), via minimum-cut
//!   residual structure (Goldberg \[1\] / Chang–Qiao \[46\] for edges; the
//!   paper's novel Algorithms 2 and 4 for cliques and patterns),
//! * the maximum-sized densest subgraph (union of all densest subgraphs,
//!   needed by the NDS estimator),
//! * the peeling 1/2-approximation (lower bound ρ̃) and `(k, ·)`-core
//!   reductions used to shrink the flow networks,
//! * the heuristic dense-subgraph extraction of the paper's §III-C remark,
//! * a Frank–Wolfe/kclist++-style iterative ρ\* solver \[57\] used as an
//!   ablation alternative to the flow-based oracle.
//!
//! All flow arithmetic is exact: densities are rationals `a/b` and every
//! network is capacity-scaled by `b` before running integer max-flow.
//!
//! # Example
//!
//! ```
//! use densest::{all_densest, Density, DensityNotion};
//! use ugraph::Graph;
//!
//! // A K4 with a pendant path: the K4 is the unique densest subgraph.
//! let g = Graph::from_edges(6, &[
//!     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5),
//! ]);
//! let r = all_densest(&g, &DensityNotion::Edge, 1000).unwrap();
//! assert_eq!(r.density, Density::new(6, 4)); // ρ* = 3/2, exactly
//! assert_eq!(r.subgraphs, vec![vec![0, 1, 2, 3]]);
//! ```

pub mod cores;
pub mod density;
pub mod enumerate;
pub mod fw;
pub mod heuristic;
pub mod instances;
pub mod notion;
pub mod peeling;
pub mod solve;

pub use density::Density;
pub use notion::DensityNotion;
pub use solve::{all_densest, max_density, max_sized_densest, AllDensest};
