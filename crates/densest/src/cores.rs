//! Core decompositions: the classic `k`-core (Batagelj–Zaversnik, O(m)) for
//! edge degrees and the instance-based `(k, h)`/`(k, ψ)`-core (paper Def. 7,
//! \[5\]) via [`crate::peeling`].
//!
//! Densest subgraphs live inside the `(⌈ρ̃⌉, ·)`-core (paper Lemma 2 and
//! \[46\]), so both the MPDS and NDS inner loops shrink each sampled world to
//! this core before building any flow network.

use crate::instances::InstanceSet;
use crate::peeling::{peel, Peeling};
use ugraph::{Graph, NodeId};

/// Edge-degree core number of every node via the O(m) bucket-queue algorithm
/// of Batagelj–Zaversnik \[53\].
pub fn edge_core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v as NodeId) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let cnt = *b;
        *b = start;
        start += cnt;
    }
    let mut pos = vec![0usize; n]; // position of node in `vert`
    let mut vert = vec![0u32; n]; // nodes sorted by current degree
    {
        let mut fill = bin.clone();
        for v in 0..n {
            pos[v] = fill[degree[v] as usize];
            vert[pos[v]] = v as u32;
            fill[degree[v] as usize] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = degree[v];
        for &w in g.neighbors(v as NodeId) {
            let w = w as usize;
            if degree[w] > degree[v] {
                // Move w to the front of its bucket, then decrement.
                let dw = degree[w] as usize;
                let pw = pos[w];
                let pfirst = bin[dw];
                let ufirst = vert[pfirst] as usize;
                if w != ufirst {
                    vert.swap(pw, pfirst);
                    pos[w] = pfirst;
                    pos[ufirst] = pw;
                }
                bin[dw] += 1;
                degree[w] -= 1;
            }
        }
    }
    core
}

/// Nodes of the `k`-core (edge degrees), sorted.
pub fn k_core(g: &Graph, k: u32) -> Vec<NodeId> {
    edge_core_numbers(g)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as NodeId)
        .collect()
}

/// Instance-based core decomposition: peels by instance-degree and returns
/// the full [`Peeling`] (core numbers, removal order, suffix densities).
pub fn instance_core_decomposition(n: usize, instances: &InstanceSet) -> Peeling {
    peel(n, instances)
}

/// Nodes of the `(k, ψ)`-core (paper Def. 7 generalized to patterns): the
/// largest subgraph in which every node is contained in at least `k`
/// surviving instances. Sorted node list.
pub fn instance_core(n: usize, instances: &InstanceSet, k: u64) -> Vec<NodeId> {
    let p = peel(n, instances);
    (0..n as NodeId)
        .filter(|&v| p.core_number[v as usize] >= k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::enumerate_cliques;

    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn bz_core_numbers() {
        let g = k4_tail();
        let core = edge_core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn bz_matches_generic_peeling_cores() {
        // The O(m) algorithm and the heap-based instance peeling must agree
        // on edge cores for a batch of pseudo-random graphs.
        let mut x = 0x1234_5678u64;
        for _ in 0..10 {
            let n = 12;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 10 < 4 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            let bz = edge_core_numbers(&g);
            let inst = enumerate_cliques(&g, 2);
            let p = instance_core_decomposition(n, &inst);
            let generic: Vec<u32> = p.core_number.iter().map(|&c| c as u32).collect();
            assert_eq!(bz, generic);
        }
    }

    #[test]
    fn k_core_extraction() {
        let g = k4_tail();
        assert_eq!(k_core(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 1).len(), 6);
        assert!(k_core(&g, 4).is_empty());
    }

    #[test]
    fn k_core_is_maximal_with_min_degree() {
        let g = k4_tail();
        let core = k_core(&g, 3);
        let (sub, _) = g.induced_subgraph(&core);
        for v in 0..sub.num_nodes() {
            assert!(sub.degree(v as NodeId) >= 3);
        }
    }

    #[test]
    fn triangle_core() {
        let g = k4_tail();
        let tris = enumerate_cliques(&g, 3);
        // Every K4 node is in 3 triangles; tail nodes in none.
        assert_eq!(instance_core(6, &tris, 3), vec![0, 1, 2, 3]);
        assert_eq!(instance_core(6, &tris, 1), vec![0, 1, 2, 3]);
        assert!(instance_core(6, &tris, 4).is_empty());
    }

    #[test]
    fn empty_graph_cores() {
        let g = Graph::new(0);
        assert!(edge_core_numbers(&g).is_empty());
        let g = Graph::new(4);
        assert_eq!(edge_core_numbers(&g), vec![0, 0, 0, 0]);
        assert_eq!(k_core(&g, 0).len(), 4);
    }
}
