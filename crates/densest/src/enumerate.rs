//! Enumerating all densest subgraphs from the residual graph of a maximum
//! flow (paper Algorithm 3 and Appendix A).
//!
//! At `α = ρ*` every minimum s–t cut of the parameterized flow network
//! corresponds to a densest subgraph (paper Lemma 4 / Lemma 10). By
//! Picard–Queyranne, minimum cuts are exactly the closed sets of the residual
//! SCC DAG; the paper re-derives this as a bijection between densest
//! subgraphs and *independent component sets* — antichains of non-trivial
//! components that intersect `V` (Defs. 8–11, Lemmas 9–10, Corollary 2).
//! This module implements that enumeration, generically over the edge,
//! clique, and pattern flow networks.

use maxflow::{Condensation, FlowNetwork};
use ugraph::NodeId;

/// All densest subgraphs extracted from one solved flow network.
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// Every densest node set (original node ids, sorted). May be truncated.
    pub subgraphs: Vec<Vec<NodeId>>,
    /// The maximum-sized densest subgraph: the union of all densest
    /// subgraphs (paper footnote 5 / \[59\]). Never truncated.
    pub max_sized: Vec<NodeId>,
    /// Whether enumeration stopped early because `cap` was reached.
    pub truncated: bool,
}

/// Enumerates all minimum-cut subgraphs of `network` (which must already hold
/// a maximum flow at `α = ρ*`).
///
/// * Network nodes `0..num_v` are the graph ("V") nodes; `to_original[i]`
///   maps them back to original node ids.
/// * `s`, `t` are the source/sink indices.
/// * At most `cap` subgraphs are produced (the count can explode — paper
///   Table VIII); `max_sized` is exact regardless.
pub fn enumerate_min_cut_subgraphs(
    network: &FlowNetwork,
    s: usize,
    t: usize,
    num_v: usize,
    to_original: &[NodeId],
    cap: usize,
) -> EnumerationResult {
    let residual = network.residual_graph();
    let cond = Condensation::new(&residual);
    let cs = cond.comp_of[s] as usize;
    let ct = cond.comp_of[t] as usize;
    debug_assert_eq!(
        cond.members[cs].len(),
        1,
        "scc(s) must be the singleton {{s}} (paper Lemma 8)"
    );

    let num_comps = cond.num_components();
    let nontrivial = |c: usize| c != cs && c != ct;

    // V members (original ids) of every component.
    let v_members: Vec<Vec<NodeId>> = (0..num_comps)
        .map(|c| {
            let mut m: Vec<NodeId> = cond.members[c]
                .iter()
                .filter(|&&v| (v as usize) < num_v)
                .map(|&v| to_original[v as usize])
                .collect();
            m.sort_unstable();
            m
        })
        .collect();

    // Non-trivial descendant / ancestor sets per component (paper Def. 9).
    let rev_dag = cond.reverse_dag();
    let mut descendants: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
    let mut ancestors: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
    for c in 0..num_comps {
        if !nontrivial(c) {
            continue;
        }
        descendants[c] = cond
            .descendants(c)
            .into_iter()
            .map(|d| d as usize)
            .filter(|&d| {
                debug_assert!(d != ct, "scc(t) has no incoming edge (paper Lemma 8)");
                nontrivial(d)
            })
            .collect();
        ancestors[c] = cond
            .ancestors(c, &rev_dag)
            .into_iter()
            .map(|d| d as usize)
            .filter(|&d| nontrivial(d))
            .collect();
    }

    // The maximum-sized densest subgraph: union of V members over all
    // non-trivial components (every such component with V members appears in
    // some independent set; Λ-only components contribute nothing).
    let mut max_sized: Vec<NodeId> = (0..num_comps)
        .filter(|&c| nontrivial(c))
        .flat_map(|c| v_members[c].iter().copied())
        .collect();
    max_sized.sort_unstable();
    max_sized.dedup();

    // Paper Algorithm 3 over the non-trivial components.
    let initial: Vec<usize> = (0..num_comps).filter(|&c| nontrivial(c)).collect();
    let mut enumerator = Enumerator {
        v_members: &v_members,
        descendants: &descendants,
        ancestors: &ancestors,
        out: Vec::new(),
        cap,
        truncated: false,
    };
    enumerator.recurse(&mut Vec::new(), initial);

    EnumerationResult {
        subgraphs: enumerator.out,
        max_sized,
        truncated: enumerator.truncated,
    }
}

struct Enumerator<'a> {
    v_members: &'a [Vec<NodeId>],
    descendants: &'a [Vec<usize>],
    ancestors: &'a [Vec<usize>],
    out: Vec<Vec<NodeId>>,
    cap: usize,
    truncated: bool,
}

impl Enumerator<'_> {
    /// Paper Algorithm 3: `c1` is the independent set built so far, `c2` the
    /// components still compatible with it.
    fn recurse(&mut self, c1: &mut Vec<usize>, c2: Vec<usize>) {
        if self.truncated {
            return;
        }
        if !c1.is_empty() {
            self.emit(c1);
            if self.truncated {
                return;
            }
        }
        let mut live = c2;
        let mut i = 0;
        while i < live.len() {
            let c = live[i];
            if self.v_members[c].is_empty() {
                // Only components intersecting V may join an independent set
                // (paper Def. 10); Λ-only components enter via descendants.
                i += 1;
                continue;
            }
            // C2 ← C2 \ {C}: later iterations of this loop (and deeper
            // recursions) must not re-choose C, ensuring each independent
            // set is produced exactly once.
            live.remove(i);
            let next: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&d| !contains(&self.descendants[c], d) && !contains(&self.ancestors[c], d))
                .collect();
            c1.push(c);
            self.recurse(c1, next);
            c1.pop();
            if self.truncated {
                return;
            }
        }
    }

    /// Emits the densest subgraph `∪_{C ∈ c1 ∪ des(c1)} C ∩ V`.
    fn emit(&mut self, c1: &[usize]) {
        if self.out.len() >= self.cap {
            self.truncated = true;
            return;
        }
        let mut nodes: Vec<NodeId> = Vec::new();
        for &c in c1 {
            nodes.extend_from_slice(&self.v_members[c]);
            for &d in &self.descendants[c] {
                nodes.extend_from_slice(&self.v_members[d]);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        debug_assert!(!nodes.is_empty(), "independent sets contain V nodes");
        self.out.push(nodes);
    }
}

fn contains(sorted: &[usize], x: usize) -> bool {
    sorted.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    // The enumeration is exercised end-to-end (against brute force) in
    // `solve.rs`; here we test it in isolation on a hand-built network.
    use super::*;

    /// Build the paper's Example 4 style situation manually: a path network
    /// whose residual graph has two non-trivial components A -> B, giving
    /// densest subgraphs {B} and {A, B}.
    #[test]
    fn antichains_of_a_two_component_chain() {
        // Network nodes: 0, 1 are V nodes; 2 = s; 3 = t.
        // Build a network whose residual graph is:
        //   s saturated (only incoming arcs), 0 -> 1, both -> s, t -> both.
        let mut net = FlowNetwork::new(4);
        // s -> 0 and s -> 1 saturated: cap 1, then push flow via max_flow.
        net.add_edge(2, 0, 1, 0);
        net.add_edge(2, 1, 1, 0);
        // 0 -> 1 with spare capacity (residual arc survives).
        net.add_edge(0, 1, 5, 0);
        // 0 -> t and 1 -> t sized so both saturate: each V node must push
        // everything it receives.
        net.add_edge(0, 3, 1, 0);
        net.add_edge(1, 3, 1, 0);
        let f = net.max_flow(2, 3);
        assert_eq!(f, 2);
        let res = enumerate_min_cut_subgraphs(&net, 2, 3, 2, &[10, 20], 100);
        // Residual: 0 -> 1 survives, so {comp(1)} and {comp(0)} are the
        // non-trivial components with comp(0) -> comp(1). Independent sets:
        // {comp(1)} -> {20}; {comp(0)} -> {10, 20} (descendant pulled in).
        let mut subs = res.subgraphs.clone();
        subs.sort();
        assert_eq!(subs, vec![vec![10, 20], vec![20]]);
        assert_eq!(res.max_sized, vec![10, 20]);
        assert!(!res.truncated);
    }

    #[test]
    fn truncation_flag() {
        let mut net = FlowNetwork::new(5);
        // Three independent V nodes each with its own saturated path.
        for v in 0..3 {
            net.add_edge(3, v, 1, 0);
            net.add_edge(v, 4, 1, 0);
        }
        net.max_flow(3, 4);
        // Three incomparable singleton components: 2^3 - 1 = 7 antichains.
        let full = enumerate_min_cut_subgraphs(&net, 3, 4, 3, &[0, 1, 2], 100);
        assert_eq!(full.subgraphs.len(), 7);
        assert!(!full.truncated);
        let capped = enumerate_min_cut_subgraphs(&net, 3, 4, 3, &[0, 1, 2], 3);
        assert_eq!(capped.subgraphs.len(), 3);
        assert!(capped.truncated);
        assert_eq!(capped.max_sized, vec![0, 1, 2]);
    }
}
