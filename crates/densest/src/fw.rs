//! Frank–Wolfe / kclist++-style iterative density solver (Sun et al. \[57\]).
//!
//! The paper's Algorithms 2 and 4 compute ρ\* with the convex-programming
//! method of \[57\]; our main pipeline uses exact Dinkelbach flow iteration
//! instead (see `solve.rs`), and this module provides the \[57\]-style solver
//! for the ablation benches ("ρ\* oracle: flow vs Frank–Wolfe").
//!
//! Each instance holds one unit of weight and repeatedly re-assigns it to its
//! currently-lightest member node (a Frank–Wolfe step on the dual of the
//! densest-subgraph LP). After `T` rounds, sweeping node prefixes in
//! decreasing weight order yields a candidate densest subgraph whose exact
//! density lower-bounds ρ\*; with enough rounds the sweep recovers ρ\*
//! exactly.

use crate::density::Density;
use crate::instances::InstanceSet;
use ugraph::NodeId;

/// Result of the Frank–Wolfe sweep.
#[derive(Debug, Clone)]
pub struct FwResult {
    /// Exact density of the best prefix found (a lower bound on ρ\*).
    pub density: Density,
    /// The corresponding node set (sorted).
    pub subgraph: Vec<NodeId>,
    /// Number of weight-reassignment rounds performed.
    pub iterations: usize,
}

/// Runs `iterations` rounds of sequential Frank–Wolfe weight assignment and
/// extracts the best prefix subgraph. Returns `None` if there are no
/// instances.
pub fn frank_wolfe(n: usize, instances: &InstanceSet, iterations: usize) -> Option<FwResult> {
    if instances.count() == 0 {
        return None;
    }
    assert!(iterations >= 1);
    // r[v] = cumulative weight on v. Every round each instance adds one unit
    // to its currently-lightest member (the kclist++ `SEQ` rule); dividing by
    // the round count recovers the Frank–Wolfe average implicitly, and the
    // prefix sweep below only needs the ordering of r.
    let mut r = vec![0f64; n];
    for _ in 0..iterations {
        for inst in &instances.instances {
            let &v = inst
                .iter()
                .min_by(|&&a, &&b| r[a as usize].partial_cmp(&r[b as usize]).unwrap())
                .expect("instances are non-empty");
            r[v as usize] += 1.0;
        }
    }

    // Sweep: order nodes by weight descending, count for every prefix the
    // instances fully inside it, and keep the densest prefix.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by(|&a, &b| {
        r[b as usize]
            .partial_cmp(&r[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut rank = vec![u32::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    // An instance is inside prefix `i` iff the max rank of its members ≤ i.
    let mut completed_at = vec![0u64; n];
    for inst in &instances.instances {
        let maxr = inst.iter().map(|&v| rank[v as usize]).max().unwrap();
        completed_at[maxr as usize] += 1;
    }
    let mut best = Density::ZERO;
    let mut best_len = 1usize;
    let mut running = 0u64;
    for i in 0..n {
        running += completed_at[i];
        if running == 0 {
            continue;
        }
        let d = Density::new(running, (i + 1) as u64);
        if d > best {
            best = d;
            best_len = i + 1;
        }
    }
    let mut subgraph: Vec<NodeId> = order[..best_len].to_vec();
    subgraph.sort_unstable();
    Some(FwResult {
        density: best,
        subgraph,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::enumerate_cliques;
    use crate::notion::DensityNotion;
    use crate::solve::max_density;
    use ugraph::Graph;

    fn k4_tail() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn fw_finds_k4_density() {
        let g = k4_tail();
        let inst = enumerate_cliques(&g, 2);
        let r = frank_wolfe(6, &inst, 16).unwrap();
        assert_eq!(r.density, Density::new(6, 4));
        assert_eq!(r.subgraph, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fw_none_without_instances() {
        let g = Graph::new(3);
        let inst = enumerate_cliques(&g, 2);
        assert!(frank_wolfe(3, &inst, 4).is_none());
    }

    #[test]
    fn fw_density_is_always_a_lower_bound() {
        let mut seed = 0x0bad_cafeu64;
        for _ in 0..15 {
            let mut edges = Vec::new();
            for u in 0..8u32 {
                for v in (u + 1)..8 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 45 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(8, &edges);
            let inst = enumerate_cliques(&g, 2);
            let Some(fw) = frank_wolfe(8, &inst, 8) else {
                continue;
            };
            let exact = max_density(&g, &DensityNotion::Edge).unwrap();
            assert!(fw.density <= exact);
        }
    }

    #[test]
    fn fw_converges_to_exact_on_small_graphs() {
        // With generous iteration counts the sweep recovers ρ* on small
        // graphs (the paper's T* is small too — e.g. 11 on Twitter).
        let mut seed = 0x7777_1234u64;
        for _ in 0..10 {
            let mut edges = Vec::new();
            for u in 0..7u32 {
                for v in (u + 1)..7 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 50 {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(7, &edges);
            let inst = enumerate_cliques(&g, 2);
            let Some(fw) = frank_wolfe(7, &inst, 256) else {
                continue;
            };
            let exact = max_density(&g, &DensityNotion::Edge).unwrap();
            assert_eq!(fw.density, exact);
        }
    }

    #[test]
    fn fw_triangle_density() {
        let g = k4_tail();
        let tris = enumerate_cliques(&g, 3);
        let r = frank_wolfe(6, &tris, 32).unwrap();
        assert_eq!(r.density, Density::new(4, 4));
        assert_eq!(r.subgraph, vec![0, 1, 2, 3]);
    }
}
