//! Most Probable Densest Subgraphs (MPDS) — the paper's core contribution.
//!
//! Given an uncertain graph `G = (V, E, p)`, the *densest subgraph
//! probability* `τ(U)` of a node set `U` is the probability that `U` induces
//! a densest subgraph in a possible world of `G` (paper Def. 4); computing it
//! is #P-hard (Theorem 1). This crate implements:
//!
//! * [`api`] — **the crate's front door**: the typed [`api::Query`] builder
//!   that validates once and runs any estimator / sampler / execution-mode
//!   combination through one code path, and [`api::queryset::QuerySet`],
//!   which evaluates many queries over one shared world stream;
//! * [`estimate`] — the sampling estimator for top-k MPDS (paper
//!   Algorithm 1) for edge, clique, and pattern densities, including the
//!   one-densest-subgraph ablation of §VI-D and the heuristic mode of §III-C;
//! * [`nds`] — the top-k Nucleus Densest Subgraph estimator (Algorithm 5)
//!   via reduction to top-k closed frequent itemset mining;
//! * [`exact`] — exact `τ(U)`/`γ(U)` and exact top-k by exhaustive
//!   possible-world enumeration (small graphs; §VI-H);
//! * [`control`] — cooperative deadlines and cancellation flags polled by
//!   the estimator sampling loops (the serving layer's admission hooks);
//! * [`recompute`] — delta-aware re-estimation: one query over two graph
//!   versions under common random numbers, diffed into a structured
//!   [`recompute::TopKDiff`] (the dynamic-graph serving path);
//! * [`theory`] — the end-to-end accuracy guarantees (Theorems 2, 3, 5, 6);
//! * [`baselines`] — the notions MPDS is compared against in §VI: the
//!   expected densest subgraph (EDS \[44\], extended to clique/pattern density
//!   per Appendix C), the probabilistic `(k, η)`-core \[40\], the probabilistic
//!   `(k, γ)`-truss \[41\], and the deterministic densest subgraph (DDS);
//! * [`case_studies`] — the Karate-Club community study (§VI-E) and the
//!   simulated brain-network study (§VI-F).
//!
//! # Example
//!
//! The paper's running example (Fig. 1): the node set `{B, D}` is the most
//! probable densest subgraph with τ ≈ 0.42, even though the whole graph has
//! the highest *expected* density.
//!
//! ```
//! use densest::DensityNotion;
//! use mpds::api::Query;
//! use ugraph::UncertainGraph;
//!
//! // A = 0, B = 1, C = 2, D = 3.
//! let g = UncertainGraph::from_weighted_edges(
//!     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
//! let run = Query::mpds(DensityNotion::Edge)
//!     .theta(2000)
//!     .k(1)
//!     .seed(42)
//!     .run(&g)
//!     .expect("valid query");
//! assert_eq!(run.top_k[0].0, vec![1, 3]); // {B, D}
//! assert!((run.top_k[0].1 - 0.42).abs() < 0.04);
//! ```

pub mod api;
pub mod baselines;
pub mod case_studies;
pub mod control;
pub mod convergence;
pub mod estimate;
pub mod exact;
pub mod nds;
pub mod recompute;
pub mod single;
pub mod theory;

pub use api::queryset::{BatchRun, BatchStats, QuerySet};
pub use api::{ApiError, Exec, ProgressSink, Query, Run, SamplerKind, Stop, StopReason};
pub use control::{InterruptReason, Interrupted, RunControl};
pub use estimate::{MpdsConfig, MpdsResult};
pub use nds::{NdsConfig, NdsResult};
pub use recompute::{CommonRandomNumbers, Recompute, RecomputeReport, TopKDiff};
