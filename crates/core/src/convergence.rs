//! Choosing θ empirically (paper §VI-I, Fig. 19).
//!
//! The paper selects the default sample size per dataset by doubling θ until
//! the returned top-k node sets stop changing — "increasing θ steadily
//! increases the similarity of the returned node sets to those for the
//! previous value of θ till a certain point, after which it converges". This
//! module packages that schedule for both MPDS and NDS.
//!
//! The schedule's per-step runs honor whatever [`crate::control::RunControl`]
//! semantics the query layer has (deadlines, cancellation), so each entry
//! point returns `Result` instead of assuming a step cannot fail. For the
//! *online* version of this rule — early-stopping a single run once its
//! top-k settles — see [`crate::api::Stop::Stable`].

use crate::api::{ApiError, Query};
use densest::DensityNotion;
use sampling::WorldSampler;
use ugraph::nodeset::set_family_similarity;
use ugraph::{NodeSet, UncertainGraph};

/// One step of the doubling schedule.
#[derive(Debug, Clone)]
pub struct ConvergenceStep {
    /// Sample count θ used at this step.
    pub theta: usize,
    /// Jaccard-based similarity of this step's top-k to the previous step's
    /// (`None` for the first step).
    pub similarity: Option<f64>,
    /// Top-k node sets estimated at this step.
    pub top_k: Vec<NodeSet>,
    /// Wall-clock time of the step.
    pub seconds: f64,
}

/// Full trace of a convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceTrace {
    /// Steps of the doubling schedule, in execution order.
    pub steps: Vec<ConvergenceStep>,
    /// First θ whose similarity reached the threshold (`None` if the cap was
    /// hit first).
    pub converged_theta: Option<usize>,
}

/// Doubles θ from `theta0` until the top-k MPDS sets are at least
/// `threshold`-similar to the previous step's, or `theta_cap` is reached.
/// `make_sampler` builds a fresh sampler per step (same seed ⇒ nested
/// samples, which is what the paper's similarity curve uses).
pub fn mpds_convergence<S: WorldSampler>(
    g: &UncertainGraph,
    notion: &DensityNotion,
    k: usize,
    theta0: usize,
    theta_cap: usize,
    threshold: f64,
    mut make_sampler: impl FnMut() -> S,
) -> Result<ConvergenceTrace, ApiError> {
    run_schedule(theta0, theta_cap, threshold, |theta| {
        let mut sampler = make_sampler();
        Ok(Query::mpds(notion.clone())
            .theta(theta)
            .k(k)
            .run_with_sampler(g, &mut sampler)?
            .top_k
            .into_iter()
            .map(|(s, _)| s)
            .collect())
    })
}

/// NDS variant of [`mpds_convergence`].
pub fn nds_convergence<S: WorldSampler>(
    g: &UncertainGraph,
    notion: &DensityNotion,
    k: usize,
    min_size: usize,
    theta0: usize,
    theta_cap: usize,
    threshold: f64,
    mut make_sampler: impl FnMut() -> S,
) -> Result<ConvergenceTrace, ApiError> {
    run_schedule(theta0, theta_cap, threshold, |theta| {
        let mut sampler = make_sampler();
        Ok(Query::nds(notion.clone())
            .theta(theta)
            .k(k)
            .min_size(min_size)
            .run_with_sampler(g, &mut sampler)?
            .top_k
            .into_iter()
            .map(|(s, _)| s)
            .collect())
    })
}

fn run_schedule(
    theta0: usize,
    theta_cap: usize,
    threshold: f64,
    mut run: impl FnMut(usize) -> Result<Vec<NodeSet>, ApiError>,
) -> Result<ConvergenceTrace, ApiError> {
    assert!(theta0 > 0 && theta0 <= theta_cap);
    assert!((0.0..=1.0).contains(&threshold));
    let mut steps: Vec<ConvergenceStep> = Vec::new();
    let mut converged = None;
    let mut theta = theta0;
    loop {
        let start = std::time::Instant::now();
        let top_k = run(theta)?;
        let seconds = start.elapsed().as_secs_f64();
        let similarity = steps
            .last()
            .map(|prev| set_family_similarity(&prev.top_k, &top_k));
        steps.push(ConvergenceStep {
            theta,
            similarity,
            top_k,
            seconds,
        });
        if converged.is_none() && similarity.is_some_and(|s| s >= threshold) {
            converged = Some(theta);
            break;
        }
        if theta >= theta_cap {
            break;
        }
        theta = (theta * 2).min(theta_cap);
    }
    Ok(ConvergenceTrace {
        steps,
        converged_theta: converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sampling::MonteCarlo;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn mpds_converges_on_small_graph() {
        let g = fig1();
        let mut seed = 0u64;
        let trace = mpds_convergence(&g, &DensityNotion::Edge, 1, 50, 6400, 0.99, || {
            seed += 1;
            MonteCarlo::new(&g, StdRng::seed_from_u64(seed))
        })
        .unwrap();
        assert!(trace.converged_theta.is_some());
        // Once converged, the last two steps return the same top-1.
        let n = trace.steps.len();
        assert!(n >= 2);
        assert_eq!(trace.steps[n - 1].top_k, trace.steps[n - 2].top_k);
        // The converged answer is the true MPDS {B, D} = {1, 3}.
        assert_eq!(trace.steps[n - 1].top_k[0], vec![1, 3]);
    }

    #[test]
    fn schedule_respects_cap() {
        // A threshold of exactly 1.0 with jittery answers may never converge;
        // the cap must stop the loop.
        let mut calls = 0usize;
        let trace = run_schedule(10, 80, 1.1_f64.min(1.0), |theta| {
            calls += 1;
            // Alternate answers so similarity < 1 except by luck.
            Ok(vec![vec![theta as u32]])
        })
        .unwrap();
        assert!(trace.converged_theta.is_none());
        assert_eq!(trace.steps.last().unwrap().theta, 80);
        assert_eq!(calls, trace.steps.len());
        // Doubling schedule: 10, 20, 40, 80.
        let thetas: Vec<usize> = trace.steps.iter().map(|s| s.theta).collect();
        assert_eq!(thetas, vec![10, 20, 40, 80]);
    }

    #[test]
    fn nds_converges() {
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.95), (0, 2, 0.95), (1, 2, 0.95), (2, 3, 0.2)],
        );
        let mut seed = 100u64;
        let trace = nds_convergence(&g, &DensityNotion::Edge, 2, 2, 40, 2560, 0.95, || {
            seed += 1;
            MonteCarlo::new(&g, StdRng::seed_from_u64(seed))
        })
        .unwrap();
        assert!(trace.converged_theta.is_some());
    }

    /// A step that fails (here: a schedule-level error) propagates instead
    /// of panicking — the old code `expect`ed steps could never fail.
    #[test]
    fn step_errors_propagate_instead_of_panicking() {
        let err = run_schedule(10, 80, 0.9, |_| {
            Err(ApiError::Unsupported {
                message: "injected".to_string(),
            })
        })
        .unwrap_err();
        assert!(matches!(err, ApiError::Unsupported { .. }));
    }
}
