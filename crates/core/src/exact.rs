//! Exact MPDS / NDS by exhaustive possible-world enumeration (paper §VI-H).
//!
//! Computing `τ(U)` is #P-hard, but for small graphs (`m ≤ 22` here; the
//! paper went to `m = 30` on a 512 GB server over days) all `2^m` worlds can
//! be swept, giving ground truth for the accuracy experiments (Table XV,
//! Figs. 17–18).

use densest::{all_densest, max_sized_densest, DensityNotion};
use std::collections::HashMap;
use ugraph::{nodeset, NodeId, NodeSet, UncertainGraph};

/// Hard limit on the edge count for exhaustive enumeration.
pub const MAX_EDGES_EXACT: usize = 22;

/// Exact densest subgraph probability `τ(U)` (paper Def. 4).
pub fn exact_tau(g: &UncertainGraph, notion: &DensityNotion, set: &[NodeId]) -> f64 {
    let key: NodeSet = {
        let mut s = set.to_vec();
        s.sort_unstable();
        s
    };
    exact_all_tau(g, notion).get(&key).copied().unwrap_or(0.0)
}

/// Exact `τ(U)` for **every** node set with non-zero probability.
///
/// Sweeps all `2^m` worlds, enumerating all densest subgraphs in each and
/// accumulating world probabilities.
pub fn exact_all_tau(g: &UncertainGraph, notion: &DensityNotion) -> HashMap<NodeSet, f64> {
    assert!(
        g.num_edges() <= MAX_EDGES_EXACT,
        "exact sweep limited to m <= {MAX_EDGES_EXACT} (got {})",
        g.num_edges()
    );
    let mut tau: HashMap<NodeSet, f64> = HashMap::new();
    for (mask, pr) in g.iter_worlds() {
        if pr == 0.0 {
            continue;
        }
        let world = g.world_from_mask(&mask);
        if let Some(r) = all_densest(&world, notion, usize::MAX) {
            debug_assert!(!r.truncated);
            for sg in r.subgraphs {
                *tau.entry(sg).or_insert(0.0) += pr;
            }
        }
    }
    tau
}

/// Exact top-k MPDS: the k node sets with the highest `τ(U)`, sorted
/// descending (deterministic tie-breaking as in the estimator).
pub fn exact_top_k_mpds(
    g: &UncertainGraph,
    notion: &DensityNotion,
    k: usize,
) -> Vec<(NodeSet, f64)> {
    exact_top_k_from(&exact_all_tau(g, notion), k)
}

/// Top-k extraction from a precomputed exact τ table — lets callers share one
/// `2^m` sweep across several values of k (used by the Fig. 17 experiment).
pub fn exact_top_k_from(tau: &HashMap<NodeSet, f64>, k: usize) -> Vec<(NodeSet, f64)> {
    let mut all: Vec<(NodeSet, f64)> = tau.iter().map(|(s, &t)| (s.clone(), t)).collect();
    all.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then(a.0.len().cmp(&b.0.len()))
            .then(a.0.cmp(&b.0))
    });
    all.truncate(k);
    all
}

/// Exact densest subgraph **containment** probability `γ(U)` (paper Def. 5):
/// the probability that `U` is contained in a densest subgraph of the world,
/// checked against the world's maximum-sized densest subgraph.
pub fn exact_gamma(g: &UncertainGraph, notion: &DensityNotion, set: &[NodeId]) -> f64 {
    assert!(g.num_edges() <= MAX_EDGES_EXACT);
    let key: NodeSet = {
        let mut s = set.to_vec();
        s.sort_unstable();
        s
    };
    let mut gamma = 0.0;
    for (mask, pr) in g.iter_worlds() {
        if pr == 0.0 {
            continue;
        }
        let world = g.world_from_mask(&mask);
        if let Some((_, ms)) = max_sized_densest(&world, notion) {
            if nodeset::is_subset(&key, &ms) {
                gamma += pr;
            }
        }
    }
    gamma
}

/// Average F1 score across ranks of an approximate top-k against the exact
/// top-k (the paper's Figs. 17–18 metric: "F1-score averaged across all
/// ranks from 1 to k").
pub fn average_f1_across_ranks(approx: &[(NodeSet, f64)], exact: &[(NodeSet, f64)]) -> f64 {
    let k = approx.len().min(exact.len());
    if k == 0 {
        return 0.0;
    }
    (0..k)
        .map(|i| nodeset::f1_score(&approx[i].0, &exact[i].0))
        .sum::<f64>()
        / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn exact_tau_matches_table1() {
        // Paper Table I, DSP row (exact values with p = .4/.4/.7):
        let g = fig1();
        let close = |set: &[NodeId], want: f64| {
            let got = exact_tau(&g, &DensityNotion::Edge, set);
            assert!((got - want).abs() < 1e-9, "{set:?}: {got} vs {want}");
        };
        close(&[0, 1], 0.072); // {A,B}: G2 only
        close(&[0, 2], 0.24); // {A,C}: G3 + G7
        close(&[1, 3], 0.42); // {B,D}: G4 + G7
        close(&[0, 1, 2], 0.048); // {A,B,C}: G5
        close(&[0, 1, 3], 0.168); // {A,B,D}: G6
        close(&[0, 1, 2, 3], 0.28); // {A,B,C,D}: G7 + G8
    }

    #[test]
    fn exact_top1_is_bd() {
        let g = fig1();
        let top = exact_top_k_mpds(&g, &DensityNotion::Edge, 1);
        assert_eq!(top[0].0, vec![1, 3]);
        assert!((top[0].1 - 0.42).abs() < 1e-9);
    }

    #[test]
    fn taus_of_all_sets_bounded() {
        let g = fig1();
        let all = exact_all_tau(&g, &DensityNotion::Edge);
        for (set, tau) in &all {
            assert!(*tau > 0.0 && *tau <= 1.0, "{set:?}");
        }
        // The sum over sets of tau = expected number of densest subgraphs
        // per world >= 1 - Pr(empty world).
        let total: f64 = all.values().sum();
        assert!(total >= 1.0 - 0.108 - 1e-9);
    }

    #[test]
    fn exact_gamma_matches_example3() {
        // Paper Example 3: γ({B,D}) = 0.7 (worlds G4, G6, G7, G8).
        let g = fig1();
        let gamma = exact_gamma(&g, &DensityNotion::Edge, &[1, 3]);
        assert!((gamma - 0.7).abs() < 1e-9, "gamma {gamma}");
        // γ >= τ always.
        let tau = exact_tau(&g, &DensityNotion::Edge, &[1, 3]);
        assert!(gamma >= tau);
    }

    #[test]
    fn estimator_converges_to_exact() {
        // End-to-end: Algorithm 1 estimates must approach the exact taus.
        let g = fig1();
        let exact = exact_top_k_mpds(&g, &DensityNotion::Edge, 3);
        let est = crate::api::Query::mpds(DensityNotion::Edge)
            .theta(20_000)
            .k(3)
            .seed(123)
            .run(&g)
            .unwrap();
        assert_eq!(est.top_k[0].0, exact[0].0);
        for (i, (set, tau)) in exact.iter().enumerate() {
            let got = est.top_k[i].1;
            assert!((got - tau).abs() < 0.02, "{set:?}: {got} vs {tau}");
        }
    }

    #[test]
    fn f1_average() {
        let a = vec![(vec![1, 2], 0.5), (vec![3], 0.2)];
        let b = vec![(vec![1, 2], 0.5), (vec![4], 0.3)];
        // Rank 1: F1 = 1; rank 2: F1 = 0 -> average 0.5.
        assert!((average_f1_across_ranks(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(average_f1_across_ranks(&[], &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "exact sweep limited")]
    fn rejects_large_graphs() {
        let edges: Vec<(NodeId, NodeId, f64)> = (0..30)
            .map(|i| (i as NodeId, i as NodeId + 1, 0.5))
            .collect();
        let g = UncertainGraph::from_weighted_edges(31, &edges);
        exact_all_tau(&g, &DensityNotion::Edge);
    }

    #[test]
    fn exact_clique_tau_on_triangle() {
        // Certain triangle + uncertain pendant edge: the triangle is the
        // 3-clique densest subgraph in every world.
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 0.5)],
        );
        let tau = exact_tau(&g, &DensityNotion::Clique(3), &[0, 1, 2]);
        assert!((tau - 1.0).abs() < 1e-9);
    }
}
